//! Chaos harness for the replicated serving fleet (ISSUE 7 tentpole cap).
//!
//! Closed-loop clients hammer `knn_admitted` while a scripted killer kills
//! and restores machines. The assertions are the availability contract:
//!
//! * at R = 2 every answer under any *single* failure is bitwise identical
//!   to the single-process reference with full coverage — failover, not
//!   degradation;
//! * at R = 1 a kill degrades coverage *monotonically* per client and every
//!   degraded answer is flagged and equals the reference over the surviving
//!   shards — degradation, never silence;
//! * the admission stats stay invariant-clean at every sample point
//!   (`answered + shed <= submitted <= answered + shed + in-flight`) and
//!   balance exactly once the clients quiesce;
//! * the fleet converges back to full replication after a restore.

use parmac_cluster::{ClusterBackend, CostModel, ServerBackend, SimCluster};
use parmac_hash::BinaryCodes;
use parmac_linalg::Mat;
use parmac_retrieval::hamming_knn;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
    let base = n / p;
    (0..p)
        .map(|i| (i * base..(i + 1) * base).collect())
        .collect()
}

/// Single-process reference over the database minus the points in `lost`,
/// answers mapped back to global point ids — what a degraded fleet that
/// lost exactly those shards must answer.
fn knn_excluding(
    db: &BinaryCodes,
    queries: &BinaryCodes,
    k: usize,
    lost: std::ops::Range<usize>,
) -> Vec<Vec<usize>> {
    let keep: Vec<usize> = (0..db.len()).filter(|i| !lost.contains(i)).collect();
    let mut sub = BinaryCodes::zeros(0, db.n_bits());
    for &i in &keep {
        sub.push_code(&db.to_f64_row(i));
    }
    hamming_knn(&sub, queries, k)
        .into_iter()
        .map(|row| row.into_iter().map(|r| keep[r]).collect())
        .collect()
}

/// Sampled-stats invariant: every submission is somewhere — already
/// answered, already shed, or still in flight (at most one per closed-loop
/// client). Exact balance is asserted once the clients quiesce.
fn assert_stats_clean(backend: &ServerBackend, clients: u64, when: &str) {
    let stats = backend.query_router().serving_stats();
    assert!(
        stats.answered + stats.shed <= stats.submitted,
        "{when}: over-accounted stats {stats:?}"
    );
    assert!(
        stats.submitted <= stats.answered + stats.shed + clients,
        "{when}: lost submissions (more in flight than clients) {stats:?}"
    );
}

/// Spins until `cond` holds, panicking after `deadline`.
fn wait_until(deadline: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn r2_kill_restore_cycle_under_load_keeps_answers_exact_and_reconverges() {
    const MACHINES: usize = 4;
    const CLIENTS: usize = 3;
    let mut rng = SmallRng::seed_from_u64(71);
    let db = BinaryCodes::from_matrix(&Mat::random_uniform(96, 16, 0.0, 1.0, &mut rng));
    let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
        6, 16, 0.0, 1.0, &mut rng,
    )));
    let k = 10usize;
    let expected = hamming_knn(&db, &queries, k);

    let cluster = SimCluster::new(shards(MACHINES, db.len()), CostModel::distributed());
    let backend = ServerBackend::new().with_replication(2);
    backend.publish_codes(&cluster, &db);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Closed-loop clients: every answered call must be full-coverage and
        // bitwise identical to the single-process reference — under load,
        // mid-kill, mid-rebalance, always.
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let router = backend.query_router();
                let queries = Arc::clone(&queries);
                let expected = &expected;
                let done = &done;
                scope.spawn(move || {
                    let (mut answered, mut shed) = (0u64, 0u64);
                    while !done.load(Ordering::Acquire) {
                        match router.knn_admitted(Arc::clone(&queries), k) {
                            Ok(response) => {
                                assert!(
                                    response.coverage.is_full(),
                                    "client {c}: degraded answer at R=2 under a single \
                                     failure: {:?}",
                                    response.coverage
                                );
                                assert_eq!(
                                    &response.answers, expected,
                                    "client {c}: inexact answer at R=2"
                                );
                                answered += 1;
                            }
                            Err(_) => shed += 1,
                        }
                    }
                    (answered, shed)
                })
            })
            .collect();

        // Scripted killer: kill *every* machine in turn (one at a time — the
        // single-failure contract), re-replicate, restore, reconverge.
        for victim in 0..MACHINES {
            backend.kill_machine(victim);
            std::thread::sleep(Duration::from_millis(20));
            assert_stats_clean(&backend, CLIENTS as u64, "after kill");
            // The kill notifies the rebalancer; force a pass too so
            // convergence does not depend on thread scheduling.
            backend.rebalance();
            wait_until(Duration::from_secs(5), "re-replication after kill", || {
                backend.fleet_status().is_fully_replicated()
            });
            wait_until(Duration::from_secs(5), "restore", || {
                backend.restore_machine(victim)
            });
            backend.rebalance();
            let status = backend.fleet_status();
            assert_eq!(status.dead_machines, 0, "victim={victim} still marked dead");
            assert!(
                status.is_fully_replicated(),
                "victim={victim}: not fully replicated after restore: {status:?}"
            );
            assert_stats_clean(&backend, CLIENTS as u64, "after restore");
        }

        done.store(true, Ordering::Release);
        let (mut answered, mut shed) = (0u64, 0u64);
        for client in clients {
            let (a, s) = client.join().expect("client panicked");
            answered += a;
            shed += s;
        }
        assert!(answered > 0, "clients never got an answer");

        // Quiesced: the books balance exactly.
        let stats = backend.query_router().serving_stats();
        assert_eq!(
            stats.submitted,
            stats.answered + stats.shed,
            "accounting must balance once quiesced: {stats:?}"
        );
        assert_eq!(stats.answered, answered, "{stats:?}");
        assert_eq!(stats.shed, shed, "{stats:?}");
        assert_eq!(
            stats.degraded, 0,
            "no fan-out may degrade at R=2 under single failures: {stats:?}"
        );
    });
}

#[test]
fn r1_kill_degrades_monotonically_and_flags_every_answer() {
    const MACHINES: usize = 3;
    const CLIENTS: usize = 2;
    let mut rng = SmallRng::seed_from_u64(73);
    let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 16, 0.0, 1.0, &mut rng));
    let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
        5, 16, 0.0, 1.0, &mut rng,
    )));
    let k = 8usize;
    let full_expected = hamming_knn(&db, &queries, k);
    // Machine 1 hosts shard 1 (points 20..40) at R=1; that shard is lost
    // after the kill until a republish.
    let degraded_expected = knn_excluding(&db, &queries, k, 20..40);

    let cluster = SimCluster::new(shards(MACHINES, db.len()), CostModel::distributed());
    let backend = ServerBackend::new(); // R = 1: no replica to fail over to.
    backend.publish_codes(&cluster, &db);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let router = backend.query_router();
                let queries = Arc::clone(&queries);
                let (full_expected, degraded_expected) = (&full_expected, &degraded_expected);
                let done = &done;
                scope.spawn(move || {
                    let mut saw_degraded = false;
                    while !done.load(Ordering::Acquire) {
                        let Ok(response) = router.knn_admitted(Arc::clone(&queries), k) else {
                            continue;
                        };
                        if response.coverage.is_full() {
                            // Monotone per client: once this closed-loop
                            // client has seen the degraded fleet, coverage
                            // never silently recovers (no republish here).
                            assert!(
                                !saw_degraded,
                                "client {c}: coverage went back up without a republish"
                            );
                            assert_eq!(&response.answers, full_expected, "client {c}");
                        } else {
                            saw_degraded = true;
                            assert_eq!(
                                (
                                    response.coverage.shards_answered,
                                    response.coverage.shards_total
                                ),
                                (MACHINES - 1, MACHINES),
                                "client {c}: unexpected coverage"
                            );
                            assert_eq!(
                                &response.answers, degraded_expected,
                                "client {c}: degraded answer must equal the reference \
                                 over the surviving shards"
                            );
                        }
                    }
                    saw_degraded
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(20));
        backend.kill_machine(1);
        // Give every client time to observe the degraded fleet.
        std::thread::sleep(Duration::from_millis(50));
        assert_stats_clean(&backend, CLIENTS as u64, "after R=1 kill");
        done.store(true, Ordering::Release);
        let mut any_degraded = false;
        for client in clients {
            any_degraded |= client.join().expect("client panicked");
        }
        assert!(
            any_degraded,
            "no client ever observed the degraded fleet — kill window too short?"
        );

        let stats = backend.query_router().serving_stats();
        assert_eq!(stats.submitted, stats.answered + stats.shed, "{stats:?}");
        assert!(
            stats.degraded >= 1,
            "degraded fan-outs must be counted: {stats:?}"
        );

        // Recovery is a restore *plus* a republish at R=1 (the data died
        // with the machine); after both, answers are whole again.
        wait_until(Duration::from_secs(5), "restore", || {
            backend.restore_machine(1)
        });
        backend.publish_codes(&cluster, &db);
        let response = backend.query_router().knn(&queries, k);
        assert!(response.coverage.is_full(), "{:?}", response.coverage);
        assert_eq!(response.answers, full_expected);
    });
}
