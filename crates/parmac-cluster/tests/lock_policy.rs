//! Regression tests for the fleet's lock policy: a panicked thread that held
//! a shared mutex must not cascade failures into the serving threads
//! (PR 8's poison-recovery policy — the vendored `parking_lot` shim adopts
//! real parking_lot's non-poisoning semantics), and the serving fleet as a
//! whole must keep answering after a thread dies while holding a lock.

use std::sync::Arc;

use parking_lot::Mutex;
use parmac_cluster::{ClusterBackend, CostModel, ServerBackend, SimCluster};
use parmac_hash::BinaryCodes;
use parmac_linalg::Mat;
use parmac_retrieval::hamming_knn;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The primitive itself: lock a shim mutex, panic while holding it, and
/// verify other threads still acquire it and see consistent data.
#[test]
fn poisoned_mutex_recovers_for_other_threads() {
    let shared = Arc::new(Mutex::new(vec![1u32, 2, 3]));
    let poisoner = Arc::clone(&shared);
    let result = std::thread::spawn(move || {
        let _guard = poisoner.lock();
        panic!("worker dies while holding the lock");
    })
    .join();
    assert!(result.is_err(), "the worker must actually have panicked");
    // Under std semantics this lock() would itself panic ("mutex poisoned")
    // in every thread forever after. The policy is recovery.
    let guard = shared.lock();
    assert_eq!(*guard, vec![1, 2, 3]);
}

/// End-to-end: panic a thread while it holds a shim mutex, then keep driving
/// queries through a live replicated fleet — serving must be entirely
/// unaffected (no poison cascade out of the shared shim, no dead actor).
#[test]
fn fleet_keeps_serving_after_a_panicked_lock_holder() {
    const MACHINES: usize = 3;
    let mut rng = SmallRng::seed_from_u64(88);
    let db = BinaryCodes::from_matrix(&Mat::random_uniform(48, 16, 0.0, 1.0, &mut rng));
    let queries = BinaryCodes::from_matrix(&Mat::random_uniform(4, 16, 0.0, 1.0, &mut rng));
    let k = 5usize;
    let expected = hamming_knn(&db, &queries, k);

    let base = db.len() / MACHINES;
    let shards: Vec<Vec<usize>> = (0..MACHINES)
        .map(|i| (i * base..(i + 1) * base).collect())
        .collect();
    let cluster = SimCluster::new(shards, CostModel::distributed());
    let backend = ServerBackend::new().with_replication(2);
    backend.publish_codes(&cluster, &db);
    let router = backend.query_router();

    let before = router.knn(&queries, k);
    assert!(before.coverage.is_full());
    assert_eq!(before.answers, expected);

    // A worker dies while holding a shim mutex of its own.
    let unrelated = Arc::new(Mutex::new(0usize));
    let holder = Arc::clone(&unrelated);
    let result = std::thread::spawn(move || {
        let _guard = holder.lock();
        panic!("chaos: lock holder dies");
    })
    .join();
    assert!(result.is_err());

    // The fleet must be oblivious: same query, same full-coverage answer.
    let after = router.knn(&queries, k);
    assert!(after.coverage.is_full());
    assert_eq!(after.answers, expected);
    assert_eq!(*unrelated.lock(), 0, "recovered lock sees consistent data");
}
