//! Integration tests for the cross-process backend (ISSUE 10 tentpole).
//!
//! These spawn real `parmac-machined` worker processes (built as a bin
//! target of this crate; `cargo test` builds it before running this file)
//! and drive the §4.3 ring protocol over Unix-domain sockets:
//!
//! * a clean W step is **bitwise identical** to the deterministic simulator
//!   — the coordinator-sequencer applies every visit in per-submodel ring
//!   order, so an order-sensitive float payload must match exactly;
//! * a worker SIGKILLed **mid-step** becomes a structured [`MachineDown`]
//!   and the step routes around the corpse and still terminates, with the
//!   dead machine's remaining visits skipped (§4.3);
//! * `publish_codes` + the Z step keep each worker's **resident shard
//!   replica** consistent with the coordinator's authoritative codes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use parmac_cluster::process::{MachineDownReason, ProcessConfig};
use parmac_cluster::{ClusterBackend, CostModel, ProcessBackend, SimBackend, SimCluster, ZUpdate};
use parmac_hash::BinaryCodes;

fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
    let base = n / p;
    (0..p)
        .map(|i| (i * base..(i + 1) * base).collect())
        .collect()
}

/// An order-sensitive submodel payload: float accumulation does not commute,
/// so two runs agree bitwise only if they apply the same visits in the same
/// order.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    acc: f64,
    visits: Vec<(usize, usize)>,
}

fn visit(trace: &mut Trace, machine: usize, shard: &[usize]) {
    let shard_sum: usize = shard.iter().sum();
    trace.acc = trace.acc * 1.0001 + machine as f64 + shard_sum as f64 * 0.001;
    trace.visits.push((machine, shard.len()));
}

fn fresh_traces(m: usize) -> Vec<Trace> {
    (0..m)
        .map(|id| Trace {
            acc: id as f64 * 0.123,
            visits: Vec::new(),
        })
        .collect()
}

#[test]
fn clean_process_w_step_is_bitwise_identical_to_the_simulator() {
    let cost = CostModel::distributed();
    let cluster = SimCluster::new(shards(3, 24), cost);
    let (m, epochs) = (5usize, 2usize);

    let (reference, ref_stats) =
        SimBackend::new(cost).run_w_step(&cluster, fresh_traces(m), epochs, 7, visit, None);
    let backend = ProcessBackend::new();
    let (trained, stats) = backend.run_w_step(&cluster, fresh_traces(m), epochs, 7, visit, None);

    for (id, (got, want)) in trained.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.acc.to_bits(),
            want.acc.to_bits(),
            "submodel {id} diverged from the simulator: {got:?} vs {want:?}"
        );
        assert_eq!(got.visits, want.visits, "submodel {id} visit order");
    }
    assert_eq!(stats.update_visits, ref_stats.update_visits);
    assert_eq!(stats.messages_sent, ref_stats.messages_sent);
    assert_eq!(stats.bytes_sent, ref_stats.bytes_sent);
    assert!(backend.down_events().is_empty(), "clean run saw a fault");

    // A second step on the same fleet (new round) stays exact too: round
    // fencing keeps leftover frames from the first round inert.
    let (again, _) = backend.run_w_step(&cluster, fresh_traces(m), epochs, 7, visit, None);
    for (got, want) in again.iter().zip(&reference) {
        assert_eq!(got.acc.to_bits(), want.acc.to_bits());
    }
}

#[test]
fn sigkill_mid_w_step_surfaces_a_structured_fault_and_the_step_completes() {
    let cost = CostModel::distributed();
    let (p, m, epochs) = (3usize, 4usize, 3usize);
    let cluster = SimCluster::new(shards(p, 18), cost);
    let backend = ProcessBackend::new().with_config(ProcessConfig {
        step_timeout: Duration::from_secs(30),
        io_timeout: Duration::from_millis(500),
        ..ProcessConfig::default()
    });
    let chaos = backend.clone();
    let victim = 2usize;
    let applied = AtomicUsize::new(0);
    let killed_at = AtomicUsize::new(usize::MAX);

    let (trained, stats) = backend.run_w_step(
        &cluster,
        fresh_traces(m),
        epochs,
        7,
        |trace: &mut Trace, machine, shard| {
            // SIGKILL the victim from inside the update path, mid-epoch:
            // from the coordinator's point of view the fleet loses a member
            // while envelopes are in flight.
            let n = applied.fetch_add(1, Ordering::SeqCst);
            if n == 4 {
                assert!(chaos.kill_process(victim), "victim was already dead");
                killed_at.store(n, Ordering::SeqCst);
            }
            visit(trace, machine, shard);
        },
        None,
    );

    assert_eq!(killed_at.load(Ordering::SeqCst), 4, "chaos never fired");
    assert_eq!(backend.dead_machines(), vec![victim]);
    let downs = backend.down_events();
    assert_eq!(downs.len(), 1, "exactly one fault: {downs:?}");
    assert_eq!(downs[0].machine, victim);
    assert_eq!(downs[0].reason, MachineDownReason::Killed);

    // §4.3: the dead machine's remaining visits are skipped, everything
    // else still happens — total applied visits land strictly between the
    // (p-1)-machine and p-machine counts, and no visit to the victim is
    // recorded after the kill took effect.
    assert!(
        stats.update_visits >= m * (p - 1) * epochs && stats.update_visits < m * p * epochs,
        "visits {} outside the fault envelope [{}, {})",
        stats.update_visits,
        m * (p - 1) * epochs,
        m * p * epochs
    );
    for (id, trace) in trained.iter().enumerate() {
        let victim_visits = trace.visits.iter().filter(|(mm, _)| *mm == victim).count();
        assert!(
            victim_visits < epochs,
            "submodel {id} visited the corpse every epoch"
        );
    }

    // The fleet stays usable after the fault: the next step runs on the
    // surviving ring and matches a simulator whose cluster dropped the
    // victim's machine (same live ring, same shards).
    let mut survivor_cluster = SimCluster::new(shards(p, 18), cost);
    survivor_cluster.remove_machine(victim);
    let (reference, _) = SimBackend::new(cost).run_w_step(
        &survivor_cluster,
        fresh_traces(m),
        epochs,
        7,
        visit,
        None,
    );
    let (after, _) = backend.run_w_step(&cluster, fresh_traces(m), epochs, 7, visit, None);
    for (id, (got, want)) in after.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.acc.to_bits(),
            want.acc.to_bits(),
            "post-fault submodel {id} diverged from the survivor simulator"
        );
    }
}

#[test]
fn publish_and_z_step_keep_worker_shard_replicas_consistent() {
    let cost = CostModel::distributed();
    let (p, n, bits) = (3usize, 12usize, 4usize);
    let cluster = SimCluster::new(shards(p, n), cost);
    let backend = ProcessBackend::new();

    // Publish an initial database: point i's code is the binary expansion
    // of i.
    let code_of = |i: usize, flip: bool| -> Vec<f64> {
        (0..bits)
            .map(|b| {
                let bit = (i >> b) & 1 != 0;
                if bit != flip {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    };
    let mut db = BinaryCodes::zeros(n, bits);
    for i in 0..n {
        db.set_code(i, &code_of(i, false));
    }
    backend.publish_codes(&cluster, &db);

    // The Z step flips every even point's code; the solve also proves the
    // backend visits shards in topology order.
    let solved = Mutex::new(Vec::new());
    let (updates, z) = backend.run_z_step(&cluster, 2, |machine, shard| {
        solved.lock().unwrap().push(machine);
        shard
            .iter()
            .filter(|&&i| i % 2 == 0)
            .map(|&i| ZUpdate {
                point: i,
                code: code_of(i, true),
            })
            .collect()
    });
    assert_eq!(solved.into_inner().unwrap(), vec![0, 1, 2]);
    assert_eq!(updates.len(), n / 2);
    assert_eq!(z.points_updated, n);

    // Every worker's resident replica now reflects publish + Z updates.
    for machine in 0..p {
        let (points, codes, _seq) = backend
            .fetch_shard(machine)
            .unwrap_or_else(|| panic!("machine {machine} has no resident shard"));
        assert_eq!(points, cluster.shard(machine), "machine {machine} points");
        for (row, &point) in points.iter().enumerate() {
            let want = code_of(point, point % 2 == 0);
            assert_eq!(
                codes.to_f64_row(row),
                want,
                "machine {machine} point {point} replica code"
            );
        }
    }

    // Incremental publish patches a single worker's replica in place.
    let mut patched = BinaryCodes::zeros(n, bits);
    for i in 0..n {
        patched.set_code(i, &code_of(i, i % 3 == 0));
    }
    let first_shard: Vec<usize> = cluster.shard(0).to_vec();
    backend.publish_point_codes(0, &first_shard, &patched);
    let (points, codes, _) = backend.fetch_shard(0).expect("machine 0 resident shard");
    for (row, &point) in points.iter().enumerate() {
        assert_eq!(
            codes.to_f64_row(row),
            code_of(point, point % 3 == 0),
            "point {point} after incremental publish"
        );
    }
}
