//! Bounded-wait helpers: the building blocks behind `parmac-lint`'s
//! `unbounded-recv` rule.
//!
//! PR 7 established the bounded-shutdown contract: no thread in this crate
//! may block forever on a channel. Actor mailbox loops want to wait
//! *indefinitely for work* but still notice disconnection promptly and never
//! wedge a join — so they wait in heartbeat ticks: a `recv_timeout` loop
//! that swallows timeouts and only surfaces real outcomes. The tick bounds
//! how stale a loop's view of "my senders are gone" can get; it costs one
//! wakeup per tick on an idle mailbox.

use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError, TryRecvError};

/// Heartbeat granularity for idle actor mailboxes: long enough to keep idle
/// wakeups negligible, short enough that shutdown (sender drop) is observed
/// well inside the fleet's 500 ms join grace.
pub(crate) const IDLE_TICK: Duration = Duration::from_millis(100);

/// Waits for a message in bounded ticks. Timeouts are retried, so the overall
/// wait is unbounded in *time* but every individual block is bounded and the
/// loop re-checks channel liveness each tick. Returns `Err(())` once the
/// channel is empty and every sender is gone.
pub(crate) fn recv_bounded<T>(rx: &Receiver<T>, tick: Duration) -> Result<T, ()> {
    loop {
        match rx.recv_timeout(tick) {
            Ok(msg) => return Ok(msg),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Err(()),
        }
    }
}

/// Waits for one message until an *absolute* deadline. The relative-timeout
/// sibling of [`recv_bounded`]: multi-wait loops (collect `n` replies, drain a
/// wave of acknowledgements) recompute `deadline − now` on every iteration,
/// so per-wait scheduling jitter never accumulates into drift past the
/// deadline the caller promised.
///
/// A deadline already in the past still performs one non-blocking poll, so a
/// message that was queued before the deadline expired is delivered rather
/// than dropped; the caller decides what a `Timeout` means.
pub(crate) fn recv_deadline<T>(rx: &Receiver<T>, deadline: Instant) -> Result<T, RecvTimeoutError> {
    let now = Instant::now();
    if now >= deadline {
        return match rx.try_recv() {
            Ok(msg) => Ok(msg),
            Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
            Err(TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
        };
    }
    rx.recv_timeout(deadline - now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn delivers_messages_across_ticks() {
        let (tx, rx) = unbounded();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(7usize).unwrap();
        });
        // Tick far smaller than the send delay: several timeouts retried.
        assert_eq!(recv_bounded(&rx, Duration::from_millis(5)), Ok(7));
        sender.join().unwrap();
    }

    #[test]
    fn reports_disconnection() {
        let (tx, rx) = unbounded::<usize>();
        drop(tx);
        assert_eq!(recv_bounded(&rx, Duration::from_millis(5)), Err(()));
    }

    #[test]
    fn recv_deadline_delivers_before_and_times_out_after_the_deadline() {
        let (tx, rx) = unbounded();
        tx.send(1usize).unwrap();
        let deadline = Instant::now() + Duration::from_millis(200);
        assert_eq!(recv_deadline(&rx, deadline), Ok(1));
        // Empty channel: the wait ends at the deadline, not a tick later.
        let start = Instant::now();
        let result = recv_deadline(&rx, Instant::now() + Duration::from_millis(20));
        assert_eq!(result, Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn recv_deadline_does_not_drift_across_a_multi_wait_loop() {
        // Ten sequential waits against ONE absolute deadline must end within
        // that deadline's horizon, not ten ticks later.
        let (_tx, rx) = unbounded::<usize>();
        let deadline = Instant::now() + Duration::from_millis(50);
        let mut timeouts = 0;
        for _ in 0..10 {
            if recv_deadline(&rx, deadline) == Err(RecvTimeoutError::Timeout) {
                timeouts += 1;
            }
        }
        assert_eq!(timeouts, 10);
        // Generous bound: 10 × 50 ms of drift would blow far past this.
        assert!(deadline.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn recv_deadline_past_deadline_still_drains_queued_messages() {
        let (tx, rx) = unbounded();
        tx.send(9usize).unwrap();
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(recv_deadline(&rx, past), Ok(9));
        assert_eq!(recv_deadline(&rx, past), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            recv_deadline(&rx, past),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
