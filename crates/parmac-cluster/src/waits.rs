//! Bounded-wait helpers: the building blocks behind `parmac-lint`'s
//! `unbounded-recv` rule.
//!
//! PR 7 established the bounded-shutdown contract: no thread in this crate
//! may block forever on a channel. Actor mailbox loops want to wait
//! *indefinitely for work* but still notice disconnection promptly and never
//! wedge a join — so they wait in heartbeat ticks: a `recv_timeout` loop
//! that swallows timeouts and only surfaces real outcomes. The tick bounds
//! how stale a loop's view of "my senders are gone" can get; it costs one
//! wakeup per tick on an idle mailbox.

use std::time::Duration;

use crossbeam_channel::{Receiver, RecvTimeoutError};

/// Heartbeat granularity for idle actor mailboxes: long enough to keep idle
/// wakeups negligible, short enough that shutdown (sender drop) is observed
/// well inside the fleet's 500 ms join grace.
pub(crate) const IDLE_TICK: Duration = Duration::from_millis(100);

/// Waits for a message in bounded ticks. Timeouts are retried, so the overall
/// wait is unbounded in *time* but every individual block is bounded and the
/// loop re-checks channel liveness each tick. Returns `Err(())` once the
/// channel is empty and every sender is gone.
pub(crate) fn recv_bounded<T>(rx: &Receiver<T>, tick: Duration) -> Result<T, ()> {
    loop {
        match rx.recv_timeout(tick) {
            Ok(msg) => return Ok(msg),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Err(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn delivers_messages_across_ticks() {
        let (tx, rx) = unbounded();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(7usize).unwrap();
        });
        // Tick far smaller than the send delay: several timeouts retried.
        assert_eq!(recv_bounded(&rx, Duration::from_millis(5)), Ok(7));
        sender.join().unwrap();
    }

    #[test]
    fn reports_disconnection() {
        let (tx, rx) = unbounded::<usize>();
        drop(tx);
        assert_eq!(recv_bounded(&rx, Duration::from_millis(5)), Err(()));
    }
}
