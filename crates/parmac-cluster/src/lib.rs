//! Distributed-cluster substrate for ParMAC.
//!
//! The paper runs ParMAC on a 128-processor MPI cluster and a 64-core
//! shared-memory machine. This crate replaces that hardware with
//! interchangeable execution engines behind the [`ClusterBackend`] trait
//! ([`backend`]), all implementing the same ring protocol of §4.1:
//!
//! * [`sim`] — a **deterministic, synchronous-tick simulator**. Machines,
//!   their data shards and the circulating submodels are explicit; per-tick
//!   computation and communication times are charged according to a
//!   [`CostModel`] (the same `t_r^W`, `t_c^W`, `t_r^Z` quantities the paper's
//!   speedup model uses), so simulated speedup curves can be compared with the
//!   theoretical prediction (fig. 10). Fault injection (§4.3) is supported.
//! * [`threaded`] — a **real multi-threaded backend**: one OS thread per
//!   machine, crossbeam channels as the unidirectional ring network, and the
//!   asynchronous queue-per-machine protocol described in §4.1 (each submodel
//!   carries a visit counter; a final communication-only lap distributes the
//!   finished submodels).
//! * [`pool`] — a **work-stealing thread-pool backend** (the paper's
//!   shared-memory configuration, §8.5): the Z step splits shards into point
//!   chunks any worker can steal, the W step trains the submodels queued at
//!   one machine concurrently on the local workers. Results stay bitwise
//!   identical to the simulator's.
//! * [`server`] — a **sharded-server backend**: machines as long-lived actors
//!   behind typed crossbeam mailboxes, W-step envelopes routed by their own
//!   visit lists (§4.3), the Z step as request/reply exchanges, and a
//!   resident serving fleet answering Hamming k-NN queries *during* training
//!   through a [`QueryRouter`] — training and retrieval from the same
//!   processes. The fleet is replicated and self-healing: a replication
//!   factor places each shard on several machines, the router fails over
//!   across live replicas under a bounded deadline, answers carry explicit
//!   coverage, and a health-tracker-driven rebalancer re-replicates shards
//!   when machines die or join.
//! * [`process`] — a **multi-process backend**: each ring machine is an OS
//!   process (`parmac-machined`) connected over Unix-domain sockets speaking
//!   length-prefixed [`wire`] frames. A [`process::FleetLauncher`] spawns and
//!   supervises the workers (heartbeats, exit reaping, socket EOF) and turns
//!   a dead process into the same §4.3 fault event the in-process backends
//!   use, so training completes bitwise identical to the simulator even when
//!   a worker is SIGKILLed mid-step.
//!
//! Supporting modules: [`topology`] (the circular topology, including the
//!   random re-wiring used for cross-machine shuffling), [`envelope`] (the
//!   per-submodel protocol metadata: counters and visit lists), [`cost`]
//!   (cost models and step statistics), [`streaming`] (adding/removing data
//!   and machines on the fly) and [`wire`] (byte-level envelope/message
//!   codecs, the groundwork for a multi-process MPI backend).
//!
//! The backends are generic over the submodel type `S` and the update/solve
//! closures, so they contain no knowledge of binary autoencoders;
//! `parmac-core` supplies the actual W-step and Z-step work through the
//! [`ClusterBackend`] methods.

#![warn(missing_docs)]

pub mod backend;
pub mod cost;
pub mod envelope;
pub mod pool;
pub mod process;
pub mod server;
pub mod sim;
pub mod streaming;
pub mod threaded;
pub mod topology;
pub(crate) mod waits;
pub mod wire;

pub use backend::{ClusterBackend, SimBackend, ThreadedBackend, ZUpdate};
pub use cost::{ring_hops, CostModel, StepTimings, WStepStats, ZStepStats};
pub use envelope::SubmodelEnvelope;
pub use pool::PoolBackend;
pub use process::{FleetLauncher, MachineDown, MachineDownReason, ProcessBackend, ProcessConfig};
pub use server::{
    AdmissionConfig, AdmissionError, Coverage, FleetStatus, KnnResponse, MachineMsg, Query,
    QueryReply, QueryRouter, ReplicationConfig, ServerBackend, ServingStats, ShardHits,
    ZShardUpdates, ZStepRequest,
};
pub use sim::{Fault, SimCluster};
pub use threaded::run_w_step_threaded;
pub use topology::RingTopology;
pub use wire::{WireCode, WireError, WireQuery};
