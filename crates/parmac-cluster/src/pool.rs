//! Work-stealing thread-pool backend (§8.5's shared-memory configuration).
//!
//! The paper's shared-memory runs execute the very same ring protocol with
//! all "machines" being cores of one box. Two structural consequences, both
//! implemented here and neither available to the one-thread-per-machine
//! [`ThreadedBackend`](crate::backend::ThreadedBackend):
//!
//! * **The Z step is embarrassingly parallel at *point* granularity**, not
//!   shard granularity: when `P ≪ cores` or the shards are imbalanced
//!   (proportional partitions, streaming), per-shard threads leave cores
//!   idle. [`PoolBackend`] splits every shard into fixed-size point chunks
//!   that *any* worker can steal, then reassembles the per-chunk updates in
//!   deterministic topology-then-chunk order — bitwise identical output to
//!   the serial sweep, wall-clock bounded by the slowest *chunk* rather than
//!   the slowest *shard*.
//! * **Within-machine W-step parallelism** (§8.5): several submodels queued
//!   at the same ring machine are trained concurrently by the local workers.
//!   Distinct submodels are independent (the update closure's `Sync`
//!   contract), and each submodel still visits machines in exact ring order,
//!   so the trained weights stay bitwise identical to the simulator's.
//!
//! The pool itself is hand-rolled (crates.io is unreachable, so no rayon):
//! one [`VecDeque`] of tasks per worker behind a [`Mutex`], workers popping
//! from their own deque's front and stealing from the *back* of a victim's
//! when empty. Z-step tasks are a fixed set known upfront, so a worker whose
//! full scan finds nothing simply exits; W-step visits spawn their successor
//! visit, so workers spin (yield, then briefly sleep) until every submodel
//! has been collected.

use crate::backend::{z_stats, ClusterBackend, ZUpdate};
use crate::cost::{ring_hops, CostModel, StepTimings, WStepStats, ZStepStats};
use crate::envelope::SubmodelEnvelope;
use crate::sim::{Fault, SimCluster};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Pops a task for `worker`: its own deque's front first (the distribution
/// order), then the *back* of each other worker's deque (steal-on-empty, so
/// thieves and owners contend on opposite ends). Returns `None` only when a
/// full scan over all deques finds nothing.
fn pop_or_steal<T>(queues: &[Mutex<VecDeque<T>>], worker: usize) -> Option<T> {
    if let Some(task) = queues[worker].lock().pop_front() {
        return Some(task);
    }
    for offset in 1..queues.len() {
        let victim = (worker + offset) % queues.len();
        if let Some(task) = queues[victim].lock().pop_back() {
            return Some(task);
        }
    }
    None
}

/// One W-step task: a submodel envelope about to visit ring position `pos`.
struct Visit<S> {
    pos: usize,
    env: SubmodelEnvelope<S>,
}

/// The work-stealing pool backend: `workers` threads share every task of a
/// step regardless of which "machine" it belongs to.
///
/// With `workers == 1` both steps degrade to the exact serial sweep (the
/// degenerate path the CI matrix keeps covered); with more workers the
/// results are still bitwise identical — only the wall clock changes. The
/// default cost model is the [`CostModel::shared_memory`] preset, matching
/// the configuration this backend models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolBackend {
    cost: CostModel,
    workers: usize,
    chunk_size: usize,
}

impl PoolBackend {
    /// Default chunk size: small enough that even one shard splits into many
    /// stealable tasks, large enough to amortise the per-chunk batched
    /// relaxed initialisation.
    pub const DEFAULT_CHUNK_SIZE: usize = 64;

    /// A pool sized to the host's available parallelism, with the
    /// shared-memory cost preset and the default chunk size.
    pub fn new() -> Self {
        PoolBackend {
            cost: CostModel::shared_memory(),
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
        }
    }

    /// Overrides the cost model a trainer built on this backend seeds its
    /// cluster with (the cluster is authoritative at execution time; see
    /// [`ClusterBackend::cost_model`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the number of pool workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the Z-step chunk size (points per stealable task).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Points per stealable Z-step task.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Default for PoolBackend {
    fn default() -> Self {
        PoolBackend::new()
    }
}

impl ClusterBackend for PoolBackend {
    fn name(&self) -> &'static str {
        "pool"
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// §8.5 within-machine W-step parallelism: every (submodel, machine)
    /// visit is one stealable task carrying the submodel's envelope, so all
    /// submodels queued at one machine are trained concurrently by the local
    /// workers. Processing a visit spawns the successor visit into the
    /// worker's own deque; each submodel therefore visits machines in exact
    /// ring order (seeded round-robin by ring position, as in fig. 2) and the
    /// trained weights are bitwise identical to the other backends'.
    /// `messages_sent` is the canonical [`ring_hops`] count. Faults are
    /// ignored (real-thread backends exercise actual liveness instead).
    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        _fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync,
    {
        assert!(epochs > 0, "need at least one epoch");
        let start = Instant::now();
        let machines = cluster.topology().machines().to_vec();
        let p = machines.len();
        let m_total = submodels.len();
        if m_total == 0 {
            return (
                submodels,
                WStepStats {
                    timings: StepTimings::default().with_wall_clock(start.elapsed()),
                    ..WStepStats::default()
                },
            );
        }

        // At most one worker per circulating submodel can be busy at a time.
        let workers = self.workers.min(m_total);
        let queues: Vec<Mutex<VecDeque<Visit<S>>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (idx, sub) in submodels.into_iter().enumerate() {
            let env = SubmodelEnvelope::new(idx, sub, &machines);
            queues[idx % workers]
                .lock()
                .push_back(Visit { pos: idx % p, env });
        }

        let collected: Vec<Mutex<Option<S>>> = (0..m_total).map(|_| Mutex::new(None)).collect();
        let n_collected = AtomicUsize::new(0);
        let update_visits = AtomicUsize::new(0);

        thread::scope(|scope| {
            for worker in 0..workers {
                let queues = &queues;
                let machines = &machines;
                let collected = &collected;
                let n_collected = &n_collected;
                let update_visits = &update_visits;
                let update = &update;
                scope.spawn(move || {
                    let mut idle_scans = 0u32;
                    loop {
                        let Some(mut visit) = pop_or_steal(queues, worker) else {
                            if n_collected.load(Ordering::Acquire) == m_total {
                                break;
                            }
                            // Another worker still holds an in-flight visit;
                            // its successor task will appear shortly.
                            idle_scans += 1;
                            if idle_scans < 16 {
                                thread::yield_now();
                            } else {
                                thread::sleep(Duration::from_micros(50));
                            }
                            continue;
                        };
                        idle_scans = 0;
                        let machine = machines[visit.pos];
                        if visit.env.record_visit(machine, machines, epochs) {
                            update(&mut visit.env.payload, machine, cluster.shard(machine));
                            update_visits.fetch_add(1, Ordering::Relaxed);
                        }
                        if visit.env.is_finished(p, epochs) {
                            *collected[visit.env.submodel_id].lock() = Some(visit.env.payload);
                            n_collected.fetch_add(1, Ordering::Release);
                        } else {
                            visit.pos = (visit.pos + 1) % p;
                            queues[worker].lock().push_back(visit);
                        }
                    }
                });
            }
        });

        let result: Vec<S> = collected
            .into_iter()
            .map(|slot| slot.into_inner().expect("every submodel collected"))
            .collect();
        let msgs = ring_hops(m_total, p, epochs);
        let stats = WStepStats {
            timings: StepTimings::default().with_wall_clock(start.elapsed()),
            messages_sent: msgs,
            bytes_sent: msgs * params_per_submodel * std::mem::size_of::<f64>(),
            update_visits: update_visits.load(Ordering::Relaxed),
        };
        (result, stats)
    }

    /// Point-granular Z step: every shard is split into `chunk_size`-point
    /// tasks, any worker solves any chunk, and the per-chunk updates are
    /// reassembled by task index — i.e. in deterministic topology-then-chunk
    /// order, bitwise identical to [`SimBackend`](crate::backend::SimBackend)
    /// (per-point solves are independent; chunking a shard cannot change any
    /// point's solution). The fixed task set needs no termination protocol:
    /// tasks never spawn tasks, so a worker whose scan finds nothing exits.
    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync,
    {
        let start = Instant::now();
        let tasks: Vec<(usize, &[usize])> = cluster
            .topology()
            .machines()
            .iter()
            .flat_map(|&machine| {
                cluster
                    .shard(machine)
                    .chunks(self.chunk_size)
                    .map(move |chunk| (machine, chunk))
            })
            .collect();

        let workers = self.workers.min(tasks.len());
        let mut per_task: Vec<Option<Vec<ZUpdate>>> = (0..tasks.len()).map(|_| None).collect();
        if workers <= 1 {
            for (slot, &(machine, chunk)) in per_task.iter_mut().zip(&tasks) {
                *slot = Some(solve(machine, chunk));
            }
        } else {
            // Distribute task indices round-robin so every worker starts with
            // chunks spread across the topology; imbalance is then absorbed
            // by stealing rather than by the initial split.
            let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
                .map(|worker| Mutex::new((worker..tasks.len()).step_by(workers).collect()))
                .collect();
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let queues = &queues;
                        let tasks = &tasks;
                        let solve = &solve;
                        scope.spawn(move || {
                            let mut solved: Vec<(usize, Vec<ZUpdate>)> = Vec::new();
                            while let Some(task) = pop_or_steal(queues, worker) {
                                let (machine, chunk) = tasks[task];
                                solved.push((task, solve(machine, chunk)));
                            }
                            solved
                        })
                    })
                    .collect();
                for handle in handles {
                    for (task, updates) in handle.join().expect("Z-step pool worker panicked") {
                        per_task[task] = Some(updates);
                    }
                }
            });
        }

        let updates: Vec<ZUpdate> = per_task
            .into_iter()
            .flat_map(|u| u.expect("every chunk solved"))
            .collect();
        (updates, z_stats(cluster, n_submodels, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::topology::RingTopology;

    fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
        let base = n / p;
        (0..p)
            .map(|i| (i * base..(i + 1) * base).collect())
            .collect()
    }

    fn toggle_solve(machine: usize, shard: &[usize]) -> Vec<ZUpdate> {
        shard
            .iter()
            .filter(|&&n| n % 2 == 0)
            .map(|&n| ZUpdate {
                point: n,
                code: vec![machine as f64, n as f64],
            })
            .collect()
    }

    #[test]
    fn pool_z_step_matches_sim_across_worker_and_chunk_sizes() {
        let cost = CostModel::new(1.0, 10.0, 5.0);
        let cluster = SimCluster::new(shards(4, 40), cost);
        let (u_sim, s_sim) = SimBackend::new(cost).run_z_step(&cluster, 8, toggle_solve);
        for workers in [1usize, 2, 3, 8] {
            for chunk in [1usize, 3, 7, 64] {
                let pool = PoolBackend::new()
                    .with_workers(workers)
                    .with_chunk_size(chunk)
                    .with_cost_model(cost);
                let (u_pool, s_pool) = pool.run_z_step(&cluster, 8, toggle_solve);
                assert_eq!(
                    u_sim, u_pool,
                    "pool Z (workers={workers}, chunk={chunk}) must be bitwise identical to sim"
                );
                assert_eq!(s_sim.points_updated, s_pool.points_updated);
                assert_eq!(s_sim.timings.simulated, s_pool.timings.simulated);
            }
        }
    }

    #[test]
    fn pool_z_updates_arrive_in_topology_then_chunk_order() {
        let mut cluster = SimCluster::new(shards(4, 16), CostModel::distributed());
        cluster.set_topology(RingTopology::from_order(vec![2, 0, 3, 1]));
        let backend = PoolBackend::new().with_workers(4).with_chunk_size(2);
        let (updates, _) = backend.run_z_step(&cluster, 2, |machine, shard| {
            shard
                .iter()
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![machine as f64],
                })
                .collect()
        });
        let machine_order: Vec<usize> = updates
            .iter()
            .map(|u| u.code[0] as usize)
            .collect::<Vec<_>>()
            .chunks(4)
            .map(|c| c[0])
            .collect();
        assert_eq!(machine_order, vec![2, 0, 3, 1]);
        // Within a machine, points stay in shard order despite the 2-point
        // chunking.
        let points: Vec<usize> = updates.iter().map(|u| u.point).collect();
        assert_eq!(points[..4], [8, 9, 10, 11]);
    }

    #[test]
    fn pool_z_step_handles_imbalanced_shards() {
        // One huge shard next to three tiny ones: chunking means every worker
        // can help with the big one.
        let mut shards = vec![(0..60).collect::<Vec<usize>>()];
        shards.extend((0..3).map(|i| vec![60 + i]));
        let cluster = SimCluster::new(shards, CostModel::distributed());
        let (u_sim, _) = SimBackend::default().run_z_step(&cluster, 4, toggle_solve);
        let pool = PoolBackend::new().with_workers(4).with_chunk_size(8);
        let (u_pool, _) = pool.run_z_step(&cluster, 4, toggle_solve);
        assert_eq!(u_sim, u_pool);
    }

    #[test]
    fn pool_w_step_runs_the_full_protocol() {
        let cluster = SimCluster::new(shards(4, 40), CostModel::distributed());
        for workers in [1usize, 2, 8] {
            let backend = PoolBackend::new().with_workers(workers);
            let epochs = 3;
            let visits = Mutex::new(std::collections::HashMap::<(usize, usize), usize>::new());
            let (result, stats) = backend.run_w_step(
                &cluster,
                (0..6).collect::<Vec<usize>>(),
                epochs,
                1,
                |sub, machine, shard| {
                    assert_eq!(shard.len(), 10);
                    *visits.lock().entry((*sub, machine)).or_insert(0) += 1;
                },
                None,
            );
            assert_eq!(result, (0..6).collect::<Vec<_>>(), "original order kept");
            let visits = visits.lock();
            for sub in 0..6 {
                for machine in 0..4 {
                    assert_eq!(
                        visits.get(&(sub, machine)),
                        Some(&epochs),
                        "workers={workers} ({sub},{machine})"
                    );
                }
            }
            assert_eq!(stats.update_visits, 6 * 4 * epochs);
            assert_eq!(stats.messages_sent, ring_hops(6, 4, epochs));
        }
    }

    #[test]
    fn pool_w_step_visits_machines_in_ring_order() {
        let shards = shards(4, 8);
        let mut cluster = SimCluster::new(shards, CostModel::distributed());
        cluster.set_topology(RingTopology::from_order(vec![2, 0, 3, 1]));
        let seen = Mutex::new(Vec::new());
        let backend = PoolBackend::new().with_workers(3);
        backend.run_w_step(
            &cluster,
            vec![(); 1],
            1,
            1,
            |_, machine, _| seen.lock().push(machine),
            None,
        );
        // The single submodel starts at ring position 0 (machine 2) and walks
        // the ring in order — stealing may move it between workers but never
        // reorders its visits.
        assert_eq!(*seen.lock(), vec![2, 0, 3, 1]);
    }

    #[test]
    fn pool_w_step_empty_submodels_and_single_machine() {
        let cluster = SimCluster::new(shards(1, 10), CostModel::distributed());
        let backend = PoolBackend::new().with_workers(2);
        let (empty, stats) =
            backend.run_w_step(&cluster, Vec::<u8>::new(), 1, 1, |_, _, _| {}, None);
        assert!(empty.is_empty());
        assert_eq!(stats.update_visits, 0);
        let (result, stats) =
            backend.run_w_step(&cluster, vec![0usize; 2], 2, 1, |sub, _, _| *sub += 1, None);
        assert_eq!(result, vec![2, 2]);
        assert_eq!(stats.update_visits, 4);
        assert_eq!(stats.messages_sent, ring_hops(2, 1, 2));
    }

    #[test]
    fn pool_exposes_name_cost_and_knobs() {
        let pool = PoolBackend::new()
            .with_workers(5)
            .with_chunk_size(17)
            .with_cost_model(CostModel::distributed());
        assert_eq!(pool.name(), "pool");
        assert_eq!(pool.workers(), 5);
        assert_eq!(pool.chunk_size(), 17);
        assert_eq!(pool.cost_model(), CostModel::distributed());
        assert_eq!(
            PoolBackend::default().cost_model(),
            CostModel::shared_memory()
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = PoolBackend::new().with_workers(0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = PoolBackend::new().with_chunk_size(0);
    }
}
