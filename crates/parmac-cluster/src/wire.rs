//! Byte-level codecs for the protocol types that will cross process
//! boundaries in the MPI / multi-process backend.
//!
//! The workspace derives `serde::Serialize`/`Deserialize` on these types, but
//! the vendored serde is an offline *shim*: blanket marker traits and no-op
//! derives that keep the bounds compiling until a registry is reachable (see
//! `vendor/README.md`). A wire format cannot wait for that, so [`WireCode`]
//! provides the actual bytes today: a little-endian, length-prefixed
//! encoding of exactly the payloads a multi-process ring needs — submodel
//! envelopes, Z-step updates, and the retrieval query/reply pair of the
//! [`server`](crate::server) mailbox protocol (a reply carries the
//! answering machine's id — the replica identity the failover router
//! attributes health to). When real serde lands, these
//! codecs become its regression baseline (the round-trip tests pin the
//! semantics, not the byte layout).
//!
//! Channel handles ([`Sender`](crossbeam_channel::Sender)s, `Arc`s) never
//! serialise; messages that carry them in-process ([`Query`](crate::server::Query),
//! [`ZStepRequest`](crate::server::ZStepRequest)) have dedicated wire forms
//! holding only the data ([`WireQuery`]; a Z-step request is just the
//! requesting rank, so it needs none).

use crate::backend::ZUpdate;
use crate::envelope::SubmodelEnvelope;
use crate::server::{QueryReply, ZShardUpdates};
use parmac_hash::BinaryCodes;
use std::fmt;

/// A wire decoding failure.
///
/// A corrupt frame arriving over a real socket must be *diagnosable*:
/// truncations carry how many bytes the decoder needed against how many were
/// left (the offending offset into the frame is `frame_len - remaining`), and
/// bad discriminants carry the tag value together with the enum that rejected
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete: the decoder needed
    /// `needed` more bytes but only `remaining` remained.
    Truncated {
        /// Bytes the decoder needed for the value (or payload) at hand.
        needed: usize,
        /// Bytes actually left in the buffer at the point of failure.
        remaining: usize,
    },
    /// A discriminant decoded to a value no variant of `context` maps to.
    BadTag {
        /// The type whose decoder rejected the discriminant.
        context: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// The bytes decoded to an impossible value.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated wire buffer: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::BadTag { context, tag } => {
                write!(f, "bad wire tag for {context}: {tag}")
            }
            WireError::Malformed(what) => write!(f, "malformed wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian, length-prefixed byte codec. `encode_wire` appends to the
/// buffer; `decode_wire` consumes from the front of the slice, so values
/// compose by concatenation.
pub trait WireCode: Sized {
    /// A lower bound (in bytes) on the encoding of *any* value of this type.
    /// Length-prefixed containers multiply it by the claimed element count to
    /// reject impossible lengths **before** allocating — a malformed 8-byte
    /// length prefix must be a decode error, not a giant allocation.
    const MIN_ENCODED_LEN: usize;

    /// Appends this value's encoding to `buf`.
    fn encode_wire(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the front of `bytes`, advancing the slice.
    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_wire(&mut buf);
        buf
    }

    /// Decodes a value that must consume the whole buffer.
    fn from_wire(mut bytes: &[u8]) -> Result<Self, WireError> {
        let value = Self::decode_wire(&mut bytes)?;
        if bytes.is_empty() {
            Ok(value)
        } else {
            Err(WireError::Malformed("trailing bytes after value"))
        }
    }
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if bytes.len() < n {
        return Err(WireError::Truncated {
            needed: n,
            remaining: bytes.len(),
        });
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Ok(head)
}

impl WireCode for u64 {
    const MIN_ENCODED_LEN: usize = 8;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        let raw = take(bytes, 8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(u64::from_le_bytes(le))
    }
}

impl WireCode for u32 {
    const MIN_ENCODED_LEN: usize = 4;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        let raw = take(bytes, 4)?;
        let mut le = [0u8; 4];
        le.copy_from_slice(raw);
        Ok(u32::from_le_bytes(le))
    }
}

impl WireCode for usize {
    const MIN_ENCODED_LEN: usize = 8;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        let wide = u64::decode_wire(bytes)?;
        usize::try_from(wide).map_err(|_| WireError::Malformed("usize overflow"))
    }
}

impl WireCode for f64 {
    const MIN_ENCODED_LEN: usize = 8;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode_wire(bytes)?))
    }
}

/// One word, 0 or 1 — booleans cross the wire as an explicit tag so a flipped
/// byte is a [`WireError::BadTag`], never a silently-truthy value.
impl WireCode for bool {
    const MIN_ENCODED_LEN: usize = 8;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        u64::from(*self).encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        match u64::decode_wire(bytes)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

/// The unit payload: a submodel envelope with no parameters (protocol probes,
/// tests) costs zero bytes.
impl WireCode for () {
    const MIN_ENCODED_LEN: usize = 0;

    fn encode_wire(&self, _buf: &mut Vec<u8>) {}

    fn decode_wire(_bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: WireCode> WireCode for Vec<T> {
    const MIN_ENCODED_LEN: usize = 8; // the length prefix

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.len().encode_wire(buf);
        for item in self {
            item.encode_wire(buf);
        }
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        let len = usize::decode_wire(bytes)?;
        // Reject impossible lengths *before* `Vec::with_capacity`: `len`
        // elements need at least `len × MIN_ENCODED_LEN` bytes. Zero-sized
        // encodings (e.g. `()`) are exempt — any count fits in zero bytes.
        if T::MIN_ENCODED_LEN > 0 {
            let needed = len
                .checked_mul(T::MIN_ENCODED_LEN)
                .ok_or(WireError::Malformed("vector length overflows"))?;
            if needed > bytes.len() {
                return Err(WireError::Truncated {
                    needed,
                    remaining: bytes.len(),
                });
            }
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode_wire(bytes)?);
        }
        Ok(items)
    }
}

/// `None`/`Some` as a one-byte-word tag (0/1) followed by the value — the
/// encoding of an optional probe budget.
impl<T: WireCode> WireCode for Option<T> {
    const MIN_ENCODED_LEN: usize = 8; // the tag

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        match self {
            None => 0u64.encode_wire(buf),
            Some(value) => {
                1u64.encode_wire(buf);
                value.encode_wire(buf);
            }
        }
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        match u64::decode_wire(bytes)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_wire(bytes)?)),
            tag => Err(WireError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<A: WireCode, B: WireCode> WireCode for (A, B) {
    const MIN_ENCODED_LEN: usize = A::MIN_ENCODED_LEN + B::MIN_ENCODED_LEN;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.0.encode_wire(buf);
        self.1.encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode_wire(bytes)?, B::decode_wire(bytes)?))
    }
}

impl WireCode for ZUpdate {
    const MIN_ENCODED_LEN: usize = 16; // point + code-length prefix

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.point.encode_wire(buf);
        self.code.encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ZUpdate {
            point: usize::decode_wire(bytes)?,
            code: Vec::decode_wire(bytes)?,
        })
    }
}

impl<S: WireCode> WireCode for SubmodelEnvelope<S> {
    // Four counters + two vector prefixes + the payload's own floor.
    const MIN_ENCODED_LEN: usize = 4 * 8 + 2 * 8 + S::MIN_ENCODED_LEN;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.submodel_id.encode_wire(buf);
        self.visits.encode_wire(buf);
        self.epochs_completed.encode_wire(buf);
        self.forward_visits.encode_wire(buf);
        self.pending_machines.encode_wire(buf);
        self.faulted_machines.encode_wire(buf);
        self.payload.encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SubmodelEnvelope {
            submodel_id: usize::decode_wire(bytes)?,
            visits: usize::decode_wire(bytes)?,
            epochs_completed: usize::decode_wire(bytes)?,
            forward_visits: usize::decode_wire(bytes)?,
            pending_machines: Vec::decode_wire(bytes)?,
            faulted_machines: Vec::decode_wire(bytes)?,
            payload: S::decode_wire(bytes)?,
        })
    }
}

impl WireCode for BinaryCodes {
    const MIN_ENCODED_LEN: usize = 16; // (n_codes, n_bits) header

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.len().encode_wire(buf);
        self.n_bits().encode_wire(buf);
        for i in 0..self.len() {
            for &word in self.code_words(i) {
                word.encode_wire(buf);
            }
        }
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        let n_codes = usize::decode_wire(bytes)?;
        let n_bits = usize::decode_wire(bytes)?;
        if n_bits == 0 {
            return Err(WireError::Malformed("codes must have at least one bit"));
        }
        let words_per_code = n_bits.div_ceil(64);
        // Validate the payload length *before* allocating: a malformed
        // 16-byte header must be an EOF error, not an 8 TB allocation.
        let total_words = n_codes
            .checked_mul(words_per_code)
            .ok_or(WireError::Malformed("code count overflows"))?;
        match total_words.checked_mul(8) {
            None => return Err(WireError::Malformed("code payload overflows")),
            Some(payload) if payload > bytes.len() => {
                return Err(WireError::Truncated {
                    needed: payload,
                    remaining: bytes.len(),
                });
            }
            Some(_) => {}
        }
        let mut codes = BinaryCodes::zeros(n_codes, n_bits);
        for i in 0..n_codes {
            for w in 0..words_per_code {
                let word = u64::decode_wire(bytes)?;
                let first_bit = w * 64;
                for b in first_bit..n_bits.min(first_bit + 64) {
                    codes.set_bit(i, b, word >> (b - first_bit) & 1 == 1);
                }
            }
        }
        Ok(codes)
    }
}

/// The wire form of a retrieval [`Query`](crate::server::Query): the data
/// without the in-process reply channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQuery {
    /// The query codes.
    pub queries: BinaryCodes,
    /// Which of the machine's resident shards should answer (the failover
    /// router asks each replica only for the shards it routed there).
    pub shards: Vec<usize>,
    /// Neighbours requested per query.
    pub k: usize,
    /// Probe budget per query (`None` = exact mode).
    pub probes: Option<usize>,
}

impl WireCode for WireQuery {
    const MIN_ENCODED_LEN: usize =
        BinaryCodes::MIN_ENCODED_LEN + <Vec<usize>>::MIN_ENCODED_LEN + 8 + 8;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.queries.encode_wire(buf);
        self.shards.encode_wire(buf);
        self.k.encode_wire(buf);
        self.probes.encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(WireQuery {
            queries: BinaryCodes::decode_wire(bytes)?,
            shards: Vec::decode_wire(bytes)?,
            k: usize::decode_wire(bytes)?,
            probes: Option::decode_wire(bytes)?,
        })
    }
}

impl WireCode for QueryReply {
    const MIN_ENCODED_LEN: usize = 8 + 2 * <Vec<usize>>::MIN_ENCODED_LEN;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.machine.encode_wire(buf);
        self.answered.encode_wire(buf);
        self.missing.encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(QueryReply {
            machine: usize::decode_wire(bytes)?,
            answered: Vec::decode_wire(bytes)?,
            missing: Vec::decode_wire(bytes)?,
        })
    }
}

impl WireCode for ZShardUpdates {
    const MIN_ENCODED_LEN: usize = 8 + <Vec<ZUpdate>>::MIN_ENCODED_LEN;

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        self.machine.encode_wire(buf);
        self.updates.encode_wire(buf);
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ZShardUpdates {
            machine: usize::decode_wire(bytes)?,
            updates: Vec::decode_wire(bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serde-shim contract: every wire type keeps satisfying the
    /// `Serialize`/`Deserialize` bounds the real serde will demand, so the
    /// shim can be swapped out without touching these types.
    fn assert_serde_bounds<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

    #[test]
    fn wire_types_satisfy_the_serde_shim_bounds() {
        assert_serde_bounds::<SubmodelEnvelope<Vec<f64>>>();
        assert_serde_bounds::<ZUpdate>();
        assert_serde_bounds::<QueryReply>();
        assert_serde_bounds::<ZShardUpdates>();
        assert_serde_bounds::<WireQuery>();
        assert_serde_bounds::<BinaryCodes>();
    }

    fn round_trip<T: WireCode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = value.to_wire();
        let back = T::from_wire(&bytes).expect("round trip decodes");
        assert_eq!(&back, value);
    }

    #[test]
    fn envelope_round_trips_with_full_protocol_state() {
        let mut env =
            SubmodelEnvelope::new(7, vec![1.5f64, -2.25, 0.0, f64::MIN], &[0, 1, 2, 3, 4]);
        env.record_visit(0, &[0, 1, 2, 3, 4], 2);
        env.handle_fault(3, &[0, 1, 2, 3, 4], 2);
        round_trip(&env);
        let bytes = env.to_wire();
        let back: SubmodelEnvelope<Vec<f64>> = SubmodelEnvelope::from_wire(&bytes).unwrap();
        assert_eq!(back.pending_machines, vec![1, 2, 4]);
        assert_eq!(back.faulted_machines, vec![3]);
        assert_eq!(back.visits, 1);
    }

    #[test]
    fn unit_payload_envelope_round_trips() {
        round_trip(&SubmodelEnvelope::new(0, (), &[0, 1]));
    }

    #[test]
    fn z_update_and_shard_updates_round_trip() {
        let updates = ZShardUpdates {
            machine: 2,
            updates: vec![
                ZUpdate {
                    point: 11,
                    code: vec![0.0, 1.0, 1.0],
                },
                ZUpdate {
                    point: 999,
                    code: vec![1.0],
                },
            ],
        };
        round_trip(&updates.updates[0]);
        round_trip(&updates);
    }

    #[test]
    fn query_and_reply_round_trip() {
        let queries = BinaryCodes::from_bools(&[
            vec![true, false, true, true, false],
            vec![false, false, false, false, true],
        ]);
        round_trip(&WireQuery {
            queries: queries.clone(),
            shards: vec![0, 2],
            k: 10,
            probes: None,
        });
        round_trip(&WireQuery {
            queries,
            shards: vec![1],
            k: 3,
            probes: Some(8),
        });
        round_trip(&QueryReply {
            machine: 1,
            answered: vec![
                (0, vec![vec![(0, 4), (2, 17)], vec![]]),
                (2, vec![vec![], vec![]]),
            ],
            missing: vec![5],
        });
        // A corrupt option tag is a bad tag carrying the value, not a bogus
        // budget.
        let mut bad = Vec::new();
        7u64.encode_wire(&mut bad);
        assert_eq!(
            Option::<usize>::from_wire(&bad),
            Err(WireError::BadTag {
                context: "Option",
                tag: 7
            })
        );
    }

    #[test]
    fn bool_round_trips_and_rejects_non_binary_tags() {
        round_trip(&true);
        round_trip(&false);
        let mut bad = Vec::new();
        2u64.encode_wire(&mut bad);
        assert_eq!(
            bool::from_wire(&bad),
            Err(WireError::BadTag {
                context: "bool",
                tag: 2
            })
        );
    }

    #[test]
    fn binary_codes_round_trip_across_word_boundaries() {
        // 65 bits → two words per code; exercise the split-word decode path.
        let mut codes = BinaryCodes::zeros(3, 65);
        for (i, b) in [(0usize, 0usize), (0, 64), (1, 63), (2, 1)] {
            codes.set_bit(i, b, true);
        }
        round_trip(&codes);
    }

    #[test]
    fn truncated_and_oversized_buffers_are_rejected() {
        let env = SubmodelEnvelope::new(1, vec![3.0f64], &[0, 1, 2]);
        let bytes = env.to_wire();
        // Fuzz-ish sweep: decoding must fail cleanly (no panic, no giant
        // allocation) at *every* possible truncation point.
        for cut in 0..bytes.len() {
            let err = SubmodelEnvelope::<Vec<f64>>::from_wire(&bytes[..cut])
                .expect_err("truncated buffer must not decode");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut={cut}: {err:?}"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            SubmodelEnvelope::<Vec<f64>>::from_wire(&padded),
            Err(WireError::Malformed("trailing bytes after value"))
        );
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocating() {
        // A vector length far beyond the buffer is a truncation error that
        // names the impossible byte count, not an OOM.
        let mut header = Vec::new();
        1000u64.encode_wire(&mut header);
        assert_eq!(
            Vec::<u64>::from_wire(&header),
            Err(WireError::Truncated {
                needed: 8000,
                remaining: 0
            })
        );
        // A length whose byte requirement overflows usize is malformed.
        let mut huge = Vec::new();
        u64::MAX.encode_wire(&mut huge);
        assert_eq!(
            Vec::<f64>::from_wire(&huge),
            Err(WireError::Malformed("vector length overflows"))
        );
        // Nested containers hit the same guard through the element floor.
        let mut nested = Vec::new();
        (1u64 << 40).encode_wire(&mut nested);
        assert!(matches!(
            Vec::<Vec<f64>>::from_wire(&nested),
            Err(WireError::Truncated { .. })
        ));
        // Same for a malformed BinaryCodes header: the (n_codes, n_bits)
        // pair is validated against the remaining payload length *before*
        // any allocation, including the overflowing combinations.
        for (n_codes, n_bits) in [(1u64 << 40, 1u64), (u64::MAX, 64), (u64::MAX, u64::MAX)] {
            let mut header = Vec::new();
            n_codes.encode_wire(&mut header);
            n_bits.encode_wire(&mut header);
            assert!(
                BinaryCodes::from_wire(&header).is_err(),
                "n_codes={n_codes}, n_bits={n_bits}"
            );
        }
    }

    #[test]
    fn wire_error_displays() {
        let eof = WireError::Truncated {
            needed: 24,
            remaining: 3,
        };
        assert_eq!(
            eof.to_string(),
            "truncated wire buffer: needed 24 bytes, 3 remaining"
        );
        let tag = WireError::BadTag {
            context: "Frame",
            tag: 99,
        };
        assert_eq!(tag.to_string(), "bad wire tag for Frame: 99");
        assert!(WireError::Malformed("x").to_string().contains('x'));
    }
}
