//! The circular (ring) communication topology of §4.1.
//!
//! Machines are connected unidirectionally: machine `p` can send only to its
//! successor. The ring can be the identity ring `0 → 1 → … → P−1 → 0` or a
//! random ring (a random cyclic permutation), which is how ParMAC shuffles
//! data across machines between epochs (§4.3). Machines can also be removed
//! (fault tolerance, streaming) or added (streaming) on the fly.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A unidirectional ring over a set of machine ids.
///
/// Machine ids are stable labels (they do not change when other machines are
/// removed), so shards can stay associated with their machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingTopology {
    /// Machine ids in ring order: `order[i]` sends to `order[(i+1) % len]`.
    order: Vec<usize>,
}

impl RingTopology {
    /// The identity ring `0 → 1 → … → n_machines−1 → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n_machines == 0`.
    pub fn new(n_machines: usize) -> Self {
        assert!(n_machines > 0, "a ring needs at least one machine");
        RingTopology {
            order: (0..n_machines).collect(),
        }
    }

    /// A ring over machines `0..n_machines` in random cyclic order (the
    /// cross-machine shuffling of §4.3: "reorganise the circular topology
    /// randomly (while still circular) at the beginning of each new epoch").
    ///
    /// # Panics
    ///
    /// Panics if `n_machines == 0`.
    pub fn shuffled<R: Rng + ?Sized>(n_machines: usize, rng: &mut R) -> Self {
        let mut ring = RingTopology::new(n_machines);
        ring.order.shuffle(rng);
        ring
    }

    /// Builds a ring from an explicit machine order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or contains duplicates.
    pub fn from_order(order: Vec<usize>) -> Self {
        assert!(!order.is_empty(), "a ring needs at least one machine");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), order.len(), "duplicate machine id in ring");
        RingTopology { order }
    }

    /// Number of machines currently in the ring.
    pub fn n_machines(&self) -> usize {
        self.order.len()
    }

    /// Machine ids in ring order.
    pub fn machines(&self) -> &[usize] {
        &self.order
    }

    /// `true` if `machine` is part of the ring.
    pub fn contains(&self, machine: usize) -> bool {
        self.order.contains(&machine)
    }

    /// The machine that `machine` sends to, or `None` if `machine` is not in
    /// the ring (e.g. it was removed by streaming or a fault — asking for the
    /// successor of a gone machine is an answerable question, not a crash).
    pub fn successor(&self, machine: usize) -> Option<usize> {
        let pos = self.position(machine)?;
        Some(self.order[(pos + 1) % self.order.len()])
    }

    /// The machine that sends to `machine`, or `None` if `machine` is not in
    /// the ring.
    pub fn predecessor(&self, machine: usize) -> Option<usize> {
        let pos = self.position(machine)?;
        Some(self.order[(pos + self.order.len() - 1) % self.order.len()])
    }

    /// Removes a machine, reconnecting its predecessor to its successor
    /// (§4.3: "To remove machine p ... reconnect machine p−1 → machine p+1").
    /// Removing a machine that already left the ring is a no-op; the error
    /// case is only the last machine.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is the last machine in the ring.
    pub fn remove_machine(&mut self, machine: usize) {
        if let Some(pos) = self.position(machine) {
            assert!(self.order.len() > 1, "cannot remove the last machine");
            self.order.remove(pos);
        }
    }

    /// Inserts a new machine after `after` (§4.3: "connecting it between any
    /// two machines").
    ///
    /// # Panics
    ///
    /// Panics if `after` is not in the ring or `machine` already is.
    pub fn add_machine_after(&mut self, machine: usize, after: usize) {
        assert!(!self.contains(machine), "machine {machine} already in ring");
        let pos = self
            .position(after)
            .unwrap_or_else(|| panic!("machine {after} is not in the ring"));
        self.order.insert(pos + 1, machine);
    }

    /// The ring distance (number of hops) from `from` to `to`, or `None` if
    /// either machine is not in the ring.
    pub fn hops(&self, from: usize, to: usize) -> Option<usize> {
        let a = self.position(from)?;
        let b = self.position(to)?;
        Some((b + self.order.len() - a) % self.order.len())
    }

    fn position(&self, machine: usize) -> Option<usize> {
        self.order.iter().position(|&m| m == machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_ring_successors() {
        let r = RingTopology::new(4);
        assert_eq!(r.successor(0), Some(1));
        assert_eq!(r.successor(3), Some(0));
        assert_eq!(r.predecessor(0), Some(3));
    }

    #[test]
    fn shuffled_ring_is_a_permutation_and_still_circular() {
        let mut rng = SmallRng::seed_from_u64(0);
        let r = RingTopology::shuffled(8, &mut rng);
        let mut ms = r.machines().to_vec();
        ms.sort_unstable();
        assert_eq!(ms, (0..8).collect::<Vec<_>>());
        // Following successors visits every machine exactly once.
        let mut seen = [false; 8];
        let mut cur = r.machines()[0];
        for _ in 0..8 {
            assert!(!seen[cur]);
            seen[cur] = true;
            cur = r.successor(cur).expect("machine is in the ring");
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(cur, r.machines()[0]);
    }

    #[test]
    fn remove_machine_reconnects_neighbours() {
        let mut r = RingTopology::new(4);
        r.remove_machine(2);
        assert_eq!(r.n_machines(), 3);
        assert_eq!(r.successor(1), Some(3));
        assert_eq!(r.predecessor(3), Some(1));
        assert!(!r.contains(2));
    }

    #[test]
    fn add_machine_inserts_after_anchor() {
        let mut r = RingTopology::new(3);
        r.add_machine_after(7, 1);
        assert_eq!(r.successor(1), Some(7));
        assert_eq!(r.successor(7), Some(2));
        assert_eq!(r.n_machines(), 4);
    }

    #[test]
    fn hops_counts_ring_distance() {
        let r = RingTopology::from_order(vec![3, 1, 0, 2]);
        assert_eq!(r.hops(3, 1), Some(1));
        assert_eq!(r.hops(1, 3), Some(3));
        assert_eq!(r.hops(0, 0), Some(0));
    }

    #[test]
    fn lookups_about_removed_machines_return_none_not_panic() {
        // Regression: `successor`/`predecessor`/`hops` used to abort the
        // process when asked about a machine that had left the ring — a state
        // plain user code reaches via `streaming::remove_machine` followed by
        // a W step.
        let mut r = RingTopology::new(3);
        r.remove_machine(1);
        assert_eq!(r.successor(1), None);
        assert_eq!(r.predecessor(1), None);
        assert_eq!(r.hops(1, 0), None);
        assert_eq!(r.hops(0, 1), None);
        assert_eq!(r.successor(5), None, "never-known machine is also None");
        // Removing an already-removed machine is idempotent.
        r.remove_machine(1);
        assert_eq!(r.n_machines(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate machine id")]
    fn from_order_rejects_duplicates() {
        let _ = RingTopology::from_order(vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last machine")]
    fn cannot_empty_the_ring() {
        let mut r = RingTopology::new(1);
        r.remove_machine(0);
    }
}
