//! The execution-engine seam: [`ClusterBackend`].
//!
//! ParMAC's two steps have very different execution structures — the W step
//! circulates submodels over a ring while the Z step is embarrassingly
//! parallel over data points — but *what* is computed is identical on every
//! substrate. `ClusterBackend` captures that split: a backend decides **how**
//! the ring protocol and the per-shard Z solves are executed (serially under a
//! simulated clock, on real threads, or on a future substrate such as a rayon
//! pool or MPI ranks), while the shared [`SimCluster`] state (shards, ring
//! topology, machine speeds, cost model) and the algorithmic closures supplied
//! by `parmac-core` stay backend-agnostic.
//!
//! Five backends ship today:
//!
//! * [`SimBackend`] — the deterministic synchronous-tick simulator, charging
//!   simulated time to a [`CostModel`] (fig. 10's speedup experiments);
//! * [`ThreadedBackend`] — real OS threads: the crossbeam ring for the W step
//!   and one scoped thread per machine shard for the Z step. Simulated time is
//!   still charged with the same formulas, so speedup curves remain comparable
//!   across backends;
//! * [`PoolBackend`](crate::pool::PoolBackend) — a hand-rolled work-stealing
//!   thread pool (§8.5's shared-memory configuration): the Z step splits every
//!   shard into point chunks any worker can steal, the W step drains each
//!   machine's submodel queue across the local workers;
//! * [`ServerBackend`](crate::server::ServerBackend) — machines as long-lived
//!   actors behind typed crossbeam mailboxes ([`MachineMsg`]): the W step
//!   routes [`SubmodelEnvelope`] hops by the envelope's own visit list, the Z
//!   step is a `ZStepRequest`/reply exchange, and the resident serving fleet
//!   answers Hamming k-NN queries (via
//!   [`QueryRouter`](crate::server::QueryRouter)) *while* training runs;
//! * [`ProcessBackend`](crate::process::ProcessBackend) — machines as real OS
//!   processes (`parmac-machined` workers) connected by Unix-domain sockets:
//!   the coordinator sequences submodel updates exactly once while the worker
//!   ring routes envelope frames, and a SIGKILLed worker becomes a §4.3 fault
//!   the step routes around.
//!
//! [`MachineMsg`]: crate::server::MachineMsg
//! [`SubmodelEnvelope`]: crate::envelope::SubmodelEnvelope
//!
//! The Z step uses a *collect-then-apply* contract: the solve closure returns
//! the changed codes per shard as [`ZUpdate`]s instead of mutating shared
//! state, which is what makes shard-parallel execution safe and keeps the
//! parallel result bitwise identical to the serial one (per-point solves are
//! independent; updates are applied in topology order either way). Because the
//! closure is invoked once per machine shard, it is also the right place for
//! per-shard amortised state: `parmac-core`'s closure builds one
//! `ZStepProblem` (Cholesky factorisation) **and one `ZStepWorkspace`** per
//! shard and reuses them `&mut` across the shard's points, so the per-point
//! kernels allocate nothing regardless of which backend drives them.

use crate::cost::{CostModel, StepTimings, WStepStats, ZStepStats};
use crate::sim::{Fault, SimCluster};
use crate::threaded::run_w_step_threaded;
use std::thread;
use std::time::Instant;

/// A new binary code for one data point, produced by a Z-step solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ZUpdate {
    /// The data point (global index) whose code changed.
    pub point: usize,
    /// The new code as 0/1 values.
    pub code: Vec<f64>,
}

/// An execution engine for ParMAC's distributed steps.
///
/// Implementations run the W-step ring protocol and the per-shard Z solves on
/// their substrate of choice. The trainer in `parmac-core` is generic over
/// this trait and contains no backend-specific dispatch; new substrates plug
/// in here without touching the training logic.
pub trait ClusterBackend {
    /// Human-readable backend name (for reports and logging).
    fn name(&self) -> &'static str;

    /// The cost model this backend *seeds* a trainer's cluster with. At
    /// execution time the cluster's own cost model is authoritative — both
    /// steps charge simulated time from `cluster.cost_model()`, so a cluster
    /// constructed with a different model than the backend's will be charged
    /// with the cluster's.
    fn cost_model(&self) -> CostModel;

    /// Runs one distributed W step: every submodel visits every machine
    /// `epochs` times and is updated on that machine's shard via `update`.
    ///
    /// * `cluster` — shards, ring topology, speeds.
    /// * `submodels` — the `M` circulating submodels; returned updated, in the
    ///   original order.
    /// * `params_per_submodel` — parameter count for the bytes statistic.
    /// * `update` — `update(&mut submodel, machine, shard)` performs one pass
    ///   of stochastic updates. It may be called concurrently for *different*
    ///   submodels, hence `Sync`.
    /// * `fault` — optional machine failure to inject. Only the simulator
    ///   honours faults; real-thread backends ignore the plan (they exercise
    ///   actual thread liveness instead).
    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync;

    /// Runs one Z step: `solve(machine, shard)` computes the changed codes of
    /// one machine's shard and the backend decides how machines execute
    /// (serially or one thread per shard). Returns all updates in ring
    /// topology order plus the step statistics.
    ///
    /// * `n_submodels` — the `M` used by the cost model (`M · N/P · t_r^Z`).
    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync;

    /// Publishes the current auxiliary codes to the backend's serving side,
    /// shard by shard. Called by the trainer whenever the codes are (re)built
    /// wholesale — at initialisation, after re-partitioning and at the end of
    /// a run — so a backend that also *serves* the codes (the
    /// [`ServerBackend`](crate::server::ServerBackend) retrieval fleet) stays
    /// fresh. Purely computational backends ignore it (the default no-op).
    fn publish_codes(&self, _cluster: &SimCluster, _codes: &parmac_hash::BinaryCodes) {}

    /// Publishes the codes of freshly streamed points: `points` were just
    /// added to `machine`'s shard and their codes are rows of `codes`. The
    /// incremental sibling of [`publish_codes`](Self::publish_codes) — a
    /// streaming ingest touches one machine, so only that machine's delta
    /// should move. Default no-op.
    fn publish_point_codes(
        &self,
        _machine: usize,
        _points: &[usize],
        _codes: &parmac_hash::BinaryCodes,
    ) {
    }
}

/// Z-step statistics shared by every backend: simulated time comes from
/// [`SimCluster::simulated_z_time`] (eq. 7), so the simulated speedup curves
/// are directly comparable across substrates.
pub(crate) fn z_stats(cluster: &SimCluster, n_submodels: usize, start: Instant) -> ZStepStats {
    let mut timings = StepTimings::default();
    timings.simulated_compute = cluster.simulated_z_time(n_submodels);
    timings.simulated = timings.simulated_compute;
    ZStepStats {
        timings: timings.with_wall_clock(start.elapsed()),
        points_updated: cluster
            .topology()
            .machines()
            .iter()
            .map(|&m| cluster.shard(m).len())
            .sum(),
    }
}

/// The deterministic synchronous-tick simulator backend.
///
/// Executes both steps serially on the calling thread in ring-topology order,
/// charging simulated time to the configured [`CostModel`]. Supports fault
/// injection (§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBackend {
    cost: CostModel,
}

impl SimBackend {
    /// A simulator charging time to `cost`.
    pub fn new(cost: CostModel) -> Self {
        SimBackend { cost }
    }
}

impl Default for SimBackend {
    /// The distributed-cluster cost preset (table 1 / fig. 10).
    fn default() -> Self {
        SimBackend::new(CostModel::distributed())
    }
}

impl ClusterBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        mut submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync,
    {
        let stats = cluster.run_w_step(&mut submodels, epochs, params_per_submodel, update, fault);
        (submodels, stats)
    }

    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync,
    {
        let start = Instant::now();
        let mut updates = Vec::new();
        for &machine in cluster.topology().machines() {
            updates.extend(solve(machine, cluster.shard(machine)));
        }
        (updates, z_stats(cluster, n_submodels, start))
    }
}

/// The real-thread backend: one OS thread per machine.
///
/// The W step runs the asynchronous crossbeam ring of §4.1; the Z step spawns
/// one scoped thread per machine shard (the paper's "the Z step is
/// embarrassingly parallel": no communication, disjoint shards). Simulated
/// time is charged with the same cost formulas as [`SimBackend`] so that
/// fig-10-style speedup curves cover both steps on either backend; wall-clock
/// time additionally reflects true parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedBackend {
    cost: CostModel,
    parallel_z: bool,
}

impl ThreadedBackend {
    /// A threaded backend with the distributed cost preset and the parallel Z
    /// step enabled.
    pub fn new() -> Self {
        ThreadedBackend {
            cost: CostModel::distributed(),
            parallel_z: true,
        }
    }

    /// Overrides the cost model a trainer built on this backend seeds its
    /// cluster with (the cluster is authoritative at execution time; see
    /// [`ClusterBackend::cost_model`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables or disables the shard-parallel Z step (serial fallback; the
    /// results are bitwise identical either way, see the equivalence tests).
    pub fn with_parallel_z(mut self, on: bool) -> Self {
        self.parallel_z = on;
        self
    }

    /// Whether the Z step runs one thread per shard.
    pub fn parallel_z(&self) -> bool {
        self.parallel_z
    }
}

impl Default for ThreadedBackend {
    fn default() -> Self {
        ThreadedBackend::new()
    }
}

impl ClusterBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        _fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync,
    {
        // Borrow the shards (the W step reads them concurrently but never
        // mutates them): P slice pointers instead of an O(N) copy per step.
        let shards: Vec<&[usize]> = (0..cluster.n_machines())
            .map(|p| cluster.shard(p))
            .collect();
        run_w_step_threaded(
            submodels,
            &shards,
            cluster.topology(),
            epochs,
            params_per_submodel,
            update,
        )
    }

    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync,
    {
        let start = Instant::now();
        let machines = cluster.topology().machines();
        let per_machine: Vec<Vec<ZUpdate>> = if self.parallel_z && machines.len() > 1 {
            thread::scope(|scope| {
                let handles: Vec<_> = machines
                    .iter()
                    .map(|&machine| {
                        let solve = &solve;
                        scope.spawn(move || solve(machine, cluster.shard(machine)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("Z-step shard thread panicked"))
                    .collect()
            })
        } else {
            machines
                .iter()
                .map(|&machine| solve(machine, cluster.shard(machine)))
                .collect()
        };
        let updates: Vec<ZUpdate> = per_machine.into_iter().flatten().collect();
        (updates, z_stats(cluster, n_submodels, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
        let base = n / p;
        (0..p)
            .map(|i| (i * base..(i + 1) * base).collect())
            .collect()
    }

    fn toggle_solve(machine: usize, shard: &[usize]) -> Vec<ZUpdate> {
        // Deterministic per-point "solve": flip points whose index is even,
        // code derived from (machine, point).
        shard
            .iter()
            .filter(|&&n| n % 2 == 0)
            .map(|&n| ZUpdate {
                point: n,
                code: vec![machine as f64, n as f64],
            })
            .collect()
    }

    #[test]
    fn all_backends_z_steps_produce_identical_updates_and_times() {
        let cost = CostModel::new(1.0, 10.0, 5.0);
        let cluster = SimCluster::new(shards(4, 40), cost);
        let sim = SimBackend::new(cost);
        let threaded = ThreadedBackend::new().with_cost_model(cost);
        let pool = crate::pool::PoolBackend::new()
            .with_workers(3)
            .with_chunk_size(4)
            .with_cost_model(cost);
        let (u_sim, s_sim) = sim.run_z_step(&cluster, 8, toggle_solve);
        let (u_thr, s_thr) = threaded.run_z_step(&cluster, 8, toggle_solve);
        let (u_pool, s_pool) = pool.run_z_step(&cluster, 8, toggle_solve);
        assert_eq!(
            u_sim, u_thr,
            "parallel Z must be bitwise identical to serial"
        );
        assert_eq!(
            u_sim, u_pool,
            "work-stealing Z must be bitwise identical to serial"
        );
        assert_eq!(s_sim.points_updated, 40);
        assert_eq!(s_sim.points_updated, s_thr.points_updated);
        assert_eq!(s_sim.points_updated, s_pool.points_updated);
        assert_eq!(s_sim.timings.simulated, s_thr.timings.simulated);
        assert_eq!(s_sim.timings.simulated, s_pool.timings.simulated);
    }

    #[test]
    fn threaded_serial_z_fallback_matches_parallel() {
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        let parallel = ThreadedBackend::new();
        let serial = ThreadedBackend::new().with_parallel_z(false);
        assert!(parallel.parallel_z() && !serial.parallel_z());
        let (u_par, _) = parallel.run_z_step(&cluster, 4, toggle_solve);
        let (u_ser, _) = serial.run_z_step(&cluster, 4, toggle_solve);
        assert_eq!(u_par, u_ser);
    }

    #[test]
    fn z_updates_arrive_in_topology_order() {
        let mut cluster = SimCluster::new(shards(4, 16), CostModel::distributed());
        cluster.set_topology(crate::topology::RingTopology::from_order(vec![2, 0, 3, 1]));
        let backend = ThreadedBackend::new();
        let (updates, _) = backend.run_z_step(&cluster, 2, |machine, shard| {
            shard
                .iter()
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![machine as f64],
                })
                .collect()
        });
        let machine_order: Vec<usize> = updates
            .iter()
            .map(|u| u.code[0] as usize)
            .collect::<Vec<_>>()
            .chunks(4)
            .map(|c| c[0])
            .collect();
        assert_eq!(machine_order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn every_backend_runs_the_w_step_protocol() {
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        for (name, (subs, stats)) in [
            (
                "sim",
                SimBackend::default().run_w_step(
                    &cluster,
                    vec![0usize; 5],
                    2,
                    1,
                    |s, _, shard| *s += shard.len(),
                    None,
                ),
            ),
            (
                "threaded",
                ThreadedBackend::new().run_w_step(
                    &cluster,
                    vec![0usize; 5],
                    2,
                    1,
                    |s, _, shard| *s += shard.len(),
                    None,
                ),
            ),
            (
                "pool",
                crate::pool::PoolBackend::new().with_workers(2).run_w_step(
                    &cluster,
                    vec![0usize; 5],
                    2,
                    1,
                    |s, _, shard| *s += shard.len(),
                    None,
                ),
            ),
        ] {
            assert!(subs.iter().all(|&s| s == 2 * 30), "{name}");
            assert_eq!(stats.update_visits, 5 * 3 * 2, "{name}");
        }
    }

    #[test]
    fn w_step_stats_are_identical_across_backends() {
        // The canonical message count is ring_hops(M, P, e); the simulator
        // counts hops dynamically and must agree with the closed form used by
        // the threaded and pool backends (no-fault case), byte-for-byte.
        let (m, p, e, params) = (5usize, 4usize, 3usize, 7usize);
        let cluster = SimCluster::new(shards(p, 40), CostModel::distributed());
        let noop = |_: &mut (), _: usize, _: &[usize]| {};
        let (_, s_sim) =
            SimBackend::default().run_w_step(&cluster, vec![(); m], e, params, noop, None);
        let (_, s_thr) =
            ThreadedBackend::new().run_w_step(&cluster, vec![(); m], e, params, noop, None);
        let (_, s_pool) = crate::pool::PoolBackend::new().with_workers(2).run_w_step(
            &cluster,
            vec![(); m],
            e,
            params,
            noop,
            None,
        );
        let expected = crate::cost::ring_hops(m, p, e);
        for (name, stats) in [("sim", s_sim), ("threaded", s_thr), ("pool", s_pool)] {
            assert_eq!(stats.messages_sent, expected, "{name} messages");
            assert_eq!(
                stats.bytes_sent,
                expected * params * std::mem::size_of::<f64>(),
                "{name} bytes"
            );
            assert_eq!(stats.update_visits, m * p * e, "{name} visits");
        }
    }

    #[test]
    fn backend_names_and_cost_models_are_exposed() {
        let sim = SimBackend::new(CostModel::shared_memory());
        assert_eq!(sim.name(), "sim");
        assert_eq!(sim.cost_model(), CostModel::shared_memory());
        let thr = ThreadedBackend::new();
        assert_eq!(thr.name(), "threaded");
        assert_eq!(thr.cost_model(), CostModel::distributed());
    }
}
