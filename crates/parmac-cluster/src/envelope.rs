//! Per-submodel protocol metadata.
//!
//! In ParMAC's asynchronous W step "each submodel carries a counter that is
//! initially 1 and increases every time it visits a machine" (§4.1); the more
//! general fault-tolerant variant tags each submodel "with a list (per epoch)
//! of machines it has to visit" (§4.3). [`SubmodelEnvelope`] implements both:
//! the visit list drives the epoch bookkeeping and the fault-tolerant routing
//! (see [`next_machine`]), the counters expose progress for statistics.
//!
//! Machines removed by [`handle_fault`] are remembered in
//! [`faulted_machines`] and excluded from every subsequent epoch refill, so a
//! failed machine never re-enters a submodel's route — the visit list is the
//! authoritative record of where the submodel still has to go.
//!
//! [`next_machine`]: SubmodelEnvelope::next_machine
//! [`handle_fault`]: SubmodelEnvelope::handle_fault
//! [`faulted_machines`]: SubmodelEnvelope::faulted_machines

use serde::{Deserialize, Serialize};

/// A submodel in transit around the ring, together with its protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmodelEnvelope<S> {
    /// Which submodel this is (index into the model's submodel list).
    pub submodel_id: usize,
    /// The submodel parameters being circulated.
    pub payload: S,
    /// Number of machine visits so far (both updating and forwarding visits).
    pub visits: usize,
    /// Epochs fully completed: incremented whenever the pending list empties.
    pub epochs_completed: usize,
    /// Hops made in the final communication-only lap.
    pub forward_visits: usize,
    /// Machines this submodel still has to visit in the current epoch
    /// (§4.3's more general mechanism; kept in sync by [`record_visit`]).
    ///
    /// [`record_visit`]: SubmodelEnvelope::record_visit
    pub pending_machines: Vec<usize>,
    /// Machines removed by [`handle_fault`]: they are excluded from every
    /// epoch refill, so a failed machine never comes back into the route.
    ///
    /// [`handle_fault`]: SubmodelEnvelope::handle_fault
    pub faulted_machines: Vec<usize>,
}

impl<S> SubmodelEnvelope<S> {
    /// Wraps a submodel about to start its W step on a ring of `machines`.
    pub fn new(submodel_id: usize, payload: S, machines: &[usize]) -> Self {
        SubmodelEnvelope {
            submodel_id,
            payload,
            visits: 0,
            epochs_completed: 0,
            forward_visits: 0,
            pending_machines: machines.to_vec(),
            faulted_machines: Vec::new(),
        }
    }

    /// Whether the submodel should still be *updated* when visiting a machine
    /// (as opposed to merely forwarded in the final communication lap): true
    /// until all `epochs` visit lists have been worked off.
    pub fn needs_update(&self, epochs: usize) -> bool {
        self.epochs_completed < epochs
    }

    /// Whether the envelope has completed the full W step: every epoch's
    /// visit list worked off, plus the final communication-only lap of
    /// `P_live − 1` hops over the `n_machines`-strong ring (machines that
    /// faulted after this envelope last saw them reduce the lap accordingly).
    pub fn is_finished(&self, n_machines: usize, epochs: usize) -> bool {
        let live = n_machines.saturating_sub(self.faulted_machines.len());
        !self.needs_update(epochs) && self.forward_visits >= live.saturating_sub(1)
    }

    /// Records a visit to `machine`: increments the counters, removes the
    /// machine from the pending list (refilling the list with the non-faulted
    /// members of `all_machines` when an epoch's list empties), and returns
    /// whether the visit performed an update.
    pub fn record_visit(&mut self, machine: usize, all_machines: &[usize], epochs: usize) -> bool {
        let updating = self.needs_update(epochs);
        self.visits += 1;
        if updating {
            if let Some(pos) = self.pending_machines.iter().position(|&m| m == machine) {
                self.pending_machines.remove(pos);
            }
            if self.pending_machines.is_empty() {
                self.epochs_completed += 1;
                if self.needs_update(epochs) {
                    // Start of the next epoch: must visit every live machine
                    // again — but never one that has faulted.
                    self.pending_machines = all_machines
                        .iter()
                        .copied()
                        .filter(|m| !self.faulted_machines.contains(m))
                        .collect();
                }
            }
        } else {
            self.forward_visits += 1;
        }
        updating
    }

    /// Handles the failure of `machine` (§4.3): the machine can no longer be
    /// visited, so it is dropped from the pending list *and* remembered so
    /// that later epoch refills exclude it.
    ///
    /// Routing follows from the list: a machine holding an envelope whose
    /// pending list does not contain it relays the envelope onward instead of
    /// processing it (see the server backend's W step), so faulted machines
    /// are routed around without any successor-walk special cases.
    ///
    /// Removing the faulted machine may *empty* the pending list — when the
    /// fault strikes the last unvisited machine of the epoch. That completes
    /// the epoch exactly as a visit would, so the same epoch-advance logic
    /// runs here: `epochs_completed` is bumped and the list refilled from the
    /// non-faulted members of `all_machines` while updates remain. Without
    /// this the envelope would wedge — relayed forever by machines that see
    /// an empty-but-unfinished visit list.
    pub fn handle_fault(&mut self, machine: usize, all_machines: &[usize], epochs: usize) {
        self.pending_machines.retain(|&m| m != machine);
        if !self.faulted_machines.contains(&machine) {
            self.faulted_machines.push(machine);
        }
        while self.pending_machines.is_empty() && self.needs_update(epochs) {
            self.epochs_completed += 1;
            if self.needs_update(epochs) {
                self.pending_machines = all_machines
                    .iter()
                    .copied()
                    .filter(|m| !self.faulted_machines.contains(m))
                    .collect();
            }
        }
    }

    /// Whether a machine holding this envelope should process it (record a
    /// visit, possibly update) rather than relay it onward: always during the
    /// final forwarding lap, and only when on the pending list during the
    /// update phase. This is the §4.3 routing rule — the visit list, not a
    /// hardcoded successor walk, decides where the envelope stops next.
    pub fn should_process_at(&self, machine: usize, epochs: usize) -> bool {
        !self.needs_update(epochs) || self.pending_machines.contains(&machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_drives_update_vs_forward_and_finish() {
        let machines = [0usize, 1, 2];
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        let epochs = 2;
        // 6 update visits (P*e), then 2 forwarding visits (P-1), then finished.
        let mut updates = 0;
        let mut forwards = 0;
        let mut machine = 0;
        while !env.is_finished(machines.len(), epochs) {
            if env.record_visit(machine, &machines, epochs) {
                updates += 1;
            } else {
                forwards += 1;
            }
            machine = (machine + 1) % machines.len();
        }
        assert_eq!(updates, 6);
        assert_eq!(forwards, 2);
        assert_eq!(env.visits, 8); // P(e+1) − 1
        assert_eq!(env.epochs_completed, 2);
    }

    #[test]
    fn pending_list_refills_each_epoch() {
        let machines = [0usize, 1];
        let mut env = SubmodelEnvelope::new(3, 42u32, &machines);
        assert_eq!(env.pending_machines, vec![0, 1]);
        env.record_visit(0, &machines, 2);
        assert_eq!(env.pending_machines, vec![1]);
        env.record_visit(1, &machines, 2);
        // epoch finished but another epoch remains → refilled
        assert_eq!(env.pending_machines, vec![0, 1]);
    }

    #[test]
    fn fault_removes_machine_from_pending() {
        let machines = [0usize, 1, 2];
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        env.handle_fault(1, &machines, 1);
        assert_eq!(env.pending_machines, vec![0, 2]);
        assert_eq!(env.faulted_machines, vec![1]);
    }

    #[test]
    fn faulted_machine_is_never_pending_again() {
        // Regression: the epoch refill used to reinstate machines previously
        // removed by handle_fault. Fault machine 1 during epoch 1 of a
        // 3-machine / 2-epoch run and drive the envelope to completion: 1 must
        // never appear on the pending list again.
        let machines = [0usize, 1, 2];
        let epochs = 2;
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        assert!(env.record_visit(0, &machines, epochs));
        env.handle_fault(1, &machines, epochs); // machine 1 dies mid-epoch-1
        assert!(!env.pending_machines.contains(&1));
        let mut visited = Vec::new();
        let mut machine = 2; // continue around the (reconnected) ring 0 → 2
        while !env.is_finished(machines.len(), epochs) {
            assert!(
                !env.pending_machines.contains(&1),
                "faulted machine reinstated: pending {:?} after visits {:?}",
                env.pending_machines,
                visited
            );
            env.record_visit(machine, &machines, epochs);
            visited.push(machine);
            machine = if machine == 0 { 2 } else { 0 };
        }
        // Epoch 1 finishes on {0, 2}; epoch 2 refills with {0, 2} only; the
        // final lap is P_live − 1 = 1 hop.
        assert_eq!(env.epochs_completed, 2);
        assert_eq!(env.forward_visits, 1);
        assert!(!visited.is_empty());
    }

    #[test]
    fn single_machine_single_epoch_finishes_immediately_after_update() {
        let machines = [0usize];
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        assert!(!env.is_finished(1, 1));
        assert!(env.record_visit(0, &machines, 1));
        assert!(env.is_finished(1, 1));
    }

    #[test]
    fn routing_processes_at_pending_machines_only_until_the_forwarding_lap() {
        let ring = [0usize, 1, 2, 3];
        let mut env = SubmodelEnvelope::new(0, (), &ring);
        // Machine 1 faulted: it must relay, the pending machines process.
        env.handle_fault(1, &ring, 1);
        assert!(env.should_process_at(0, 1));
        assert!(!env.should_process_at(1, 1));
        assert!(env.should_process_at(2, 1));
        // A visited machine relays for the rest of the epoch.
        env.record_visit(0, &ring, 1);
        assert!(!env.should_process_at(0, 1));
        // During the forwarding lap every machine processes (forward hop).
        env.record_visit(2, &ring, 1);
        env.record_visit(3, &ring, 1);
        assert!(!env.needs_update(1));
        assert!(env.should_process_at(0, 1) && env.should_process_at(1, 1));
    }

    #[test]
    fn two_sequential_faults_in_one_epoch_route_to_completion() {
        // Two machines die within the same epoch of a 4-machine / 2-epoch
        // run. Neither may ever reappear on the pending list, and the
        // envelope must still run to completion over the two survivors with
        // a correctly shortened forwarding lap.
        let machines = [0usize, 1, 2, 3];
        let epochs = 2;
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        assert!(env.record_visit(0, &machines, epochs));
        env.handle_fault(1, &machines, epochs);
        env.handle_fault(3, &machines, epochs);
        assert_eq!(env.pending_machines, vec![2]);
        assert_eq!(env.faulted_machines, vec![1, 3]);
        let mut visited = Vec::new();
        let mut machine = 2; // surviving ring is 0 → 2
        while !env.is_finished(machines.len(), epochs) {
            assert!(
                !env.pending_machines.contains(&1) && !env.pending_machines.contains(&3),
                "faulted machine reinstated: pending {:?} after visits {:?}",
                env.pending_machines,
                visited
            );
            env.record_visit(machine, &machines, epochs);
            visited.push(machine);
            machine = if machine == 0 { 2 } else { 0 };
        }
        // Epoch 1 finishes at 2; epoch 2 refills with {0, 2}; the final lap
        // over the 2 live machines is a single hop.
        assert_eq!(env.epochs_completed, 2);
        assert_eq!(env.forward_visits, 1);
        assert_eq!(visited.len(), 4); // finish epoch 1 (1) + epoch 2 (2) + lap (1)
    }

    #[test]
    fn fault_emptying_the_pending_list_completes_the_epoch() {
        // The second fault of the epoch strikes the *last* unvisited machine:
        // the epoch must complete (and the next one start without the dead
        // machines) exactly as a visit would have done — otherwise the
        // envelope is relayed forever with an empty-but-unfinished list.
        let machines = [0usize, 1, 2];
        let epochs = 2;
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        assert!(env.record_visit(0, &machines, epochs));
        env.handle_fault(1, &machines, epochs);
        assert_eq!(env.pending_machines, vec![2]);
        env.handle_fault(2, &machines, epochs); // empties epoch 1's list
        assert_eq!(env.epochs_completed, 1);
        assert_eq!(env.pending_machines, vec![0]); // epoch 2, survivors only
        assert!(env.should_process_at(0, epochs));
        assert!(env.record_visit(0, &machines, epochs));
        assert!(!env.needs_update(epochs));
        // One live machine → zero-hop forwarding lap: already finished.
        assert!(env.is_finished(machines.len(), epochs));
    }
}
