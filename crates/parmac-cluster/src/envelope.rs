//! Per-submodel protocol metadata.
//!
//! In ParMAC's asynchronous W step "each submodel carries a counter that is
//! initially 1 and increases every time it visits a machine" (§4.1); the more
//! general fault-tolerant variant tags each submodel "with a list (per epoch)
//! of machines it has to visit" (§4.3). [`SubmodelEnvelope`] implements both:
//! the counter drives the normal flow, the visit list supports fault recovery
//! and arbitrary per-submodel topologies.

use serde::{Deserialize, Serialize};

/// A submodel in transit around the ring, together with its protocol state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmodelEnvelope<S> {
    /// Which submodel this is (index into the model's submodel list).
    pub submodel_id: usize,
    /// The submodel parameters being circulated.
    pub payload: S,
    /// Number of machine visits so far (both updating and forwarding visits).
    pub visits: usize,
    /// Machines this submodel still has to visit in the current epoch
    /// (§4.3's more general mechanism; kept in sync by [`record_visit`]).
    ///
    /// [`record_visit`]: SubmodelEnvelope::record_visit
    pub pending_machines: Vec<usize>,
}

impl<S> SubmodelEnvelope<S> {
    /// Wraps a submodel about to start its W step on a ring of `machines`.
    pub fn new(submodel_id: usize, payload: S, machines: &[usize]) -> Self {
        SubmodelEnvelope {
            submodel_id,
            payload,
            visits: 0,
            pending_machines: machines.to_vec(),
        }
    }

    /// Whether the submodel should still be *updated* when visiting a machine
    /// (as opposed to merely forwarded in the final communication lap).
    ///
    /// With `P` machines and `e` epochs, updates happen on the first `e·P`
    /// visits.
    pub fn needs_update(&self, n_machines: usize, epochs: usize) -> bool {
        self.visits < n_machines * epochs
    }

    /// Whether the envelope has completed the full W step (all update visits
    /// plus the final `P−1` forwarding hops), i.e. `visits ≥ P(e+1) − 1`.
    pub fn is_finished(&self, n_machines: usize, epochs: usize) -> bool {
        self.visits >= n_machines * (epochs + 1) - 1
    }

    /// Records a visit to `machine`: increments the counter, removes the
    /// machine from the pending list (refilling the list with `all_machines`
    /// when an epoch's list empties), and returns whether the visit performed
    /// an update.
    pub fn record_visit(&mut self, machine: usize, all_machines: &[usize], epochs: usize) -> bool {
        let updating = self.needs_update(all_machines.len(), epochs);
        self.visits += 1;
        if updating {
            if let Some(pos) = self.pending_machines.iter().position(|&m| m == machine) {
                self.pending_machines.remove(pos);
            }
            if self.pending_machines.is_empty() && self.needs_update(all_machines.len(), epochs) {
                // Start of the next epoch: must visit everyone again.
                self.pending_machines = all_machines.to_vec();
            }
        }
        updating
    }

    /// Handles the failure of `machine` (§4.3): the machine can no longer be
    /// visited, so it is dropped from the pending list.
    pub fn handle_fault(&mut self, machine: usize) {
        self.pending_machines.retain(|&m| m != machine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_drives_update_vs_forward_and_finish() {
        let machines = [0usize, 1, 2];
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        let epochs = 2;
        // 6 update visits (P*e), then 2 forwarding visits (P-1), then finished.
        let mut updates = 0;
        let mut forwards = 0;
        let mut machine = 0;
        while !env.is_finished(machines.len(), epochs) {
            if env.record_visit(machine, &machines, epochs) {
                updates += 1;
            } else {
                forwards += 1;
            }
            machine = (machine + 1) % machines.len();
        }
        assert_eq!(updates, 6);
        assert_eq!(forwards, 2);
        assert_eq!(env.visits, 8); // P(e+1) − 1
    }

    #[test]
    fn pending_list_refills_each_epoch() {
        let machines = [0usize, 1];
        let mut env = SubmodelEnvelope::new(3, 42u32, &machines);
        assert_eq!(env.pending_machines, vec![0, 1]);
        env.record_visit(0, &machines, 2);
        assert_eq!(env.pending_machines, vec![1]);
        env.record_visit(1, &machines, 2);
        // epoch finished but another epoch remains → refilled
        assert_eq!(env.pending_machines, vec![0, 1]);
    }

    #[test]
    fn fault_removes_machine_from_pending() {
        let machines = [0usize, 1, 2];
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        env.handle_fault(1);
        assert_eq!(env.pending_machines, vec![0, 2]);
    }

    #[test]
    fn single_machine_single_epoch_finishes_immediately_after_update() {
        let machines = [0usize];
        let mut env = SubmodelEnvelope::new(0, (), &machines);
        assert!(!env.is_finished(1, 1));
        assert!(env.record_visit(0, &machines, 1));
        assert!(env.is_finished(1, 1));
    }
}
