//! Real multi-threaded execution of the ParMAC W step.
//!
//! One OS thread plays the role of each machine; the unidirectional ring is a
//! set of crossbeam channels; each machine runs the asynchronous loop of §4.1:
//! *"extract a submodel from the queue, process it (except in epoch e+1) and
//! send it to the machine's successor ... Each submodel carries a counter"*.
//! When a submodel finishes its final forwarding lap it is delivered to a
//! collector channel instead of travelling further, which is the in-process
//! equivalent of "every machine now holds a copy of the final model".
//!
//! The backend is used by `parmac-core`'s ParMAC trainer when real parallelism
//! (and wall-clock timing on a multicore host) is wanted, and by the test
//! suite to check that the concurrent protocol computes the same kind of model
//! as the deterministic simulator.

use crate::cost::{ring_hops, StepTimings, WStepStats};
use crate::envelope::SubmodelEnvelope;
use crate::topology::RingTopology;
use crate::waits;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::thread;
use std::time::Instant;

enum Message<S> {
    Envelope(SubmodelEnvelope<S>),
    Shutdown,
}

/// Runs one distributed W step on real threads.
///
/// * `submodels` — the `M` submodels to train; returned updated, in the same
///   order.
/// * `shards` — per-machine point indices, indexed by machine id (`shards[p]`
///   is machine `p`'s local data). Borrowed, not cloned: a W step touches the
///   shards read-only, so callers pass `P` slices instead of copying `N`
///   indices per step.
/// * `topology` — the ring; every machine id it contains must be a valid index
///   into `shards`.
/// * `epochs` — the number of passes `e` over the distributed dataset.
/// * `params_per_submodel` — parameter count, used for the bytes statistic.
/// * `update` — `update(&mut submodel, machine, shard)` performs one pass of
///   stochastic updates of the submodel on that machine's shard. It is called
///   concurrently from several threads (for *different* submodels), hence
///   `Sync`.
///
/// Returns the updated submodels and communication statistics
/// (`messages_sent` is the canonical fault-free hop count,
/// [`ring_hops`]`(M, P, e)`, the same formula the simulator's dynamic count
/// reduces to). Simulated time is not charged here (use
/// [`SimCluster`](crate::sim::SimCluster) for that); wall-clock time is
/// measured.
///
/// # Panics
///
/// Panics if `epochs == 0` or the topology references a machine with no shard
/// entry.
pub fn run_w_step_threaded<S, F>(
    submodels: Vec<S>,
    shards: &[&[usize]],
    topology: &RingTopology,
    epochs: usize,
    params_per_submodel: usize,
    update: F,
) -> (Vec<S>, WStepStats)
where
    S: Send,
    F: Fn(&mut S, usize, &[usize]) + Sync,
{
    assert!(epochs > 0, "need at least one epoch");
    let machines = topology.machines().to_vec();
    let p = machines.len();
    assert!(
        machines.iter().all(|&m| m < shards.len()),
        "topology references a machine without a shard"
    );
    let m_total = submodels.len();
    let start = Instant::now();

    if m_total == 0 {
        return (
            submodels,
            WStepStats {
                timings: StepTimings::default().with_wall_clock(start.elapsed()),
                ..WStepStats::default()
            },
        );
    }

    // Channels: one inbox per machine (indexed by ring position), plus a
    // collector for finished submodels.
    let mut senders: Vec<Sender<Message<S>>> = Vec::with_capacity(p);
    let mut receivers: Vec<Option<Receiver<Message<S>>>> = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let (done_tx, done_rx) = unbounded::<SubmodelEnvelope<S>>();

    // Seed each machine's queue with its portion of the submodels (round
    // robin by ring position, as in fig. 2).
    for (idx, sub) in submodels.into_iter().enumerate() {
        let env = SubmodelEnvelope::new(idx, sub, &machines);
        senders[idx % p]
            .send(Message::Envelope(env))
            .expect("seed send");
    }

    let update_visits = std::sync::atomic::AtomicUsize::new(0);

    thread::scope(|scope| {
        for (pos, &machine) in machines.iter().enumerate() {
            let rx = receivers[pos].take().expect("receiver taken once");
            let next_tx = senders[(pos + 1) % p].clone();
            let done_tx = done_tx.clone();
            let shard = shards[machine];
            let update = &update;
            let machines_ref = &machines;
            let update_visits = &update_visits;
            scope.spawn(move || {
                while let Ok(msg) = waits::recv_bounded(&rx, waits::IDLE_TICK) {
                    let mut env = match msg {
                        Message::Shutdown => break,
                        Message::Envelope(env) => env,
                    };
                    let updated = env.record_visit(machine, machines_ref, epochs);
                    if updated {
                        update(&mut env.payload, machine, shard);
                        update_visits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    if env.is_finished(p, epochs) {
                        done_tx.send(env).expect("collector alive");
                    } else {
                        next_tx.send(Message::Envelope(env)).expect("ring alive");
                    }
                }
            });
        }

        // Collector: once every submodel has finished, shut the ring down.
        let mut finished: Vec<Option<S>> = (0..m_total).map(|_| None).collect();
        for _ in 0..m_total {
            // Heartbeat-bounded wait; these are scoped threads, so an
            // `expect` failure re-raises at scope join rather than dying
            // silently like a detached actor would.
            let env = waits::recv_bounded(&done_rx, waits::IDLE_TICK)
                .expect("all submodels eventually finish");
            finished[env.submodel_id] = Some(env.payload);
        }
        for tx in &senders {
            let _ = tx.send(Message::Shutdown);
        }
        finished
    })
    .into_iter()
    .map(|s| s.expect("every submodel collected"))
    .collect::<Vec<S>>()
    .pipe(|result| {
        let msgs = ring_hops(m_total, p, epochs);
        let stats = WStepStats {
            timings: StepTimings::default().with_wall_clock(start.elapsed()),
            messages_sent: msgs,
            bytes_sent: msgs * params_per_submodel * std::mem::size_of::<f64>(),
            update_visits: update_visits.load(std::sync::atomic::Ordering::Relaxed),
        };
        (result, stats)
    })
}

/// Tiny pipe helper to keep the statistics assembly readable.
trait Pipe: Sized {
    fn pipe<T, F: FnOnce(Self) -> T>(self, f: F) -> T {
        f(self)
    }
}

impl<T: Sized> Pipe for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
        let base = n / p;
        (0..p)
            .map(|i| (i * base..(i + 1) * base).collect())
            .collect()
    }

    fn as_refs(shards: &[Vec<usize>]) -> Vec<&[usize]> {
        shards.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn every_submodel_is_updated_on_every_machine_each_epoch() {
        let shards = shards(4, 40);
        let topology = RingTopology::new(4);
        let epochs = 3;
        let visits: Mutex<HashMap<(usize, usize), usize>> = Mutex::new(HashMap::new());
        let submodels: Vec<usize> = (0..6).collect();
        let (result, stats) = run_w_step_threaded(
            submodels,
            &as_refs(&shards),
            &topology,
            epochs,
            1,
            |sub, machine, _shard| {
                *visits.lock().entry((*sub, machine)).or_insert(0) += 1;
            },
        );
        assert_eq!(result, (0..6).collect::<Vec<_>>());
        let visits = visits.lock();
        for sub in 0..6 {
            for machine in 0..4 {
                assert_eq!(
                    visits.get(&(sub, machine)),
                    Some(&epochs),
                    "({sub},{machine})"
                );
            }
        }
        assert_eq!(stats.update_visits, 6 * 4 * epochs);
    }

    #[test]
    fn submodels_return_in_original_order() {
        let shards = shards(3, 9);
        let topology = RingTopology::new(3);
        let submodels: Vec<String> = (0..5).map(|i| format!("model-{i}")).collect();
        let (result, _) = run_w_step_threaded(
            submodels.clone(),
            &as_refs(&shards),
            &topology,
            1,
            1,
            |_, _, _| {},
        );
        assert_eq!(result, submodels);
    }

    #[test]
    fn counters_accumulate_across_machines() {
        // Each visit adds the shard length; after e epochs on P machines each
        // counter equals e * N.
        let shards = shards(4, 32);
        let topology = RingTopology::new(4);
        let submodels = vec![0usize; 3];
        let (result, _) = run_w_step_threaded(
            submodels,
            &as_refs(&shards),
            &topology,
            2,
            1,
            |sub, _, shard| {
                *sub += shard.len();
            },
        );
        assert!(result.iter().all(|&c| c == 2 * 32));
    }

    #[test]
    fn works_with_single_machine() {
        let shards = shards(1, 10);
        let topology = RingTopology::new(1);
        let submodels = vec![0usize; 2];
        let (result, stats) = run_w_step_threaded(
            submodels,
            &as_refs(&shards),
            &topology,
            2,
            1,
            |sub, _, _| {
                *sub += 1;
            },
        );
        assert_eq!(result, vec![2, 2]);
        assert_eq!(stats.update_visits, 4);
    }

    #[test]
    fn empty_submodel_list_is_a_noop() {
        let shards = shards(2, 4);
        let topology = RingTopology::new(2);
        let submodels: Vec<u8> = Vec::new();
        let (result, stats) =
            run_w_step_threaded(submodels, &as_refs(&shards), &topology, 1, 1, |_, _, _| {});
        assert!(result.is_empty());
        assert_eq!(stats.update_visits, 0);
    }

    #[test]
    fn shuffled_topology_is_respected() {
        let shards = shards(4, 8);
        let topology = RingTopology::from_order(vec![2, 0, 3, 1]);
        let seen = Mutex::new(Vec::new());
        let submodels = vec![(); 1];
        run_w_step_threaded(
            submodels,
            &as_refs(&shards),
            &topology,
            1,
            1,
            |_, machine, _| {
                seen.lock().push(machine);
            },
        );
        let seen = seen.lock();
        assert_eq!(seen.len(), 4);
        // The single submodel starts at ring position 0 (machine 2) and walks
        // the ring in order.
        assert_eq!(*seen, vec![2, 0, 3, 1]);
    }
}
