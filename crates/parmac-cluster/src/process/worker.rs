//! The `parmac-machined` worker: one ring machine as an OS process.
//!
//! A worker is deliberately thin — the distributed *control plane* of the
//! §4.3 ring. It holds its resident shard codes, receives envelopes from its
//! ring predecessor, routes them by the envelope's visit list
//! (`should_process_at`), asks the coordinator to apply update visits, and
//! forwards envelopes to the next live successor. The submodel parameters
//! and the update closures never leave the coordinator, so the worker needs
//! no knowledge of the model being trained.
//!
//! Concurrency shape: reader threads (coordinator connection, ring peer
//! connections) pump frames into one mailbox; a single `worker_main_loop`
//! owns all state and does all writes. Every loop is an actor region under
//! the workspace lint — bounded waits, no panics.

use std::collections::{BTreeSet, HashMap};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parmac_hash::BinaryCodes;

use crate::backend::ZUpdate;
use crate::envelope::SubmodelEnvelope;
use crate::waits;

use super::frames::Frame;
use super::transport::{self, FrameReader};
use super::ProcessConfig;

/// Read-poll granularity for worker sockets: short, because a worker's whole
/// job is routing latency.
const READ_TICK: Duration = Duration::from_millis(5);

enum WorkerEvent {
    Frame(Frame),
    CoordClosed,
}

struct RoundState {
    round: u64,
    epochs: usize,
    ring: Vec<usize>,
}

/// The worker's resident shard: the same replica structure the in-process
/// server backend keeps, fed by `LoadShard` snapshots and `ApplyZ` streams.
struct ShardReplica {
    points: Vec<usize>,
    row_of: HashMap<usize, usize>,
    codes: BinaryCodes,
    seq: u64,
}

impl ShardReplica {
    fn apply(&mut self, update: &ZUpdate) {
        match self.row_of.get(&update.point) {
            Some(&row) => self.codes.set_code(row, &update.code),
            None => {
                self.row_of.insert(update.point, self.points.len());
                self.points.push(update.point);
                self.codes.push_code(&update.code);
            }
        }
    }
}

struct WorkerCtx {
    machine: usize,
    dir: PathBuf,
    cfg: ProcessConfig,
    coord: UnixStream,
    events_rx: Receiver<WorkerEvent>,
    round: Option<RoundState>,
    dead: BTreeSet<usize>,
    peers: HashMap<usize, UnixStream>,
    /// Envelopes for a round whose `WStepBegin` has not arrived yet: a fast
    /// predecessor can race the coordinator's step broadcast on a different
    /// connection. Replayed in arrival order when the round opens.
    stashed: Vec<(u64, u64, SubmodelEnvelope<()>)>,
    replica: Option<ShardReplica>,
}

/// Runs the worker for `machine` against the fleet directory `dir` until the
/// coordinator shuts it down. Returns the process exit code: 0 for a clean
/// shutdown (including coordinator disappearance — an orphaned worker exits
/// rather than lingering), non-zero for setup failures.
pub fn run_machined(machine: usize, dir: &Path) -> i32 {
    let cfg = ProcessConfig::default();
    let listener = match UnixListener::bind(dir.join(format!("m{machine}.sock"))) {
        Ok(listener) => listener,
        Err(_) => return 2,
    };
    if listener.set_nonblocking(true).is_err() {
        return 2;
    }
    let coord = match transport::connect_with_backoff(
        &dir.join("coord.sock"),
        cfg.connect_timeout,
        cfg.backoff_initial,
        cfg.backoff_cap,
    ) {
        Ok(stream) => stream,
        Err(_) => return 3,
    };
    if transport::write_frame(&coord, &Frame::Hello { machine }).is_err() {
        return 3;
    }
    let coord_reader = match coord
        .try_clone()
        .map_err(|_| ())
        .and_then(|clone| FrameReader::new(clone, READ_TICK).map_err(|_| ()))
    {
        Ok(reader) => reader,
        Err(()) => return 3,
    };

    let stop = Arc::new(AtomicBool::new(false));
    let (events_tx, events_rx) = unbounded();

    let accept_tx = events_tx.clone();
    let accept_stop = Arc::clone(&stop);
    let accept = thread::Builder::new()
        .name(format!("machined-{machine}-accept"))
        .spawn(move || worker_accept_loop(&listener, &accept_tx, &accept_stop));
    if accept.is_err() {
        return 4;
    }
    let coord_stop = Arc::clone(&stop);
    let coord_thread = thread::Builder::new()
        .name(format!("machined-{machine}-coord"))
        .spawn(move || coord_reader_loop(coord_reader, &events_tx, &coord_stop));
    if coord_thread.is_err() {
        return 4;
    }

    let mut ctx = WorkerCtx {
        machine,
        dir: dir.to_path_buf(),
        cfg,
        coord,
        events_rx,
        round: None,
        dead: BTreeSet::new(),
        peers: HashMap::new(),
        stashed: Vec::new(),
        replica: None,
    };
    let code = worker_main_loop(&mut ctx);
    // Reader threads exit within a tick of the stop flag; the process exit
    // below reclaims them regardless.
    stop.store(true, Ordering::SeqCst);
    code
}

/// The worker's single state-owning loop: every frame, from the coordinator
/// or any ring peer, lands here.
fn worker_main_loop(ctx: &mut WorkerCtx) -> i32 {
    loop {
        match waits::recv_bounded(&ctx.events_rx, waits::IDLE_TICK) {
            Ok(WorkerEvent::CoordClosed) => return 0,
            Ok(WorkerEvent::Frame(frame)) => {
                if let Some(code) = handle_frame(ctx, frame) {
                    return code;
                }
            }
            // All reader threads gone without a shutdown: broken setup.
            Err(()) => return 4,
        }
    }
}

/// Dispatches one frame. `Some(code)` ends the worker.
fn handle_frame(ctx: &mut WorkerCtx, frame: Frame) -> Option<i32> {
    match frame {
        Frame::Ping { nonce } => reply_coord(ctx, &Frame::Pong { nonce }),
        Frame::Shutdown => return Some(0),
        Frame::WStepBegin {
            round,
            epochs,
            ring,
        } => {
            ctx.round = Some(RoundState {
                round,
                epochs,
                ring,
            });
            let stashed = std::mem::take(&mut ctx.stashed);
            for (env_round, generation, envelope) in stashed {
                if env_round == round {
                    route_envelope(ctx, round, generation, envelope);
                } else if env_round > round {
                    ctx.stashed.push((env_round, generation, envelope));
                }
            }
        }
        Frame::PeerDown { machine } => {
            ctx.dead.insert(machine);
            ctx.peers.remove(&machine);
        }
        Frame::Envelope {
            round,
            generation,
            envelope,
        } => match &ctx.round {
            Some(rs) if rs.round == round => route_envelope(ctx, round, generation, envelope),
            // Ahead of our WStepBegin: stash, replay when the round opens.
            _ if ctx.round.as_ref().is_none_or(|rs| round > rs.round) => {
                ctx.stashed.push((round, generation, envelope));
            }
            // Behind: a relic of a finished round; drop it.
            _ => {}
        },
        Frame::Processed {
            round,
            generation,
            envelope,
            finished,
        } => {
            if !finished {
                forward_envelope(ctx, round, generation, envelope);
            }
        }
        Frame::Stale {
            round: _,
            submodel: _,
        } => {}
        Frame::LoadShard { points, codes, seq } => {
            let newer = ctx.replica.as_ref().is_none_or(|r| seq > r.seq);
            if newer {
                let row_of = points.iter().enumerate().map(|(i, &p)| (p, i)).collect();
                ctx.replica = Some(ShardReplica {
                    points,
                    row_of,
                    codes,
                    seq,
                });
            }
        }
        Frame::ApplyZ { round, updates } => {
            // A freshly streamed-in worker has no snapshot yet; its first
            // delta bootstraps an (initially empty) replica.
            if ctx.replica.is_none() {
                if let Some(first) = updates.first() {
                    ctx.replica = Some(ShardReplica {
                        points: Vec::new(),
                        row_of: HashMap::new(),
                        codes: BinaryCodes::zeros(0, first.code.len().max(1)),
                        seq: 0,
                    });
                }
            }
            if let Some(replica) = ctx.replica.as_mut() {
                for update in &updates {
                    replica.apply(update);
                }
            }
            reply_coord(
                ctx,
                &Frame::ZApplied {
                    machine: ctx.machine,
                    round,
                },
            );
        }
        Frame::FetchShard => {
            let (points, codes, seq) = match &ctx.replica {
                Some(replica) => (replica.points.clone(), replica.codes.clone(), replica.seq),
                None => (Vec::new(), BinaryCodes::zeros(0, 1), 0),
            };
            reply_coord(
                ctx,
                &Frame::ShardSnapshot {
                    machine: ctx.machine,
                    points,
                    codes,
                    seq,
                },
            );
        }
        // Coordinator-bound frames never arrive at a worker; ignore.
        Frame::Hello { .. }
        | Frame::Pong { .. }
        | Frame::UpdateRequest { .. }
        | Frame::ForwardFailed { .. }
        | Frame::ZApplied { .. }
        | Frame::ShardSnapshot { .. } => {}
    }
    None
}

/// The §4.3 routing rule: apply any locally-known faults to the visit list,
/// then either stop here (ask the coordinator to record the visit) or relay
/// to the next live successor.
fn route_envelope(
    ctx: &mut WorkerCtx,
    round: u64,
    generation: u64,
    mut envelope: SubmodelEnvelope<()>,
) {
    let (epochs, ring) = match &ctx.round {
        Some(rs) if rs.round == round => (rs.epochs, rs.ring.clone()),
        _ => return,
    };
    for &dead in &ctx.dead {
        if ring.contains(&dead) {
            envelope.handle_fault(dead, &ring, epochs);
        }
    }
    if envelope.should_process_at(ctx.machine, epochs) {
        reply_coord(
            ctx,
            &Frame::UpdateRequest {
                machine: ctx.machine,
                round,
                generation,
                envelope,
            },
        );
    } else {
        forward_envelope(ctx, round, generation, envelope);
    }
}

/// Sends the envelope to the next live machine after us in ring order. On
/// failure the envelope goes *back to the coordinator* (`ForwardFailed`) —
/// never silently dropped, because a dropped envelope is a hung W step.
fn forward_envelope(
    ctx: &mut WorkerCtx,
    round: u64,
    generation: u64,
    envelope: SubmodelEnvelope<()>,
) {
    let ring = match &ctx.round {
        Some(rs) if rs.round == round => rs.ring.clone(),
        _ => return,
    };
    let my_pos = match ring.iter().position(|&m| m == ctx.machine) {
        Some(pos) => pos,
        // We are not on this round's ring (late PeerDown about us?): hand
        // the envelope back rather than guessing a successor.
        None => {
            reply_coord(
                ctx,
                &Frame::ForwardFailed {
                    round,
                    generation,
                    envelope,
                },
            );
            return;
        }
    };
    for step in 1..=ring.len() {
        let target = ring[(my_pos + step) % ring.len()];
        if target == ctx.machine {
            // Every other machine is dead: a one-machine ring routes the
            // envelope straight back to itself. Process it if the visit
            // list allows; otherwise hand it to the coordinator (its view
            // of the faults is ahead of ours) instead of spinning.
            let epochs = ctx.round.as_ref().map_or(0, |rs| rs.epochs);
            let reply = if envelope.should_process_at(ctx.machine, epochs) {
                Frame::UpdateRequest {
                    machine: ctx.machine,
                    round,
                    generation,
                    envelope,
                }
            } else {
                Frame::ForwardFailed {
                    round,
                    generation,
                    envelope,
                }
            };
            reply_coord(ctx, &reply);
            return;
        }
        if ctx.dead.contains(&target) {
            continue;
        }
        if send_peer(
            ctx,
            target,
            &Frame::Envelope {
                round,
                generation,
                envelope: envelope.clone(),
            },
        ) {
            return;
        }
        // The successor looked live but is unreachable: report back. If it
        // truly died, the coordinator's reroute (with a fresh generation)
        // supersedes this copy; if it was transient, the coordinator
        // re-injects this generation unchanged.
        ctx.peers.remove(&target);
        reply_coord(
            ctx,
            &Frame::ForwardFailed {
                round,
                generation,
                envelope,
            },
        );
        return;
    }
}

/// Writes to a ring peer, connecting (with bounded backoff) on first use.
fn send_peer(ctx: &mut WorkerCtx, target: usize, frame: &Frame) -> bool {
    if !ctx.peers.contains_key(&target) {
        let path = ctx.dir.join(format!("m{target}.sock"));
        match transport::connect_with_backoff(
            &path,
            ctx.cfg.io_timeout,
            ctx.cfg.backoff_initial,
            ctx.cfg.backoff_cap,
        ) {
            Ok(stream) => {
                ctx.peers.insert(target, stream);
            }
            Err(_) => return false,
        }
    }
    match ctx.peers.get(&target) {
        Some(stream) => transport::write_frame(stream, frame).is_ok(),
        None => false,
    }
}

/// Best-effort write to the coordinator. A failed write is not handled here:
/// the coordinator reader thread will surface `CoordClosed` and the main
/// loop exits.
fn reply_coord(ctx: &WorkerCtx, frame: &Frame) {
    let _ = transport::write_frame(&ctx.coord, frame);
}

/// Accepts inbound ring connections (our predecessor, or any machine whose
/// successor walk lands on us after faults) and spawns a reader for each.
fn worker_accept_loop(
    listener: &UnixListener,
    events: &Sender<WorkerEvent>,
    stop: &Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let reader = match FrameReader::new(stream, READ_TICK) {
                    Ok(reader) => reader,
                    Err(_) => continue,
                };
                let tx = events.clone();
                let peer_stop = Arc::clone(stop);
                let _ = thread::Builder::new()
                    .name("machined-peer".into())
                    .spawn(move || peer_reader_loop(reader, &tx, &peer_stop));
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(READ_TICK);
            }
            Err(_) => thread::sleep(READ_TICK),
        }
    }
}

/// Pumps one inbound peer connection into the mailbox. A predecessor closing
/// its outbound socket is unremarkable (reconnects are lazy), so EOF just
/// ends the thread.
fn peer_reader_loop(mut reader: FrameReader, events: &Sender<WorkerEvent>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match reader.poll_frame() {
            Ok(Some(frame)) => {
                if events.send(WorkerEvent::Frame(frame)).is_err() {
                    return;
                }
            }
            Ok(None) => {}
            Err(_) => return,
        }
    }
}

/// Pumps the coordinator connection into the mailbox; EOF means the
/// coordinator is gone and the worker should exit.
fn coord_reader_loop(
    mut reader: FrameReader,
    events: &Sender<WorkerEvent>,
    stop: &Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match reader.poll_frame() {
            Ok(Some(frame)) => {
                if events.send(WorkerEvent::Frame(frame)).is_err() {
                    return;
                }
            }
            Ok(None) => {}
            Err(_) => {
                let _ = events.send(WorkerEvent::CoordClosed);
                return;
            }
        }
    }
}
