//! Cross-process ring backend: the §4.3 protocol over real OS processes and
//! Unix-domain sockets.
//!
//! Every other backend lives in one address space; this one finally pushes
//! the PR-4 wire codecs across a real process boundary. The architecture is
//! coordinator-sequencer: worker processes ([`run_machined`], spawned by the
//! [`FleetLauncher`]) are the distributed ring — they hold resident shard
//! codes and route [`SubmodelEnvelope`]s by the §4.3 visit list — while the
//! coordinator (inside [`ProcessBackend`], on the trainer's thread) owns the
//! submodel parameter payloads and is the single authority that applies
//! visits. The generic update closures therefore never cross the wire, and
//! every visit is applied exactly once, in ring order per submodel — which
//! is what makes a clean run bitwise-identical to [`SimBackend`].
//!
//! Fault handling composes three mechanisms:
//! - **Detection** (launcher): process exit, control-socket EOF, or
//!   heartbeat timeout, each surfaced as a structured [`MachineDown`].
//! - **Reroute** (coordinator): on a death, every unfinished envelope gets
//!   [`SubmodelEnvelope::handle_fault`] applied to its checkpoint, a fresh
//!   *generation*, and a re-injection at the next live machine after its
//!   last applied visit. In-flight copies from before the fault carry the
//!   old generation and die (`Stale`) at their next processing stop.
//! - **Routing** (workers): `PeerDown` broadcasts let survivors route
//!   around the corpse; an unreachable successor bounces the envelope back
//!   to the coordinator (`ForwardFailed`) rather than dropping it.
//!
//! [`SimBackend`]: crate::backend::SimBackend
//! [`SubmodelEnvelope`]: crate::envelope::SubmodelEnvelope

mod frames;
mod launcher;
mod transport;
mod worker;

pub use frames::Frame;
pub use launcher::{FleetLauncher, MachineDown, MachineDownReason, MACHINED_ENV};
pub use transport::{TransportError, MAX_FRAME_LEN};
pub use worker::run_machined;

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use parmac_hash::BinaryCodes;

use crate::backend::{z_stats, ClusterBackend, ZUpdate};
use crate::cost::{ring_hops, CostModel, StepTimings, WStepStats, ZStepStats};
use crate::envelope::SubmodelEnvelope;
use crate::sim::{Fault, SimCluster};

use launcher::CoordEvent;

/// Timeout and backoff knobs for the process fleet.
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// How often the supervisor pings each worker.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares a worker dead (wedged == dead).
    pub heartbeat_timeout: Duration,
    /// Deadline for worker spawn/registration and socket connects.
    pub connect_timeout: Duration,
    /// Deadline for individual socket operations (peer connects, shard
    /// fetches).
    pub io_timeout: Duration,
    /// Hard deadline for one whole W or Z step: the no-hang guarantee. A
    /// step that cannot finish by then panics with fleet diagnostics.
    pub step_timeout: Duration,
    /// First retry delay when connecting to a peer that isn't there yet.
    pub backoff_initial: Duration,
    /// Cap on the exponential connect backoff.
    pub backoff_cap: Duration,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(5),
            step_timeout: Duration::from_secs(60),
            backoff_initial: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

/// Round id used for out-of-band code publishes (no step is waiting on the
/// acks; they are drained at the next step boundary).
const PUBLISH_ROUND: u64 = u64::MAX;

struct Inner {
    cost: CostModel,
    cfg: ProcessConfig,
    fleet: Mutex<Option<Arc<FleetLauncher>>>,
}

/// The cross-process cluster backend.
///
/// Cloning is cheap and shares the fleet, so tests keep a clone as a chaos
/// handle (`kill_process`) while the trainer owns the original — mirroring
/// the server backend's `kill_machine` pattern. The fleet is spawned lazily
/// on first use and shut down when the last clone drops.
///
/// Like the threaded and server backends, the simulator-only
/// [`Fault`](crate::sim::Fault) plan is ignored: real faults are injected
/// with [`kill_process`](Self::kill_process) (or an actual `kill -9`).
#[derive(Clone)]
pub struct ProcessBackend {
    inner: Arc<Inner>,
}

impl Default for ProcessBackend {
    fn default() -> Self {
        ProcessBackend::new()
    }
}

impl ProcessBackend {
    /// A process backend with the distributed-deployment cost model and
    /// default timeouts.
    pub fn new() -> Self {
        ProcessBackend {
            inner: Arc::new(Inner {
                cost: CostModel::default(),
                cfg: ProcessConfig::default(),
                fleet: Mutex::new(None),
            }),
        }
    }

    /// Overrides the cost model used for simulated-time statistics.
    /// Configure before first use: the builder starts a fresh (unspawned)
    /// fleet slot.
    pub fn with_cost_model(self, cost: CostModel) -> Self {
        ProcessBackend {
            inner: Arc::new(Inner {
                cost,
                cfg: self.inner.cfg.clone(),
                fleet: Mutex::new(None),
            }),
        }
    }

    /// Overrides the fleet timeout/backoff knobs. Configure before first
    /// use: the builder starts a fresh (unspawned) fleet slot.
    pub fn with_config(self, cfg: ProcessConfig) -> Self {
        ProcessBackend {
            inner: Arc::new(Inner {
                cost: self.inner.cost,
                cfg,
                fleet: Mutex::new(None),
            }),
        }
    }

    /// Chaos control mirroring the server backend's `kill_machine`: SIGKILLs
    /// worker `machine`'s process, with no shutdown handshake. Training in
    /// progress routes around the corpse via the §4.3 fault path. Returns
    /// whether a live worker was killed.
    pub fn kill_process(&self, machine: usize) -> bool {
        match self.fleet() {
            Some(fleet) => fleet.kill_worker(machine),
            None => false,
        }
    }

    /// Every structured [`MachineDown`] event observed so far.
    pub fn down_events(&self) -> Vec<MachineDown> {
        self.fleet().map(|f| f.down_events()).unwrap_or_default()
    }

    /// The machines currently known dead.
    pub fn dead_machines(&self) -> Vec<usize> {
        self.fleet()
            .map(|f| f.dead_machines().into_iter().collect())
            .unwrap_or_default()
    }

    /// Diagnostic: fetches worker `machine`'s resident shard (point ids,
    /// codes, publish sequence). Call *between* steps only — the reply is
    /// collected from the same mailbox the step protocols use. Returns
    /// `None` for a dead/unspawned worker or if nothing was ever loaded.
    pub fn fetch_shard(&self, machine: usize) -> Option<(Vec<usize>, BinaryCodes, u64)> {
        let fleet = self.fleet()?;
        fleet.drain_events();
        if !fleet.send_frame(machine, &Frame::FetchShard) {
            return None;
        }
        let deadline = Instant::now() + fleet.config().io_timeout;
        loop {
            match fleet.recv_event_deadline(deadline) {
                Ok(CoordEvent::Frame {
                    machine: _,
                    frame:
                        Frame::ShardSnapshot {
                            machine: m,
                            points,
                            codes,
                            seq,
                        },
                }) if m == machine => {
                    return if points.is_empty() {
                        None
                    } else {
                        Some((points, codes, seq))
                    };
                }
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    fn fleet(&self) -> Option<Arc<FleetLauncher>> {
        self.inner.fleet.lock().as_ref().map(Arc::clone)
    }

    /// Returns the fleet, creating it on first use, with every machine in
    /// `machines` spawned and registered (dead machines stay dead).
    fn ensure_fleet(&self, machines: &[usize]) -> Arc<FleetLauncher> {
        let fleet = {
            let mut slot = self.inner.fleet.lock();
            match slot.as_ref() {
                Some(fleet) => Arc::clone(fleet),
                None => {
                    let fleet = Arc::new(
                        FleetLauncher::new(self.inner.cfg.clone())
                            .unwrap_or_else(|e| panic!("process backend: {e}")),
                    );
                    *slot = Some(Arc::clone(&fleet));
                    fleet
                }
            }
        };
        fleet
            .ensure_machines(machines)
            .unwrap_or_else(|e| panic!("process backend: {e}"));
        fleet
    }
}

/// The next live machine at-or-after ring position `start_pos`, walking the
/// ring at most once.
fn next_live(ring: &[usize], dead: &BTreeSet<usize>, start_pos: usize) -> Option<usize> {
    (0..ring.len())
        .map(|step| ring[(start_pos + step) % ring.len()])
        .find(|machine| !dead.contains(machine))
}

impl ClusterBackend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn cost_model(&self) -> CostModel {
        self.inner.cost
    }

    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        _fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync,
    {
        assert!(epochs > 0, "need at least one epoch");
        let start = Instant::now();
        let m_total = submodels.len();
        let all: Vec<usize> = cluster.topology().machines().to_vec();
        let mut stats = WStepStats::default();
        if m_total == 0 || all.is_empty() {
            stats.timings = StepTimings::default().with_wall_clock(start.elapsed());
            return (submodels, stats);
        }
        let fleet = self.ensure_fleet(&all);
        fleet.drain_events();
        let dead = fleet.dead_machines();
        // The round's ring: the live members of the topology, in topology
        // (ring) order — exactly the machine list a SimBackend reference
        // sees after `remove_machine` on the same fault schedule.
        let ring: Vec<usize> = all.iter().copied().filter(|m| !dead.contains(m)).collect();
        let p = ring.len();
        assert!(p > 0, "no live machines left in the process fleet");

        let round = fleet.next_round();
        // Open the round on every live worker *before* seeding: control
        // sockets are FIFO, so each worker sees WStepBegin before its seed.
        // (Peer-forwarded envelopes can still race a slow worker's
        // WStepBegin; workers stash those and replay.)
        for &machine in &ring {
            fleet.send_frame(
                machine,
                &Frame::WStepBegin {
                    round,
                    epochs,
                    ring: ring.clone(),
                },
            );
        }

        // Coordinator-side authoritative state. `states[id]` is the visit
        // checkpoint (every applied visit, nothing else), `gens[id]` the
        // reroute generation, `resume_pos[id]` the ring position where a
        // re-injected envelope should continue.
        let mut payloads: Vec<Option<S>> = submodels.into_iter().map(Some).collect();
        let mut states: Vec<SubmodelEnvelope<()>> = (0..m_total)
            .map(|id| SubmodelEnvelope::new(id, (), &ring))
            .collect();
        let mut gens = vec![0u64; m_total];
        let mut resume_pos: Vec<usize> = (0..m_total).map(|id| id % p).collect();
        let mut finished = vec![false; m_total];
        let mut done = 0usize;
        let mut reroutes = 0usize;

        // Seed submodel `id` at ring position `id % p` (§4.1): identical to
        // every in-process backend, which is what keeps the per-submodel
        // visit sequence — and therefore the trained bits — identical.
        for (id, state) in states.iter().enumerate() {
            fleet.send_frame(
                ring[id % p],
                &Frame::Envelope {
                    round,
                    generation: 0,
                    envelope: state.clone(),
                },
            );
        }

        let deadline = start + fleet.config().step_timeout;
        while done < m_total {
            let event = fleet.recv_event_deadline(deadline).unwrap_or_else(|_| {
                panic!(
                    "process W step round {round} exceeded {:?}: {done}/{m_total} submodels \
                     finished, dead={:?}, events={:?}",
                    fleet.config().step_timeout,
                    fleet.dead_machines(),
                    fleet.down_events(),
                )
            });
            match event {
                CoordEvent::Frame {
                    machine,
                    frame:
                        Frame::UpdateRequest {
                            machine: _,
                            round: r,
                            generation,
                            envelope,
                        },
                } => {
                    if r != round {
                        continue;
                    }
                    let id = envelope.submodel_id;
                    if id >= m_total {
                        continue;
                    }
                    if finished[id] || generation != gens[id] {
                        // A reroute superseded this copy; tell the worker to
                        // drop it.
                        fleet.send_frame(
                            machine,
                            &Frame::Stale {
                                round,
                                submodel: id,
                            },
                        );
                        continue;
                    }
                    let Some(pos) = ring.iter().position(|&m| m == machine) else {
                        continue;
                    };
                    // Authoritative sequencing: the coordinator applies the
                    // visit to its checkpoint and runs the update closure.
                    if states[id].record_visit(machine, &ring, epochs) {
                        if let Some(payload) = payloads[id].as_mut() {
                            update(payload, machine, cluster.shard(machine));
                        }
                        stats.update_visits += 1;
                    }
                    resume_pos[id] = (pos + 1) % p;
                    let fin = states[id].is_finished(p, epochs);
                    if fin {
                        finished[id] = true;
                        done += 1;
                    }
                    fleet.send_frame(
                        machine,
                        &Frame::Processed {
                            round,
                            generation,
                            envelope: states[id].clone(),
                            finished: fin,
                        },
                    );
                }
                CoordEvent::Frame {
                    machine: _,
                    frame:
                        Frame::ForwardFailed {
                            round: r,
                            generation,
                            envelope,
                        },
                } => {
                    if r != round {
                        continue;
                    }
                    let id = envelope.submodel_id;
                    if id >= m_total || finished[id] || generation != gens[id] {
                        continue;
                    }
                    // The envelope could not move; re-inject it (fresh
                    // generation, same checkpoint) at the next live machine.
                    gens[id] += 1;
                    let dead_now = fleet.dead_machines();
                    let target = next_live(&ring, &dead_now, resume_pos[id])
                        .unwrap_or_else(|| panic!("no live machine left to route submodel {id}"));
                    reroutes += 1;
                    fleet.send_frame(
                        target,
                        &Frame::Envelope {
                            round,
                            generation: gens[id],
                            envelope: states[id].clone(),
                        },
                    );
                }
                CoordEvent::Frame { .. } => {} // stray acks from publishes
                CoordEvent::Down(down) => {
                    if !ring.contains(&down) {
                        continue;
                    }
                    // §4.3 fault path: apply the fault to every unfinished
                    // envelope's checkpoint and re-inject from the checkpoint.
                    // Old in-flight copies die as stale at their next stop.
                    let dead_now = fleet.dead_machines();
                    for id in 0..m_total {
                        if finished[id] {
                            continue;
                        }
                        gens[id] += 1;
                        states[id].handle_fault(down, &ring, epochs);
                        if states[id].is_finished(p, epochs) {
                            finished[id] = true;
                            done += 1;
                            continue;
                        }
                        let target =
                            next_live(&ring, &dead_now, resume_pos[id]).unwrap_or_else(|| {
                                panic!("no live machine left to route submodel {id}")
                            });
                        reroutes += 1;
                        fleet.send_frame(
                            target,
                            &Frame::Envelope {
                                round,
                                generation: gens[id],
                                envelope: states[id].clone(),
                            },
                        );
                    }
                }
            }
        }

        let submodels: Vec<S> = payloads
            .into_iter()
            .map(|payload| payload.expect("every submodel payload survives the W step"))
            .collect();
        let msgs = ring_hops(m_total, p, epochs) + reroutes;
        stats.messages_sent = msgs;
        stats.bytes_sent = msgs * params_per_submodel * std::mem::size_of::<f64>();
        stats.timings = StepTimings::default().with_wall_clock(start.elapsed());
        (submodels, stats)
    }

    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync,
    {
        let start = Instant::now();
        let all: Vec<usize> = cluster.topology().machines().to_vec();
        if all.is_empty() {
            return (Vec::new(), z_stats(cluster, n_submodels, start));
        }
        let fleet = self.ensure_fleet(&all);
        fleet.drain_events();
        let dead = fleet.dead_machines();
        let round = fleet.next_round();

        // Solve in topology order over the live machines (identical to the
        // simulator after `remove_machine`), stream each machine's updates
        // into its worker's resident shard, and collect the acks.
        let mut all_updates = Vec::new();
        let mut pending_acks: BTreeSet<usize> = BTreeSet::new();
        for &machine in &all {
            if dead.contains(&machine) {
                continue;
            }
            let updates = solve(machine, cluster.shard(machine));
            if !updates.is_empty()
                && fleet.send_frame(
                    machine,
                    &Frame::ApplyZ {
                        round,
                        updates: updates.clone(),
                    },
                )
            {
                pending_acks.insert(machine);
            }
            all_updates.extend(updates);
        }
        let deadline = Instant::now() + fleet.config().step_timeout;
        while !pending_acks.is_empty() {
            match fleet.recv_event_deadline(deadline) {
                Ok(CoordEvent::Frame {
                    machine: _,
                    frame: Frame::ZApplied { machine, round: r },
                }) if r == round => {
                    pending_acks.remove(&machine);
                }
                Ok(CoordEvent::Down(down)) => {
                    // A machine that died after its solve keeps its updates
                    // in the returned batch (the coordinator's codes are
                    // authoritative); only its replica ack is waived.
                    pending_acks.remove(&down);
                }
                Ok(_) => {}
                Err(_) => panic!(
                    "process Z step round {round} exceeded {:?} awaiting acks from \
                     {pending_acks:?}",
                    fleet.config().step_timeout
                ),
            }
        }
        (all_updates, z_stats(cluster, n_submodels, start))
    }

    fn publish_codes(&self, cluster: &SimCluster, codes: &BinaryCodes) {
        let all: Vec<usize> = cluster.topology().machines().to_vec();
        if all.is_empty() {
            return;
        }
        let fleet = self.ensure_fleet(&all);
        let dead = fleet.dead_machines();
        let seq = fleet.next_seq();
        for &machine in &all {
            if dead.contains(&machine) {
                continue;
            }
            let points = cluster.shard(machine).to_vec();
            let mut shard_codes = BinaryCodes::zeros(points.len(), codes.n_bits());
            for (row, &point) in points.iter().enumerate() {
                shard_codes.set_code(row, &codes.to_f64_row(point));
            }
            fleet.send_frame(
                machine,
                &Frame::LoadShard {
                    points,
                    codes: shard_codes,
                    seq,
                },
            );
        }
    }

    fn publish_point_codes(&self, machine: usize, points: &[usize], codes: &BinaryCodes) {
        // Incremental publish into one worker's resident shard. A freshly
        // streamed-in machine (§4.3) may not have a worker yet — spawn it so
        // the delta lands somewhere.
        let fleet = self.ensure_fleet(&[machine]);
        let updates: Vec<ZUpdate> = points
            .iter()
            .map(|&point| ZUpdate {
                point,
                code: codes.to_f64_row(point),
            })
            .collect();
        fleet.send_frame(
            machine,
            &Frame::ApplyZ {
                round: PUBLISH_ROUND,
                updates,
            },
        );
    }
}
