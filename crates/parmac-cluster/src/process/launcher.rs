//! Fleet launcher: spawns `parmac-machined` worker processes, wires the
//! ring, and supervises the children.
//!
//! Supervision detects death three ways, each mapped to a structured
//! [`MachineDown`] event: process exit (a `try_wait` poll — the portable
//! waitpid), socket EOF (the control-connection reader sees the kernel close
//! the stream), and heartbeat timeout (a worker whose socket is open but
//! which stops answering pings — wedged counts as dead). The launcher never
//! blocks unboundedly: every loop here is an actor region under the
//! workspace lint, waiting in ticks and checking the stop flag.

use std::collections::{BTreeSet, HashMap};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use super::frames::Frame;
use super::transport::{self, FrameReader};
use super::ProcessConfig;

/// Environment variable overriding the worker binary path. Without it the
/// launcher looks for `parmac-machined` next to the current executable (and
/// one directory up, for test binaries living in `target/<profile>/deps/`).
pub const MACHINED_ENV: &str = "PARMAC_MACHINED";

/// Granularity of the coordinator's event-mailbox polls: short enough that
/// per-event latency is negligible against socket round-trips, long enough
/// not to spin.
const EVENT_POLL_TICK: Duration = Duration::from_micros(200);

/// How a worker process was observed to die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineDownReason {
    /// The child exited; carries the exit code when the OS reported one.
    ProcessExit(Option<i32>),
    /// The worker's control socket hit end-of-file or reset.
    SocketEof,
    /// The worker stopped answering heartbeats within the configured
    /// timeout: slow forever is indistinguishable from dead, so it is dead.
    HeartbeatTimeout,
    /// The chaos control [`kill_worker`](FleetLauncher::kill_worker)
    /// delivered SIGKILL.
    Killed,
}

impl std::fmt::Display for MachineDownReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineDownReason::ProcessExit(Some(code)) => write!(f, "process exit (code {code})"),
            MachineDownReason::ProcessExit(None) => write!(f, "process exit (by signal)"),
            MachineDownReason::SocketEof => write!(f, "control socket EOF"),
            MachineDownReason::HeartbeatTimeout => write!(f, "heartbeat timeout"),
            MachineDownReason::Killed => write!(f, "killed (chaos injection)"),
        }
    }
}

/// A structured machine-failure event, as surfaced to the trainer and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineDown {
    /// The machine that died.
    pub machine: usize,
    /// How its death was detected.
    pub reason: MachineDownReason,
}

impl std::fmt::Display for MachineDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine {} down: {}", self.machine, self.reason)
    }
}

/// An event delivered to the coordinator's single mailbox.
#[derive(Debug)]
pub(crate) enum CoordEvent {
    /// A frame arrived from `machine`'s control connection.
    Frame {
        /// The sending worker.
        machine: usize,
        /// The frame it sent.
        frame: Frame,
    },
    /// `machine` was declared down (the authoritative record is the dead
    /// set; this event is the wakeup that lets a step react mid-wait).
    Down(usize),
}

/// Mutable fleet state, guarded by one mutex. Helpers that take the lock do
/// no blocking work while holding it (the workspace lint's
/// blocking-while-locked rule); socket writes are permitted and serialise
/// whole frames.
struct FleetState {
    children: HashMap<usize, Child>,
    writers: HashMap<usize, UnixStream>,
    last_pong: HashMap<usize, Instant>,
    dead: BTreeSet<usize>,
    spawned: BTreeSet<usize>,
    reader_handles: Vec<thread::JoinHandle<()>>,
}

struct FleetShared {
    cfg: ProcessConfig,
    stop: AtomicBool,
    state: Mutex<FleetState>,
    events_tx: Sender<CoordEvent>,
    down_log: Mutex<Vec<MachineDown>>,
}

/// Spawns, wires, and supervises a fleet of `parmac-machined` workers.
///
/// Dropping the launcher shuts the fleet down: workers get a `Shutdown`
/// frame and a bounded grace period, stragglers are killed, and every
/// supervision thread is joined.
pub struct FleetLauncher {
    dir: PathBuf,
    shared: Arc<FleetShared>,
    // The event receiver is drained via transient-guard `try_recv` polls
    // (the mutex makes the launcher `Sync`; the guard never outlives one
    // statement, so no blocking happens while it is held).
    events_rx: Mutex<Receiver<CoordEvent>>,
    supervisor: Option<thread::JoinHandle<()>>,
    acceptor: Option<thread::JoinHandle<()>>,
    round: AtomicU64,
    seq: AtomicU64,
}

static FLEET_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Locates the worker binary (see [`MACHINED_ENV`]).
fn machined_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var(MACHINED_ENV) {
        let path = PathBuf::from(path);
        if path.exists() {
            return Ok(path);
        }
        return Err(format!("{MACHINED_ENV}={} does not exist", path.display()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dirs: Vec<&Path> = Vec::new();
    if let Some(parent) = exe.parent() {
        dirs.push(parent);
        if let Some(grand) = parent.parent() {
            dirs.push(grand);
        }
    }
    for dir in &dirs {
        let candidate = dir.join("parmac-machined");
        if candidate.exists() {
            return Ok(candidate);
        }
    }
    Err(format!(
        "parmac-machined binary not found next to {} (build it with \
         `cargo build -p parmac-cluster --bins` or set {MACHINED_ENV})",
        exe.display()
    ))
}

impl FleetLauncher {
    /// Creates the fleet scaffolding: socket directory, coordinator
    /// listener, and the accept/supervisor threads. Workers are spawned
    /// lazily by [`ensure_machines`](Self::ensure_machines).
    pub fn new(cfg: ProcessConfig) -> Result<Self, String> {
        let dir = std::env::temp_dir().join(format!(
            "parmac-fleet-{}-{}",
            std::process::id(),
            FLEET_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        // A stale directory from a crashed previous run (pid reuse) would
        // make the bind fail with AddrInUse; clear it first.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let listener = UnixListener::bind(dir.join("coord.sock"))
            .map_err(|e| format!("bind coordinator socket: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;

        let (events_tx, events_rx) = unbounded();
        let shared = Arc::new(FleetShared {
            cfg,
            stop: AtomicBool::new(false),
            state: Mutex::new(FleetState {
                children: HashMap::new(),
                writers: HashMap::new(),
                last_pong: HashMap::new(),
                dead: BTreeSet::new(),
                spawned: BTreeSet::new(),
                reader_handles: Vec::new(),
            }),
            events_tx,
            down_log: Mutex::new(Vec::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("parmac-fleet-accept".into())
            .spawn(move || coord_accept_loop(&accept_shared, &listener))
            .map_err(|e| format!("spawn accept thread: {e}"))?;
        let sup_shared = Arc::clone(&shared);
        let supervisor = thread::Builder::new()
            .name("parmac-fleet-supervisor".into())
            .spawn(move || fleet_supervisor_loop(&sup_shared))
            .map_err(|e| format!("spawn supervisor thread: {e}"))?;

        Ok(FleetLauncher {
            dir,
            shared,
            events_rx: Mutex::new(events_rx),
            supervisor: Some(supervisor),
            acceptor: Some(acceptor),
            round: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })
    }

    /// Spawns any of `machines` not yet running (dead machines stay dead —
    /// the fleet never resurrects a killed id) and waits, bounded, until
    /// every live one has registered its control connection.
    pub fn ensure_machines(&self, machines: &[usize]) -> Result<(), String> {
        let binary = machined_binary()?;
        let to_spawn: Vec<usize> = {
            let mut st = self.shared.state.lock();
            let fresh: Vec<usize> = machines
                .iter()
                .copied()
                .filter(|m| !st.spawned.contains(m) && !st.dead.contains(m))
                .collect();
            st.spawned.extend(fresh.iter().copied());
            fresh
        };
        for &machine in &to_spawn {
            let child = Command::new(&binary)
                .arg("--machine")
                .arg(machine.to_string())
                .arg("--dir")
                .arg(&self.dir)
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn worker {machine}: {e}"))?;
            self.shared.state.lock().children.insert(machine, child);
        }
        // Bounded wait for registration: a worker is ready once its Hello
        // arrived (writer present) or it already died (reported as down).
        let deadline = Instant::now() + self.shared.cfg.connect_timeout;
        loop {
            let missing: Vec<usize> = {
                let st = self.shared.state.lock();
                machines
                    .iter()
                    .copied()
                    .filter(|m| !st.writers.contains_key(m) && !st.dead.contains(m))
                    .collect()
            };
            if missing.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "workers {missing:?} did not register within {:?}",
                    self.shared.cfg.connect_timeout
                ));
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// The machines currently known dead.
    pub fn dead_machines(&self) -> BTreeSet<usize> {
        self.shared.state.lock().dead.clone()
    }

    /// Every [`MachineDown`] event observed so far, in detection order.
    pub fn down_events(&self) -> Vec<MachineDown> {
        self.shared.down_log.lock().clone()
    }

    /// Chaos control: SIGKILLs worker `machine` (no shutdown handshake, no
    /// grace — the §4.3 fault model). Returns whether a live worker was
    /// killed.
    pub fn kill_worker(&self, machine: usize) -> bool {
        let live = {
            let st = self.shared.state.lock();
            !st.dead.contains(&machine) && st.children.contains_key(&machine)
        };
        if !live {
            return false;
        }
        // Declare the death *before* delivering the signal: the control
        // reader would otherwise observe the EOF first and report a generic
        // `SocketEof` instead of the chaos injection.
        report_down(&self.shared, machine, MachineDownReason::Killed);
        let mut st = self.shared.state.lock();
        if let Some(child) = st.children.get_mut(&machine) {
            let _ = child.kill();
        }
        true
    }

    /// Next protocol round id (monotone across W and Z steps).
    pub(crate) fn next_round(&self) -> u64 {
        self.round.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Next shard-publish sequence number.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Writes `frame` to `machine`'s control socket. Returns false if the
    /// machine has no live connection or the write failed (its death will be
    /// detected and reported by supervision; callers don't need to react).
    pub(crate) fn send_frame(&self, machine: usize, frame: &Frame) -> bool {
        let st = self.shared.state.lock();
        match st.writers.get(&machine) {
            Some(stream) => transport::write_frame(stream, frame).is_ok(),
            None => false,
        }
    }

    /// Drops every queued coordinator event: called at the start of a step
    /// so stragglers from previous rounds (late acks, stale requests) cannot
    /// be confused with this round's traffic. Down *events* are droppable —
    /// the dead set, read after the drain, is the authoritative record.
    pub(crate) fn drain_events(&self) {
        while self.events_rx.lock().try_recv().is_ok() {}
    }

    /// Waits for the next coordinator event until `deadline`, polling with
    /// transient-guard `try_recv` and sleeping between ticks outside the
    /// lock.
    pub(crate) fn recv_event_deadline(
        &self,
        deadline: Instant,
    ) -> Result<CoordEvent, RecvTimeoutError> {
        loop {
            match self.events_rx.lock().try_recv() {
                Ok(event) => return Ok(event),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {}
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            thread::sleep(EVENT_POLL_TICK);
        }
    }

    /// The fleet configuration.
    pub(crate) fn config(&self) -> &ProcessConfig {
        &self.shared.cfg
    }

    /// Bounded shutdown: `Shutdown` frames, a grace period, SIGKILL for
    /// stragglers, then join every supervision thread.
    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        broadcast_shutdown(&self.shared);
        let grace = Instant::now() + Duration::from_millis(500);
        loop {
            if reap_exited(&self.shared).is_empty() && all_children_gone(&self.shared) {
                break;
            }
            if Instant::now() >= grace {
                kill_remaining(&self.shared);
                let hard = Instant::now() + Duration::from_millis(500);
                while !all_children_gone(&self.shared) && Instant::now() < hard {
                    reap_exited(&self.shared);
                    thread::sleep(Duration::from_millis(5));
                }
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        // Threads observe the stop flag within one tick; joins are bounded
        // in practice.
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut self.shared.state.lock().reader_handles);
        for handle in handles {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for FleetLauncher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Declares `machine` dead exactly once: records it, broadcasts `PeerDown`
/// to the survivors, appends to the down log, and wakes the coordinator.
fn report_down(shared: &Arc<FleetShared>, machine: usize, reason: MachineDownReason) {
    let newly_dead = {
        let mut st = shared.state.lock();
        if st.dead.contains(&machine) {
            false
        } else {
            st.dead.insert(machine);
            st.writers.remove(&machine);
            st.last_pong.remove(&machine);
            true
        }
    };
    if !newly_dead {
        return;
    }
    {
        let st = shared.state.lock();
        for (&peer, stream) in &st.writers {
            if peer != machine {
                let _ = transport::write_frame(stream, &Frame::PeerDown { machine });
            }
        }
    }
    shared.down_log.lock().push(MachineDown { machine, reason });
    let _ = shared.events_tx.send(CoordEvent::Down(machine));
}

/// Accepts worker control connections and registers them. The listener is
/// non-blocking; the loop polls in ticks so the stop flag is honoured.
fn coord_accept_loop(shared: &Arc<FleetShared>, listener: &UnixListener) {
    let tick = Duration::from_millis(5);
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => register_worker(shared, stream),
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(tick),
            Err(_) => thread::sleep(tick),
        }
    }
}

/// Performs the Hello handshake on a fresh connection and wires the reader.
fn register_worker(shared: &Arc<FleetShared>, stream: UnixStream) {
    // The kernel hands us a blocking clone of a non-blocking listener's
    // socket on some platforms; force blocking-with-timeout semantics.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = match FrameReader::new(stream, Duration::from_millis(5)) {
        Ok(reader) => reader,
        Err(_) => return,
    };
    // Bounded wait for the Hello frame.
    let deadline = Instant::now() + shared.cfg.connect_timeout;
    let machine = loop {
        match reader.poll_frame() {
            Ok(Some(Frame::Hello { machine })) => break machine,
            Ok(Some(_)) | Ok(None) => {
                if Instant::now() >= deadline {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    {
        let mut st = shared.state.lock();
        st.writers.insert(machine, writer);
        st.last_pong.insert(machine, Instant::now());
    }
    let reader_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("parmac-fleet-reader-{machine}"))
        .spawn(move || control_reader_loop(&reader_shared, machine, reader));
    if let Ok(handle) = spawned {
        shared.state.lock().reader_handles.push(handle);
    }
}

/// Pumps one worker's control connection into the coordinator mailbox.
/// Socket EOF here is a death report: the kernel closes the stream the
/// moment the process dies, usually well before the next waitpid poll.
fn control_reader_loop(shared: &Arc<FleetShared>, machine: usize, mut reader: FrameReader) {
    while !shared.stop.load(Ordering::SeqCst) {
        match reader.poll_frame() {
            Ok(Some(Frame::Pong { nonce: _ })) => {
                stamp_pong(shared, machine);
            }
            Ok(Some(frame)) => {
                if shared
                    .events_tx
                    .send(CoordEvent::Frame { machine, frame })
                    .is_err()
                {
                    return;
                }
            }
            Ok(None) => {}
            Err(_) => {
                report_down(shared, machine, MachineDownReason::SocketEof);
                return;
            }
        }
    }
}

fn stamp_pong(shared: &Arc<FleetShared>, machine: usize) {
    shared
        .state
        .lock()
        .last_pong
        .insert(machine, Instant::now());
}

/// Reaps exited children (the portable waitpid), returning `(machine, exit
/// code)` pairs. Also used by shutdown to poll the grace period.
fn reap_exited(shared: &Arc<FleetShared>) -> Vec<(usize, Option<i32>)> {
    let mut exited = Vec::new();
    {
        let mut st = shared.state.lock();
        let machines: Vec<usize> = st.children.keys().copied().collect();
        for machine in machines {
            let gone = match st.children.get_mut(&machine) {
                Some(child) => match child.try_wait() {
                    Ok(Some(status)) => Some(status.code()),
                    Ok(None) => None,
                    Err(_) => Some(None),
                },
                None => None,
            };
            if let Some(code) = gone {
                st.children.remove(&machine);
                exited.push((machine, code));
            }
        }
    }
    exited
}

fn all_children_gone(shared: &Arc<FleetShared>) -> bool {
    shared.state.lock().children.is_empty()
}

fn kill_remaining(shared: &Arc<FleetShared>) {
    let mut st = shared.state.lock();
    for child in st.children.values_mut() {
        let _ = child.kill();
    }
}

fn broadcast_shutdown(shared: &Arc<FleetShared>) {
    let st = shared.state.lock();
    for stream in st.writers.values() {
        let _ = transport::write_frame(stream, &Frame::Shutdown);
    }
}

/// Machines whose last pong is older than the heartbeat timeout.
fn stale_machines(shared: &Arc<FleetShared>) -> Vec<usize> {
    let st = shared.state.lock();
    st.last_pong
        .iter()
        .filter(|&(_m, &at)| at.elapsed() > shared.cfg.heartbeat_timeout)
        .map(|(&m, _at)| m)
        .collect()
}

fn kill_stale(shared: &Arc<FleetShared>, machine: usize) {
    let mut st = shared.state.lock();
    if let Some(child) = st.children.get_mut(&machine) {
        let _ = child.kill();
    }
}

fn ping_workers(shared: &Arc<FleetShared>, nonce: u64) {
    let st = shared.state.lock();
    for stream in st.writers.values() {
        let _ = transport::write_frame(stream, &Frame::Ping { nonce });
    }
}

/// Child supervision: waitpid polls, heartbeat probes, staleness kills.
fn fleet_supervisor_loop(shared: &Arc<FleetShared>) {
    let mut nonce = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        for (machine, code) in reap_exited(shared) {
            report_down(shared, machine, MachineDownReason::ProcessExit(code));
        }
        for machine in stale_machines(shared) {
            kill_stale(shared, machine);
            report_down(shared, machine, MachineDownReason::HeartbeatTimeout);
        }
        nonce += 1;
        ping_workers(shared, nonce);
        thread::sleep(shared.cfg.heartbeat_interval);
    }
}
