//! Framed socket transport: length-prefixed [`Frame`]s over Unix-domain
//! stream sockets, with bounded timeouts everywhere.
//!
//! The framing is a `u32` little-endian payload length followed by the
//! frame's [`WireCode`] bytes. Reads are *resumable*: a [`FrameReader`] owns
//! a buffer that survives read timeouts, so a slow peer (bytes trickling in
//! across several poll ticks) is cleanly distinguished from a dead one
//! (EOF / connection reset). Connection establishment retries with bounded
//! exponential backoff against an overall deadline — a worker that is still
//! binding its listener looks slow, a worker that never binds looks dead.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::wire::{WireCode, WireError};

use super::frames::Frame;

/// Hard cap on a single frame's payload. Anything larger is a protocol
/// violation (a corrupt length prefix), not a legitimate message — the cap
/// turns it into an error before any allocation happens.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// A transport-layer failure on a fleet socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed the connection (EOF or reset): the peer is *dead*,
    /// not slow.
    Closed,
    /// A connect or read did not complete within its deadline: the peer is
    /// *slow or unreachable*, which the caller may treat differently from
    /// [`TransportError::Closed`].
    Timeout,
    /// The length prefix claimed a payload beyond [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload arrived whole but did not decode.
    Wire(WireError),
    /// Any other socket error, by kind.
    Io(ErrorKind),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::Timeout => write!(f, "transport deadline exceeded"),
            TransportError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            TransportError::Wire(err) => write!(f, "frame decode failed: {err}"),
            TransportError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl From<WireError> for TransportError {
    fn from(err: WireError) -> Self {
        TransportError::Wire(err)
    }
}

fn io_error(err: &std::io::Error) -> TransportError {
    match err.kind() {
        ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
            TransportError::Closed
        }
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout,
        kind => TransportError::Io(kind),
    }
}

/// Writes one frame: `u32` LE payload length, then the payload, as a single
/// `write_all` so concurrent writers (guarded by a mutex at the call site)
/// never interleave partial frames.
pub(crate) fn write_frame(stream: &UnixStream, frame: &Frame) -> Result<(), TransportError> {
    let payload = frame.to_wire();
    if payload.len() > MAX_FRAME_LEN {
        return Err(TransportError::TooLarge(payload.len()));
    }
    let mut message = Vec::with_capacity(4 + payload.len());
    message.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    message.extend_from_slice(&payload);
    match (&*stream).write_all(&message) {
        Ok(()) => Ok(()),
        Err(err) => Err(io_error(&err)),
    }
}

/// A buffering frame reader over one socket.
///
/// `poll_frame` reads in bounded ticks (the socket's read timeout) and keeps
/// partial bytes across calls, so a frame split across ticks is reassembled
/// rather than lost — the property that makes a slow peer survivable.
pub(crate) struct FrameReader {
    stream: UnixStream,
    buf: Vec<u8>,
    chunk: [u8; 16 * 1024],
}

impl FrameReader {
    /// Wraps `stream`, polling reads at `tick` granularity.
    pub(crate) fn new(stream: UnixStream, tick: Duration) -> Result<Self, TransportError> {
        match stream.set_read_timeout(Some(tick)) {
            Ok(()) => Ok(FrameReader {
                stream,
                buf: Vec::new(),
                chunk: [0u8; 16 * 1024],
            }),
            Err(err) => Err(io_error(&err)),
        }
    }

    /// Attempts to complete one frame. `Ok(None)` means the read tick ended
    /// without a whole frame (slow peer, or simply no traffic) — call again.
    /// [`TransportError::Closed`] means the peer is gone for good.
    pub(crate) fn poll_frame(&mut self) -> Result<Option<Frame>, TransportError> {
        if let Some(frame) = self.try_decode()? {
            return Ok(Some(frame));
        }
        match self.stream.read(&mut self.chunk) {
            Ok(0) => Err(TransportError::Closed),
            Ok(n) => {
                self.buf.extend_from_slice(&self.chunk[..n]);
                self.try_decode()
            }
            Err(err) => match io_error(&err) {
                // Interrupted/timeout ticks keep the partial buffer intact.
                TransportError::Timeout => Ok(None),
                TransportError::Io(ErrorKind::Interrupted) => Ok(None),
                other => Err(other),
            },
        }
    }

    /// Decodes one frame from the buffer if it is complete.
    fn try_decode(&mut self) -> Result<Option<Frame>, TransportError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(TransportError::TooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = Frame::from_wire(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

/// Connects to `path`, retrying with bounded exponential backoff until
/// `timeout` elapses. Distinguishes "not there yet" (retried) from a final
/// [`TransportError::Timeout`] once the deadline passes.
pub(crate) fn connect_with_backoff(
    path: &Path,
    timeout: Duration,
    backoff_initial: Duration,
    backoff_cap: Duration,
) -> Result<UnixStream, TransportError> {
    let deadline = Instant::now() + timeout;
    let mut backoff = backoff_initial;
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(err) => {
                if Instant::now() + backoff >= deadline {
                    return Err(match io_error(&err) {
                        TransportError::Io(_) | TransportError::Closed => TransportError::Timeout,
                        other => other,
                    });
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(backoff_cap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixListener;

    fn socket_pair() -> (UnixStream, UnixStream) {
        UnixStream::pair().expect("socketpair")
    }

    #[test]
    fn frames_cross_a_socket_and_split_writes_reassemble() {
        let (a, b) = socket_pair();
        let mut reader = FrameReader::new(b, Duration::from_millis(10)).unwrap();
        write_frame(&a, &Frame::Ping { nonce: 4 }).unwrap();
        write_frame(&a, &Frame::Pong { nonce: 4 }).unwrap();
        // Two frames written back-to-back arrive as two frames.
        let mut got = Vec::new();
        while got.len() < 2 {
            if let Some(frame) = reader.poll_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(
            got,
            vec![Frame::Ping { nonce: 4 }, Frame::Pong { nonce: 4 }]
        );

        // A frame dribbled in one byte per tick still reassembles: the
        // reader's buffer survives intermediate timeout ticks.
        let frame = Frame::WStepBegin {
            round: 3,
            epochs: 2,
            ring: vec![0, 1, 2],
        };
        let payload = frame.to_wire();
        let mut message = (payload.len() as u32).to_le_bytes().to_vec();
        message.extend_from_slice(&payload);
        for &byte in &message[..message.len() - 1] {
            (&a).write_all(&[byte]).unwrap();
            // Not complete yet: poll may see a partial buffer only.
            assert_eq!(reader.poll_frame().unwrap(), None);
        }
        (&a).write_all(&message[message.len() - 1..]).unwrap();
        let mut last = None;
        for _ in 0..100 {
            if let Some(f) = reader.poll_frame().unwrap() {
                last = Some(f);
                break;
            }
        }
        assert_eq!(last, Some(frame));
    }

    #[test]
    fn eof_is_closed_and_oversized_prefixes_are_rejected() {
        let (a, b) = socket_pair();
        let mut reader = FrameReader::new(b, Duration::from_millis(10)).unwrap();
        drop(a);
        assert_eq!(reader.poll_frame(), Err(TransportError::Closed));

        let (a, b) = socket_pair();
        let mut reader = FrameReader::new(b, Duration::from_millis(10)).unwrap();
        let bogus = u32::MAX.to_le_bytes();
        (&a).write_all(&bogus).unwrap();
        let mut result = Ok(None);
        for _ in 0..100 {
            result = reader.poll_frame();
            if result != Ok(None) {
                break;
            }
        }
        assert_eq!(result, Err(TransportError::TooLarge(u32::MAX as usize)));
    }

    #[test]
    fn connect_backoff_waits_for_a_late_listener_and_times_out_on_none() {
        let dir = std::env::temp_dir().join(format!("parmac-transport-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.sock");
        let path2 = path.clone();
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            UnixListener::bind(&path2).expect("bind late listener")
        });
        let stream = connect_with_backoff(
            &path,
            Duration::from_secs(5),
            Duration::from_millis(2),
            Duration::from_millis(20),
        );
        assert!(stream.is_ok(), "late listener should be reachable");
        let _listener = binder.join().unwrap();

        let missing = dir.join("never.sock");
        let start = Instant::now();
        let err = connect_with_backoff(
            &missing,
            Duration::from_millis(60),
            Duration::from_millis(2),
            Duration::from_millis(20),
        );
        assert_eq!(err.err(), Some(TransportError::Timeout));
        assert!(start.elapsed() < Duration::from_secs(2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
