//! The cross-process ring protocol: every message that crosses a process
//! boundary, as one length-prefixed [`WireCode`] enum.
//!
//! Unlike the in-process backends' channel messages (which smuggle reply
//! channels and closures), every variant here is pure data — the PR-4 wire
//! codecs finally carry bytes across a real boundary. The coordinator is the
//! authoritative sequencer: workers route envelopes around the ring and ask
//! the coordinator (`UpdateRequest`) to apply each visit, so the generic
//! submodel payloads and update closures never have to cross the wire.

use parmac_hash::BinaryCodes;

use crate::backend::ZUpdate;
use crate::envelope::SubmodelEnvelope;
use crate::wire::{WireCode, WireError};

/// A protocol frame: the unit of exchange on every fleet socket.
///
/// Frames travel over three kinds of connections — worker→coordinator
/// control sockets (`Hello`, `Pong`, `UpdateRequest`, acks), coordinator→
/// worker control sockets (`Ping`, step control, seeds, replies), and
/// worker→worker ring sockets (`Envelope` forwards). The `round` fields
/// fence protocol epochs: a frame from a previous step is dropped, a frame
/// from a future step is stashed until its `WStepBegin` arrives.
#[derive(Debug, Clone, PartialEq)]
// lint: wire-protocol
pub enum Frame {
    /// Worker `machine` introduces itself on a fresh control connection.
    Hello {
        /// The worker's machine id.
        machine: usize,
    },
    /// Coordinator heartbeat probe.
    Ping {
        /// Echoed back in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Worker heartbeat reply: proof of liveness, not just of an open socket
    /// — a wedged worker stops answering even while its socket stays open.
    Pong {
        /// The nonce of the [`Frame::Ping`] being answered.
        nonce: u64,
    },
    /// A W step starts: the ring for this round, in visit order.
    WStepBegin {
        /// Monotone step identifier; fences frames across steps.
        round: u64,
        /// Passes over the distributed dataset this step performs.
        epochs: usize,
        /// Live machines in ring order for this round.
        ring: Vec<usize>,
    },
    /// A submodel envelope in transit (coordinator seed or peer forward).
    Envelope {
        /// The step this envelope belongs to.
        round: u64,
        /// Reroute generation: bumped by the coordinator on every fault
        /// reroute, so in-flight copies predating the fault die as stale.
        generation: u64,
        /// The protocol state; the parameter payload stays coordinator-side.
        envelope: SubmodelEnvelope<()>,
    },
    /// Worker `machine` holds the envelope and asks the coordinator to apply
    /// the visit (run the update closure, advance the visit list).
    UpdateRequest {
        /// The machine the envelope stopped at.
        machine: usize,
        /// The step the request belongs to.
        round: u64,
        /// The envelope's reroute generation as seen by the worker.
        generation: u64,
        /// The envelope as received (the coordinator's copy is authoritative;
        /// this one identifies the submodel and aids diagnostics).
        envelope: SubmodelEnvelope<()>,
    },
    /// Coordinator reply to [`Frame::UpdateRequest`]: the advanced envelope.
    Processed {
        /// The step the reply belongs to.
        round: u64,
        /// The envelope's current reroute generation.
        generation: u64,
        /// The envelope after the visit was recorded.
        envelope: SubmodelEnvelope<()>,
        /// Whether the envelope has completed its W step (drop, don't
        /// forward).
        finished: bool,
    },
    /// Coordinator reply to a stale [`Frame::UpdateRequest`]: a reroute
    /// already superseded this copy — the worker drops it.
    Stale {
        /// The step the dropped request belonged to.
        round: u64,
        /// The submodel whose stale copy was dropped.
        submodel: usize,
    },
    /// Worker could not reach the ring successor: the envelope is handed back
    /// to the coordinator for re-injection instead of being silently dropped.
    ForwardFailed {
        /// The step the envelope belongs to.
        round: u64,
        /// The envelope's reroute generation as seen by the worker.
        generation: u64,
        /// The envelope that failed to move.
        envelope: SubmodelEnvelope<()>,
    },
    /// Coordinator broadcast: `machine` is down — route around it.
    PeerDown {
        /// The dead machine.
        machine: usize,
    },
    /// Coordinator installs a worker's resident shard (points + codes).
    LoadShard {
        /// Global point ids of the shard, in shard order.
        points: Vec<usize>,
        /// The codes, row `i` belonging to `points[i]`.
        codes: BinaryCodes,
        /// Publish sequence number: a worker ignores snapshots older than the
        /// one it holds.
        seq: u64,
    },
    /// Coordinator streams Z-step code updates into a worker's shard.
    ApplyZ {
        /// The step the updates belong to (acked by [`Frame::ZApplied`]).
        round: u64,
        /// The per-point new codes.
        updates: Vec<ZUpdate>,
    },
    /// Worker acknowledges [`Frame::ApplyZ`] for `round`.
    ZApplied {
        /// The acknowledging machine.
        machine: usize,
        /// The round being acknowledged.
        round: u64,
    },
    /// Coordinator asks for the worker's resident shard (tests, diagnostics).
    FetchShard,
    /// Worker reply to [`Frame::FetchShard`]: its resident shard, or an empty
    /// point list if nothing was ever loaded.
    ShardSnapshot {
        /// The replying machine.
        machine: usize,
        /// Global point ids of the resident shard.
        points: Vec<usize>,
        /// The resident codes (one dummy bit column when `points` is empty).
        codes: BinaryCodes,
        /// The publish sequence the snapshot reflects.
        seq: u64,
    },
    /// Coordinator asks the worker to exit cleanly.
    Shutdown,
}

impl WireCode for Frame {
    const MIN_ENCODED_LEN: usize = 8; // the discriminant

    fn encode_wire(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello { machine } => {
                0u64.encode_wire(buf);
                machine.encode_wire(buf);
            }
            Frame::Ping { nonce } => {
                1u64.encode_wire(buf);
                nonce.encode_wire(buf);
            }
            Frame::Pong { nonce } => {
                2u64.encode_wire(buf);
                nonce.encode_wire(buf);
            }
            Frame::WStepBegin {
                round,
                epochs,
                ring,
            } => {
                3u64.encode_wire(buf);
                round.encode_wire(buf);
                epochs.encode_wire(buf);
                ring.encode_wire(buf);
            }
            Frame::Envelope {
                round,
                generation,
                envelope,
            } => {
                4u64.encode_wire(buf);
                round.encode_wire(buf);
                generation.encode_wire(buf);
                envelope.encode_wire(buf);
            }
            Frame::UpdateRequest {
                machine,
                round,
                generation,
                envelope,
            } => {
                5u64.encode_wire(buf);
                machine.encode_wire(buf);
                round.encode_wire(buf);
                generation.encode_wire(buf);
                envelope.encode_wire(buf);
            }
            Frame::Processed {
                round,
                generation,
                envelope,
                finished,
            } => {
                6u64.encode_wire(buf);
                round.encode_wire(buf);
                generation.encode_wire(buf);
                envelope.encode_wire(buf);
                finished.encode_wire(buf);
            }
            Frame::Stale { round, submodel } => {
                7u64.encode_wire(buf);
                round.encode_wire(buf);
                submodel.encode_wire(buf);
            }
            Frame::ForwardFailed {
                round,
                generation,
                envelope,
            } => {
                8u64.encode_wire(buf);
                round.encode_wire(buf);
                generation.encode_wire(buf);
                envelope.encode_wire(buf);
            }
            Frame::PeerDown { machine } => {
                9u64.encode_wire(buf);
                machine.encode_wire(buf);
            }
            Frame::LoadShard { points, codes, seq } => {
                10u64.encode_wire(buf);
                points.encode_wire(buf);
                codes.encode_wire(buf);
                seq.encode_wire(buf);
            }
            Frame::ApplyZ { round, updates } => {
                11u64.encode_wire(buf);
                round.encode_wire(buf);
                updates.encode_wire(buf);
            }
            Frame::ZApplied { machine, round } => {
                12u64.encode_wire(buf);
                machine.encode_wire(buf);
                round.encode_wire(buf);
            }
            Frame::FetchShard => 13u64.encode_wire(buf),
            Frame::ShardSnapshot {
                machine,
                points,
                codes,
                seq,
            } => {
                14u64.encode_wire(buf);
                machine.encode_wire(buf);
                points.encode_wire(buf);
                codes.encode_wire(buf);
                seq.encode_wire(buf);
            }
            Frame::Shutdown => 15u64.encode_wire(buf),
        }
    }

    fn decode_wire(bytes: &mut &[u8]) -> Result<Self, WireError> {
        match u64::decode_wire(bytes)? {
            0 => Ok(Frame::Hello {
                machine: usize::decode_wire(bytes)?,
            }),
            1 => Ok(Frame::Ping {
                nonce: u64::decode_wire(bytes)?,
            }),
            2 => Ok(Frame::Pong {
                nonce: u64::decode_wire(bytes)?,
            }),
            3 => Ok(Frame::WStepBegin {
                round: u64::decode_wire(bytes)?,
                epochs: usize::decode_wire(bytes)?,
                ring: Vec::decode_wire(bytes)?,
            }),
            4 => Ok(Frame::Envelope {
                round: u64::decode_wire(bytes)?,
                generation: u64::decode_wire(bytes)?,
                envelope: SubmodelEnvelope::decode_wire(bytes)?,
            }),
            5 => Ok(Frame::UpdateRequest {
                machine: usize::decode_wire(bytes)?,
                round: u64::decode_wire(bytes)?,
                generation: u64::decode_wire(bytes)?,
                envelope: SubmodelEnvelope::decode_wire(bytes)?,
            }),
            6 => Ok(Frame::Processed {
                round: u64::decode_wire(bytes)?,
                generation: u64::decode_wire(bytes)?,
                envelope: SubmodelEnvelope::decode_wire(bytes)?,
                finished: bool::decode_wire(bytes)?,
            }),
            7 => Ok(Frame::Stale {
                round: u64::decode_wire(bytes)?,
                submodel: usize::decode_wire(bytes)?,
            }),
            8 => Ok(Frame::ForwardFailed {
                round: u64::decode_wire(bytes)?,
                generation: u64::decode_wire(bytes)?,
                envelope: SubmodelEnvelope::decode_wire(bytes)?,
            }),
            9 => Ok(Frame::PeerDown {
                machine: usize::decode_wire(bytes)?,
            }),
            10 => Ok(Frame::LoadShard {
                points: Vec::decode_wire(bytes)?,
                codes: BinaryCodes::decode_wire(bytes)?,
                seq: u64::decode_wire(bytes)?,
            }),
            11 => Ok(Frame::ApplyZ {
                round: u64::decode_wire(bytes)?,
                updates: Vec::decode_wire(bytes)?,
            }),
            12 => Ok(Frame::ZApplied {
                machine: usize::decode_wire(bytes)?,
                round: u64::decode_wire(bytes)?,
            }),
            13 => Ok(Frame::FetchShard),
            14 => Ok(Frame::ShardSnapshot {
                machine: usize::decode_wire(bytes)?,
                points: Vec::decode_wire(bytes)?,
                codes: BinaryCodes::decode_wire(bytes)?,
                seq: u64::decode_wire(bytes)?,
            }),
            15 => Ok(Frame::Shutdown),
            tag => Err(WireError::BadTag {
                context: "Frame",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame) {
        let bytes = frame.to_wire();
        let back = Frame::from_wire(&bytes).expect("frame round trip decodes");
        assert_eq!(&back, frame);
    }

    fn envelope() -> SubmodelEnvelope<()> {
        let mut env = SubmodelEnvelope::new(3, (), &[0, 1, 2, 4]);
        env.record_visit(1, &[0, 1, 2, 4], 2);
        env.handle_fault(4, &[0, 1, 2, 4], 2);
        env
    }

    #[test]
    fn every_frame_variant_round_trips() {
        let codes = BinaryCodes::from_bools(&[vec![true, false, true], vec![false, true, true]]);
        let frames = [
            Frame::Hello { machine: 2 },
            Frame::Ping { nonce: 77 },
            Frame::Pong { nonce: 77 },
            Frame::WStepBegin {
                round: 9,
                epochs: 2,
                ring: vec![0, 1, 2, 4],
            },
            Frame::Envelope {
                round: 9,
                generation: 1,
                envelope: envelope(),
            },
            Frame::UpdateRequest {
                machine: 1,
                round: 9,
                generation: 1,
                envelope: envelope(),
            },
            Frame::Processed {
                round: 9,
                generation: 1,
                envelope: envelope(),
                finished: true,
            },
            Frame::Stale {
                round: 9,
                submodel: 3,
            },
            Frame::ForwardFailed {
                round: 9,
                generation: 1,
                envelope: envelope(),
            },
            Frame::PeerDown { machine: 4 },
            Frame::LoadShard {
                points: vec![10, 11, 17],
                codes: codes.clone(),
                seq: 5,
            },
            Frame::ApplyZ {
                round: 10,
                updates: vec![ZUpdate {
                    point: 11,
                    code: vec![1.0, -1.0, 1.0],
                }],
            },
            Frame::ZApplied {
                machine: 1,
                round: 10,
            },
            Frame::FetchShard,
            Frame::ShardSnapshot {
                machine: 1,
                points: vec![10, 11],
                codes,
                seq: 5,
            },
            Frame::Shutdown,
        ];
        for frame in &frames {
            round_trip(frame);
        }
    }

    #[test]
    fn corrupt_frames_fail_cleanly() {
        // Unknown discriminant → BadTag carrying the tag value.
        let mut bad = Vec::new();
        42u64.encode_wire(&mut bad);
        assert_eq!(
            Frame::from_wire(&bad),
            Err(WireError::BadTag {
                context: "Frame",
                tag: 42
            })
        );
        // Truncation sweep over a payload-heavy variant: every cut fails
        // with a diagnosable error, never a panic or giant allocation.
        let fat = Frame::UpdateRequest {
            machine: 1,
            round: 9,
            generation: 1,
            envelope: envelope(),
        };
        let bytes = fat.to_wire();
        for cut in 0..bytes.len() {
            assert!(Frame::from_wire(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }
}
