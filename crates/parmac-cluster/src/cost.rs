//! Cost models and step statistics.
//!
//! The simulator charges time per elementary operation exactly as the paper's
//! runtime model does (§5.1): `t_r^W` per (submodel, point) W-step update,
//! `t_c^W` per submodel communication hop, and `t_r^Z` per point per submodel
//! in the Z step. The two presets encode the relative characteristics of the
//! paper's two systems (table 1): the shared-memory machine has both faster
//! processors and much faster "communication" than the 10 GbE distributed
//! cluster (§8.5 reports the distributed system being 3–4× slower overall).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-operation costs (in arbitrary time units) used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `t_r^W`: time to process one data point for one submodel in the W step.
    pub w_compute_per_point: f64,
    /// `t_c^W`: time to send (receive + send) one submodel between machines.
    pub w_comm_per_submodel: f64,
    /// `t_r^Z`: time to process one data point for one submodel in the Z step
    /// (the paper's fig. 5 caption: "Z step computation time (per submodel and
    /// data point)"), so a machine's Z-step time is `M · N/P · t_r^Z` as in
    /// eq. (7).
    pub z_compute_per_point: f64,
}

impl CostModel {
    /// Creates a cost model from explicit per-operation times.
    ///
    /// # Panics
    ///
    /// Panics if any time is negative or non-finite.
    pub fn new(
        w_compute_per_point: f64,
        w_comm_per_submodel: f64,
        z_compute_per_point: f64,
    ) -> Self {
        assert!(
            w_compute_per_point >= 0.0
                && w_comm_per_submodel >= 0.0
                && z_compute_per_point >= 0.0
                && w_compute_per_point.is_finite()
                && w_comm_per_submodel.is_finite()
                && z_compute_per_point.is_finite(),
            "cost-model times must be non-negative and finite"
        );
        CostModel {
            w_compute_per_point,
            w_comm_per_submodel,
            z_compute_per_point,
        }
    }

    /// A distributed-memory cluster (10 GbE network): communication is orders
    /// of magnitude slower than computation. Matches the fudge factors the
    /// paper fits for fig. 10 (`t_r^W = 1`, `t_c^W = 10⁴`, `t_r^Z = 40`).
    pub fn distributed() -> Self {
        CostModel::new(1.0, 1e4, 40.0)
    }

    /// A shared-memory machine: both computation and communication are faster
    /// (§8.5 / fig. 13: same protocol, smaller constants; overall 3–4× faster
    /// than the distributed cluster).
    pub fn shared_memory() -> Self {
        CostModel::new(0.3, 1e3, 12.0)
    }

    /// A hypothetical zero-communication system, useful to study the
    /// `t_c^W = 0` limit of the speedup model.
    pub fn no_communication() -> Self {
        CostModel::new(1.0, 0.0, 40.0)
    }

    /// The computation/communication ratios ρ₁, ρ₂ and ρ of eq. (13) for a
    /// given number of W-step epochs `e`.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0`.
    pub fn rho(&self, epochs: usize) -> (f64, f64, f64) {
        assert!(epochs > 0, "need at least one epoch");
        let e = epochs as f64;
        let denom = (e + 1.0) * self.w_comm_per_submodel;
        if denom == 0.0 {
            return (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        }
        let rho1 = self.z_compute_per_point / denom;
        let rho2 = e * self.w_compute_per_point / denom;
        (rho1, rho2, rho1 + rho2)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::distributed()
    }
}

/// The canonical number of ring messages (submodel hops) of one fault-free W
/// step, shared by every backend's [`WStepStats::messages_sent`] accounting.
///
/// Each of the `M` submodels is handed to a machine `e·P` times for updates
/// and then makes the final communication-only lap of `P − 1` hops (§4.1), so
/// every submodel moves `e·P + P − 1` times in total — the initial seed send
/// counts as its first hop, the final delivery (every machine already holds a
/// copy) is not a hop. Hence `M · (e·P + P − 1)`; with `P = 1` this degrades
/// to `M · e` (a submodel "hops" to its only machine once per epoch).
///
/// The simulator counts hops dynamically (a mid-step fault shrinks the ring,
/// changing the count); without a fault its count equals this formula, which
/// the backend-parity tests pin.
pub fn ring_hops(n_submodels: usize, n_machines: usize, epochs: usize) -> usize {
    if n_machines == 0 {
        return 0;
    }
    n_submodels * (epochs * n_machines + n_machines - 1)
}

/// Accumulated simulated and wall-clock time for one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepTimings {
    /// Simulated time charged by the cost model.
    pub simulated: f64,
    /// Simulated time spent computing.
    pub simulated_compute: f64,
    /// Simulated time spent communicating.
    pub simulated_comm: f64,
    /// Real wall-clock time spent executing the step (seconds).
    pub wall_clock_secs: f64,
}

impl StepTimings {
    /// Records the wall-clock duration.
    pub fn with_wall_clock(mut self, d: Duration) -> Self {
        self.wall_clock_secs = d.as_secs_f64();
        self
    }
}

/// Statistics of one distributed W step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WStepStats {
    /// Timing breakdown.
    pub timings: StepTimings,
    /// Number of submodel hops over the ring (messages).
    pub messages_sent: usize,
    /// Approximate bytes moved over the ring (8 bytes per parameter).
    pub bytes_sent: usize,
    /// Number of (submodel, machine) update visits performed.
    pub update_visits: usize,
}

/// Statistics of one Z step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ZStepStats {
    /// Timing breakdown (communication is always zero: the Z step is local).
    pub timings: StepTimings,
    /// Number of data points whose coordinates were updated.
    pub points_updated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ordering() {
        let d = CostModel::distributed();
        let s = CostModel::shared_memory();
        assert!(s.w_compute_per_point < d.w_compute_per_point);
        assert!(s.w_comm_per_submodel < d.w_comm_per_submodel);
        assert!(s.z_compute_per_point < d.z_compute_per_point);
    }

    #[test]
    fn rho_matches_paper_formula() {
        // Fig. 4 parameters: tWr=1, tZr=5, tWc=1e3, e=1 → ρ1=0.0025, ρ2=0.0005.
        let c = CostModel::new(1.0, 1e3, 5.0);
        let (rho1, rho2, rho) = c.rho(1);
        assert!((rho1 - 0.0025).abs() < 1e-12);
        assert!((rho2 - 0.0005).abs() < 1e-12);
        assert!((rho - 0.003).abs() < 1e-12);
    }

    #[test]
    fn zero_communication_gives_infinite_rho() {
        let (r1, r2, r) = CostModel::no_communication().rho(2);
        assert!(r1.is_infinite() && r2.is_infinite() && r.is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_costs() {
        let _ = CostModel::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rho_rejects_zero_epochs() {
        let _ = CostModel::distributed().rho(0);
    }

    #[test]
    fn ring_hops_formula() {
        // M·(e·P + P − 1); P = 1 degrades to M·e, zero machines to zero.
        assert_eq!(ring_hops(5, 3, 2), 5 * (6 + 2));
        assert_eq!(ring_hops(4, 1, 3), 12);
        assert_eq!(ring_hops(0, 4, 2), 0);
        assert_eq!(ring_hops(7, 0, 2), 0);
    }

    #[test]
    fn step_timings_wall_clock() {
        let t = StepTimings::default().with_wall_clock(Duration::from_millis(1500));
        assert!((t.wall_clock_secs - 1.5).abs() < 1e-9);
    }
}
