//! Sharded-server backend: machines as long-lived actors that serve
//! **training and retrieval from the same processes**.
//!
//! ParMAC's data layout — every machine keeps its shard and its slice of the
//! auxiliary codes forever, only submodels move — is exactly the shape of a
//! serving fleet. [`ServerBackend`] exploits that: each machine is an actor
//! behind a typed crossbeam mailbox ([`MachineMsg`]), and the same machine
//! identity serves three kinds of traffic:
//!
//! * **W step** — [`SubmodelEnvelope`] hops around the ring. Routing is
//!   driven by the envelope's *own visit list* (`pending_machines`), not a
//!   hardcoded successor walk: a machine that is not on the list (it faulted
//!   out via [`SubmodelEnvelope::handle_fault`], or was already visited this
//!   epoch) relays the envelope unchanged towards the next pending machine.
//!   This is §4.3's general mechanism, and it is what lets streaming
//!   `add_machine`/`remove_machine` and fault recovery work mid-training.
//! * **Z step** — a [`ZStepRequest`]/reply exchange: each machine solves its
//!   own shard and answers with the changed codes ([`ZShardUpdates`]), which
//!   are applied in deterministic topology order — bitwise identical to
//!   [`SimBackend`](crate::backend::SimBackend).
//! * **Retrieval** — [`Query`]/[`QueryResult`]: the resident serving fleet
//!   owns a copy of each shard's binary codes and answers Hamming k-NN
//!   queries *while training runs*. [`QueryRouter`] fans a query batch out to
//!   every machine and merges the per-shard top-k
//!   ([`parmac_retrieval::merge_shard_topk`]) into exactly the answer a
//!   single-process [`hamming_knn`](parmac_retrieval::hamming_knn) over the
//!   concatenated shards would give. Each machine serves from a multi-probe
//!   [`PrefixIndex`] built at `LoadShard` and refreshed incrementally on
//!   `ApplyUpdates`: queries probe code-prefix buckets in increasing Hamming
//!   radius instead of walking the whole shard, terminating provably exact
//!   (the default) or after an optional *probe budget*
//!   ([`knn_budgeted`](QueryRouter::knn_budgeted)) that trades recall for
//!   throughput. Query batches split over a small pool of *scan workers*
//!   (each worker probes for a contiguous sub-range of the batch, so
//!   per-query answers are independent of the split); the
//!   [`knn_admitted`](QueryRouter::knn_admitted)
//!   entry additionally runs queries through a **bounded admission queue**
//!   that coalesces concurrently arriving submissions into one fan-out batch
//!   and sheds load explicitly ([`AdmissionError::Shed`], counted in
//!   [`ServingStats`]) when saturated.
//!
//! # Thread structure
//!
//! The *serving fleet* is genuinely long-lived: one detached thread per
//! machine, spawned on first [`publish_codes`] and kept until the backend is
//! dropped, processing `Query`/`LoadShard`/`ApplyUpdates` messages in arrival
//! order (each answer is a consistent snapshot of that shard). The *step
//! protocol* runs on scoped per-machine threads inside `run_w_step` /
//! `run_z_step`: the trainer's update/solve closures borrow step-local state
//! (the `ClusterBackend` contract gives them non-`'static` lifetimes), so the
//! borrow checker requires the threads executing them to be joined before the
//! step returns. Both populations share machine ids and shard layout — one
//! process, training and serving concurrently.
//!
//! Trained weights and codes are bitwise identical to every other backend:
//! submodels visit machines in the same order (seeded round-robin, then ring
//! order), submodels are mutually independent during a W step, and Z updates
//! are collected per shard and applied in topology order.
//!
//! [`publish_codes`]: crate::backend::ClusterBackend::publish_codes

use crate::backend::{z_stats, ClusterBackend, ZUpdate};
use crate::cost::{ring_hops, CostModel, StepTimings, WStepStats, ZStepStats};
use crate::envelope::SubmodelEnvelope;
use crate::sim::{Fault, SimCluster};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use parmac_hash::BinaryCodes;
use parmac_retrieval::{merge_shard_topk, PrefixIndex};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Minimum queries per scan task: a batch only splits over scan workers when
/// every worker gets at least this many queries, so the dispatch overhead
/// stays well under the probe cost and small batches run serially on the
/// actor thread.
const MIN_QUERIES_PER_SCAN_TASK: usize = 4;

/// Default number of scan workers per serving actor: the host's parallelism,
/// capped so a many-machine fleet does not oversubscribe the box.
fn default_scan_workers() -> usize {
    thread::available_parallelism()
        .map_or(1, |w| w.get())
        .min(4)
}

/// A Hamming k-NN query fanned out to the machines that own the codes.
///
/// The wire-serialisable request payload is [`wire`](crate::wire)'s
/// `WireQuery`; in-process the query carries its reply channel.
pub struct Query {
    /// The query codes (shared across the fan-out, one allocation total).
    pub queries: Arc<BinaryCodes>,
    /// How many neighbours each machine should return (its shard top-k).
    pub k: usize,
    /// Per-query probe budget for the machine's prefix index: `None` is
    /// exact mode, `Some(b)` stops each query after `b` non-empty buckets
    /// (see [`PrefixIndex::topk_batched`]).
    pub probes: Option<usize>,
    /// Where the machine sends its [`QueryResult`].
    pub reply: Sender<QueryResult>,
}

/// One machine's answer to a [`Query`]: its shard's top-k per query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The answering machine.
    pub machine: usize,
    /// Per query: ascending `(Hamming distance, global point index)` pairs,
    /// at most `k` of them (fewer if the shard is smaller).
    pub hits: Vec<Vec<(u32, usize)>>,
}

/// A Z-step work order: "solve your shard, reply with the changed codes".
pub struct ZStepRequest {
    /// Where the machine sends its [`ZShardUpdates`].
    pub reply: Sender<ZShardUpdates>,
}

/// One machine's answer to a [`ZStepRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZShardUpdates {
    /// The machine whose shard was solved.
    pub machine: usize,
    /// The changed codes, in shard order.
    pub updates: Vec<ZUpdate>,
}

/// The typed mailbox protocol of a ParMAC server machine. `S` is the
/// circulating submodel type (the serving fleet instantiates it at `()`).
pub enum MachineMsg<S> {
    /// W step: a submodel envelope hopping the ring.
    Envelope(SubmodelEnvelope<S>),
    /// Z step: solve the local shard and reply.
    ZStepRequest(ZStepRequest),
    /// Retrieval: answer a Hamming k-NN query from the local shard codes.
    Query(Query),
    /// Replace the shard this machine serves (points and their codes).
    LoadShard {
        /// Global indices of the points this machine owns.
        points: Vec<usize>,
        /// Their binary codes, one row per point, in `points` order.
        codes: BinaryCodes,
    },
    /// Apply incremental Z-step code updates to the served shard.
    ApplyUpdates(Vec<ZUpdate>),
    /// Stop the actor.
    Shutdown,
}

/// One chunk's scan result: `(chunk index, per-query top-k hits)`.
type ChunkHits = (usize, Vec<Vec<(u32, usize)>>);

/// A scan work order for one persistent scan worker: probe the index
/// snapshot for the queries in `q_rows` and send that chunk's per-query
/// top-k back.
struct ScanTask {
    index: Arc<PrefixIndex>,
    queries: Arc<BinaryCodes>,
    q_rows: std::ops::Range<usize>,
    k: usize,
    probes: Option<usize>,
    chunk: usize,
    reply: Sender<ChunkHits>,
}

/// The persistent scan workers owned by one serving actor — a real pool, not
/// per-query thread spawns: each worker is a long-lived thread draining its
/// own task channel, so a query batch pays only channel sends.
struct ScanPool {
    txs: Vec<Sender<ScanTask>>,
    threads: Vec<JoinHandle<()>>,
}

impl ScanPool {
    fn new(machine: usize, workers: usize) -> Self {
        let mut txs = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<ScanTask>();
            txs.push(tx);
            let thread = thread::Builder::new()
                .name(format!("parmac-scan-{machine}-{w}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        let hits = task.index.topk_batched_range(
                            &task.queries,
                            task.q_rows.clone(),
                            task.k,
                            task.probes,
                        );
                        let _ = task.reply.send((task.chunk, hits));
                    }
                })
                .expect("spawn scan worker");
            threads.push(thread);
        }
        ScanPool { txs, threads }
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        self.txs.clear();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// State owned by one long-lived serving actor: the machine's resident
/// multi-probe [`PrefixIndex`] over its shard codes. The index lives behind
/// an `Arc` so scan workers can hold a consistent snapshot while the actor
/// waits for their chunk replies; refreshes between scans mutate in place
/// via `Arc::make_mut` (the Arc is unique again by then, except in the brief
/// window where a worker has replied but not yet dropped its task — then
/// `make_mut` copies once and correctness is unaffected). Same-prefix
/// updates rewrite their bucket row; bucket-moving ones ride the index's
/// delta region until it recompacts, so a Z step costs per-update work, not
/// a rebuild.
struct ServingShard {
    machine: usize,
    index: Option<Arc<PrefixIndex>>,
    /// How many scan workers split this machine's query batches (1 = serial).
    scan_workers: usize,
    /// Lazily spawned persistent workers (`scan_workers - 1` threads; the
    /// actor itself scans chunk 0).
    pool: Option<ScanPool>,
}

impl ServingShard {
    fn load(&mut self, points: Vec<usize>, codes: BinaryCodes) {
        self.index = Some(Arc::new(PrefixIndex::build(&codes, &points)));
    }

    fn apply(&mut self, updates: Vec<ZUpdate>) {
        for update in updates {
            let index = self.index.get_or_insert_with(|| {
                Arc::new(PrefixIndex::build(
                    &BinaryCodes::zeros(0, update.code.len().max(1)),
                    &[],
                ))
            });
            Arc::make_mut(index).upsert(update.point, &update.code);
        }
    }

    fn answer(&mut self, query: &Query) -> QueryResult {
        // Tolerate malformed queries (width mismatch, k = 0) with an empty
        // answer instead of panicking: a panic here would kill the detached
        // actor and leave every later caller blocked on a reply that never
        // comes.
        let servable = match &self.index {
            Some(index) => {
                !index.is_empty() && query.k > 0 && index.n_bits() == query.queries.n_bits()
            }
            None => false,
        };
        let hits = if servable {
            self.scan(&query.queries, query.k, query.probes)
        } else {
            vec![Vec::new(); query.queries.len()]
        };
        QueryResult {
            machine: self.machine,
            hits,
        }
    }

    /// The shard's batched top-k, split over this machine's scan workers:
    /// each worker probes the shared index snapshot for a contiguous
    /// sub-range of the query *batch*, so concatenating the chunks in order
    /// is exactly the whole-batch answer (per-query probing is independent —
    /// no merge needed). Each worker keeps at least
    /// [`MIN_QUERIES_PER_SCAN_TASK`] queries — small batches probe serially
    /// on the actor thread regardless of the worker count.
    fn scan(
        &mut self,
        queries: &Arc<BinaryCodes>,
        k: usize,
        probes: Option<usize>,
    ) -> Vec<Vec<(u32, usize)>> {
        let index = Arc::clone(self.index.as_ref().expect("scan requires an index"));
        let batch = queries.len();
        let max_useful = (batch / MIN_QUERIES_PER_SCAN_TASK).max(1);
        let workers = self.scan_workers.min(max_useful).max(1);
        if workers == 1 {
            return index.topk_batched(queries, k, probes);
        }
        let pool = self.pool.get_or_insert_with(|| {
            // Sized once for the configured maximum; smaller scans simply use
            // a prefix of the workers.
            ScanPool::new(self.machine, self.scan_workers - 1)
        });
        let chunk_len = batch.div_ceil(workers);
        let (reply_tx, reply_rx) = unbounded();
        for c in 1..workers {
            let lo = (c * chunk_len).min(batch);
            let hi = ((c + 1) * chunk_len).min(batch);
            pool.txs[c - 1]
                .send(ScanTask {
                    index: Arc::clone(&index),
                    queries: Arc::clone(queries),
                    q_rows: lo..hi,
                    k,
                    probes,
                    chunk: c,
                    reply: reply_tx.clone(),
                })
                .expect("scan worker alive");
        }
        drop(reply_tx);
        // The actor probes chunk 0 itself while the workers probe the rest.
        let mut per_chunk: Vec<Vec<Vec<(u32, usize)>>> = vec![Vec::new(); workers];
        per_chunk[0] = index.topk_batched_range(queries, 0..chunk_len.min(batch), k, probes);
        for _ in 1..workers {
            let (chunk, hits) = reply_rx.recv().expect("scan worker replies");
            per_chunk[chunk] = hits;
        }
        per_chunk.into_iter().flatten().collect()
    }
}

/// The long-lived serving actor loop: `Query`/`LoadShard`/`ApplyUpdates`
/// until `Shutdown`. Step messages never reach this loop (the step protocol
/// runs on the scoped per-step actors), so they are ignored defensively.
fn serving_actor(machine: usize, rx: Receiver<MachineMsg<()>>, scan_workers: usize) {
    let mut shard = ServingShard {
        machine,
        index: None,
        scan_workers,
        pool: None,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            MachineMsg::Query(query) => {
                let _ = query.reply.send(shard.answer(&query));
            }
            MachineMsg::LoadShard { points, codes } => shard.load(points, codes),
            MachineMsg::ApplyUpdates(updates) => shard.apply(updates),
            MachineMsg::Shutdown => break,
            MachineMsg::Envelope(_) | MachineMsg::ZStepRequest(_) => {}
        }
    }
}

struct MachineHandle {
    tx: Sender<MachineMsg<()>>,
    thread: Option<JoinHandle<()>>,
}

/// The resident machine fleet: one long-lived actor per machine, shared by
/// the backend and every [`QueryRouter`] cloned from it.
struct Fleet {
    machines: Mutex<BTreeMap<usize, MachineHandle>>,
    /// Scan workers per serving actor, captured when each actor spawns.
    scan_workers: AtomicUsize,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet {
            machines: Mutex::new(BTreeMap::new()),
            scan_workers: AtomicUsize::new(default_scan_workers()),
        }
    }
}

impl Fleet {
    /// Sends `msg` to `machine`, spawning its actor on first contact.
    fn send(&self, machine: usize, msg: MachineMsg<()>) {
        let mut map = self.machines.lock();
        let scan_workers = self.scan_workers.load(Ordering::Relaxed);
        let handle = map.entry(machine).or_insert_with(|| {
            let (tx, rx) = unbounded();
            let thread = thread::Builder::new()
                .name(format!("parmac-serve-{machine}"))
                .spawn(move || serving_actor(machine, rx, scan_workers))
                .expect("spawn serving actor");
            MachineHandle {
                tx,
                thread: Some(thread),
            }
        });
        handle.tx.send(msg).expect("serving actor alive");
    }

    /// Snapshot of the senders of every resident machine.
    fn senders(&self) -> Vec<Sender<MachineMsg<()>>> {
        self.machines
            .lock()
            .values()
            .map(|h| h.tx.clone())
            .collect()
    }

    fn n_machines(&self) -> usize {
        self.machines.lock().len()
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let mut map = self.machines.lock();
        for handle in map.values() {
            let _ = handle.tx.send(MachineMsg::Shutdown);
        }
        for (_, mut handle) in std::mem::take(&mut *map) {
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// One fan-out: every resident machine scans its shard, the replies are
/// collected unordered (the per-query merge re-establishes determinism).
/// Dropping the fan-out's own sender clone means `recv` errors out (instead
/// of blocking forever) if an actor dies without replying — that machine's
/// shard simply drops out of the merge.
fn fan_out_topk(
    fleet: &Fleet,
    queries: &Arc<BinaryCodes>,
    k: usize,
    probes: Option<usize>,
) -> Vec<Vec<Vec<(u32, usize)>>> {
    let senders = fleet.senders();
    let (reply_tx, reply_rx) = unbounded();
    let mut fanout = 0usize;
    for tx in &senders {
        let sent = tx.send(MachineMsg::Query(Query {
            queries: Arc::clone(queries),
            k,
            probes,
            reply: reply_tx.clone(),
        }));
        if sent.is_ok() {
            fanout += 1;
        }
    }
    drop(reply_tx);
    let mut per_shard: Vec<Vec<Vec<(u32, usize)>>> = Vec::with_capacity(fanout);
    for _ in 0..fanout {
        match reply_rx.recv() {
            Ok(result) => per_shard.push(result.hits),
            Err(_) => break,
        }
    }
    per_shard
}

/// Sizing of the batched admission queue (see [`QueryRouter::knn_admitted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Capacity of the bounded admission mailbox. A submission finding the
    /// mailbox full is *shed*: the caller gets [`AdmissionError::Shed`]
    /// immediately instead of queueing unboundedly — explicit load shedding,
    /// never a silent drop.
    pub queue_capacity: usize,
    /// Query budget of one coalesced fan-out: the admission loop stops
    /// draining further submissions once the accumulated batch holds at
    /// least this many *queries*. Bounds the size of the concatenated batch
    /// and the latency outliers a slow scan inflicts on the queries
    /// coalesced with it. The first submission of a batch is always served
    /// whole, so one oversized submission can exceed the budget by itself.
    pub max_batch: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            max_batch: 256,
        }
    }
}

/// Snapshot of the admission/shedding counters. At every quiesce point (no
/// `knn_admitted` call in flight) `submitted == answered + shed`: every query
/// is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Submissions to [`QueryRouter::knn_admitted`].
    pub submitted: u64,
    /// Submissions answered (possibly coalesced into a shared fan-out).
    pub answered: u64,
    /// Submissions shed: the admission queue was full, or the backend shut
    /// down before the reply. Every shed surfaces as [`AdmissionError`].
    pub shed: u64,
    /// Fan-out batches dispatched by the admission loop.
    pub batches: u64,
    /// Submissions that shared a fan-out with at least one other submission.
    pub coalesced: u64,
}

#[derive(Default)]
struct AdmissionCounters {
    submitted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
}

impl AdmissionCounters {
    fn snapshot(&self) -> ServingStats {
        ServingStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

/// Why a [`QueryRouter::knn_admitted`] call returned no answer. Either way
/// the query was counted in [`ServingStats::shed`] — load shedding is
/// explicit, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded admission queue was at capacity; retry later or back off.
    Shed {
        /// The capacity the queue was configured with.
        queue_capacity: usize,
    },
    /// The admission loop has shut down (the backend was dropped).
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Shed { queue_capacity } => {
                write!(
                    f,
                    "query shed: admission queue at capacity {queue_capacity}"
                )
            }
            AdmissionError::Closed => write!(f, "admission loop shut down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One admitted-but-unanswered query batch.
struct Pending {
    queries: Arc<BinaryCodes>,
    k: usize,
    probes: Option<usize>,
    reply: Sender<Vec<Vec<usize>>>,
}

struct AdmissionHandle {
    tx: Sender<Pending>,
    thread: Option<JoinHandle<()>>,
}

/// The batched admission front: a bounded mailbox plus one loop thread that
/// drains concurrently arriving submissions and coalesces them into shared
/// fan-out batches. Spawned lazily on the first admitted query.
struct Admission {
    handle: Mutex<Option<AdmissionHandle>>,
    config: Mutex<AdmissionConfig>,
    counters: Arc<AdmissionCounters>,
}

impl Default for Admission {
    fn default() -> Self {
        Admission {
            handle: Mutex::new(None),
            config: Mutex::new(AdmissionConfig::default()),
            counters: Arc::new(AdmissionCounters::default()),
        }
    }
}

impl Admission {
    /// The bounded submission sender, spawning the admission loop on first
    /// use. The loop thread owns an `Arc` of the fleet, so the fleet outlives
    /// every admitted query.
    fn sender(&self, fleet: &Arc<Fleet>) -> Sender<Pending> {
        let mut guard = self.handle.lock();
        let handle = guard.get_or_insert_with(|| {
            let config = *self.config.lock();
            let (tx, rx) = bounded(config.queue_capacity);
            let fleet = Arc::clone(fleet);
            let counters = Arc::clone(&self.counters);
            let thread = thread::Builder::new()
                .name("parmac-admission".into())
                .spawn(move || admission_loop(&fleet, &rx, &counters, config.max_batch))
                .expect("spawn admission loop");
            AdmissionHandle {
                tx,
                thread: Some(thread),
            }
        });
        handle.tx.clone()
    }
}

impl Drop for Admission {
    fn drop(&mut self) {
        if let Some(mut handle) = self.handle.lock().take() {
            // Dropping the mailbox sender disconnects the loop; it drains the
            // already-admitted queue (answering every blocked caller) and
            // exits.
            drop(handle.tx);
            if let Some(thread) = handle.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// The admission loop: blocks for one submission, opportunistically drains
/// whatever else arrived concurrently (until the batch holds `max_batch`
/// queries), groups runs of equal code width *and* probe budget, and serves
/// each group with one coalesced fan-out. The probed-bucket set of a
/// budgeted query is a fixed function of the query prefix and the budget —
/// never of `k` — so coalescing submissions with different `k` at the same
/// budget cannot change any submission's answer.
fn admission_loop(
    fleet: &Fleet,
    rx: &Receiver<Pending>,
    counters: &AdmissionCounters,
    max_batch: usize,
) {
    while let Ok(first) = rx.recv() {
        let mut total_queries = first.queries.len();
        let mut batch = vec![first];
        while total_queries < max_batch {
            match rx.try_recv() {
                Ok(pending) => {
                    total_queries += pending.queries.len();
                    batch.push(pending);
                }
                Err(_) => break,
            }
        }
        let mut start = 0;
        while start < batch.len() {
            let width = batch[start].queries.n_bits();
            let probes = batch[start].probes;
            let mut end = start + 1;
            while end < batch.len()
                && batch[end].queries.n_bits() == width
                && batch[end].probes == probes
            {
                end += 1;
            }
            serve_coalesced(fleet, counters, &batch[start..end]);
            start = end;
        }
    }
}

/// Serves a group of equal-width, equal-budget submissions with one fan-out
/// at the group's largest `k`: each per-shard list is the ascending prefix
/// of its shard's ranking over the probed candidate set (all of it in exact
/// mode), so merging to any smaller `k` is that submission's own answer —
/// coalescing changes batching, never answers.
fn serve_coalesced(fleet: &Fleet, counters: &AdmissionCounters, group: &[Pending]) {
    counters.batches.fetch_add(1, Ordering::Relaxed);
    if group.len() > 1 {
        counters
            .coalesced
            .fetch_add(group.len() as u64, Ordering::Relaxed);
    }
    let k_max = group.iter().map(|p| p.k).max().expect("group is non-empty");
    let queries = if group.len() == 1 {
        Arc::clone(&group[0].queries)
    } else {
        let mut all = BinaryCodes::zeros(0, group[0].queries.n_bits());
        for pending in group {
            all.append_codes(&pending.queries);
        }
        Arc::new(all)
    };
    let mut per_shard = fan_out_topk(fleet, &queries, k_max, group[0].probes);
    let mut offset = 0usize;
    for pending in group {
        let answers: Vec<Vec<usize>> = (offset..offset + pending.queries.len())
            .map(|q| {
                let lists: Vec<Vec<(u32, usize)>> = per_shard
                    .iter_mut()
                    .map(|hits| std::mem::take(&mut hits[q]))
                    .collect();
                merge_shard_topk(&lists, pending.k)
            })
            .collect();
        offset += pending.queries.len();
        counters.answered.fetch_add(1, Ordering::Relaxed);
        let _ = pending.reply.send(answers);
    }
}

/// Front-end that fans Hamming k-NN queries out to the machines that own the
/// codes and merges the per-shard top-k into the global answer. Cheap to
/// clone; can be handed to request threads while training runs.
///
/// Two entry points: [`knn`](Self::knn)/[`knn_shared`](Self::knn_shared)
/// fan out immediately (one fan-out per call), and
/// [`knn_admitted`](Self::knn_admitted) goes through the bounded admission
/// queue, which coalesces concurrently arriving submissions into shared
/// fan-out batches and sheds load explicitly when saturated.
#[derive(Clone)]
pub struct QueryRouter {
    fleet: Arc<Fleet>,
    admission: Arc<Admission>,
}

impl QueryRouter {
    /// For each query code, the indices of the `k` resident database codes
    /// with the smallest Hamming distance, closest first (ties broken by
    /// global index) — exactly what a single-process
    /// [`hamming_knn`](parmac_retrieval::hamming_knn) over the concatenated
    /// shards returns. Queries are answered from each machine's current
    /// shard snapshot, so calling concurrently with training is safe; an
    /// empty fleet (nothing published yet) yields empty result lists.
    ///
    /// Copies the query batch once to share it across the fan-out; callers
    /// that already hold an `Arc` should use [`knn_shared`](Self::knn_shared).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn(&self, queries: &BinaryCodes, k: usize) -> Vec<Vec<usize>> {
        self.knn_shared(&Arc::new(queries.clone()), k)
    }

    /// [`knn`](Self::knn) without the copy: the shared batch is handed to
    /// every machine as-is, so the fan-out allocates nothing per machine.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_shared(&self, queries: &Arc<BinaryCodes>, k: usize) -> Vec<Vec<usize>> {
        self.knn_with_probes(queries, k, None)
    }

    /// Budgeted retrieval: each machine stops a query's index probing after
    /// `probes` non-empty prefix buckets instead of running to provable
    /// exactness, trading recall for throughput (the recall-vs-qps knob of
    /// the serving stack; see [`PrefixIndex::topk_batched`]). Recall against
    /// the exact answer is monotone non-decreasing in `probes`; a budget of
    /// at least every machine's occupied-bucket count is exact mode.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_budgeted(
        &self,
        queries: &Arc<BinaryCodes>,
        k: usize,
        probes: usize,
    ) -> Vec<Vec<usize>> {
        self.knn_with_probes(queries, k, Some(probes))
    }

    fn knn_with_probes(
        &self,
        queries: &Arc<BinaryCodes>,
        k: usize,
        probes: Option<usize>,
    ) -> Vec<Vec<usize>> {
        assert!(k > 0, "k must be positive");
        let mut per_shard = fan_out_topk(&self.fleet, queries, k, probes);
        (0..queries.len())
            .map(|q| {
                let lists: Vec<Vec<(u32, usize)>> = per_shard
                    .iter_mut()
                    .map(|hits| std::mem::take(&mut hits[q]))
                    .collect();
                merge_shard_topk(&lists, k)
            })
            .collect()
    }

    /// Submits a query batch through the bounded admission queue. Under
    /// concurrent load the admission loop coalesces waiting submissions into
    /// one fan-out batch (scanned by the batched kernel in a single shard
    /// walk); when the queue is full the call returns
    /// [`AdmissionError::Shed`] *immediately* — explicit backpressure, so a
    /// saturated fleet degrades by answering fewer queries exactly rather
    /// than all queries late. Every submission ends up in
    /// [`ServingStats`]: `answered + shed == submitted`.
    ///
    /// Answers are identical to [`knn_shared`](Self::knn_shared) with the
    /// same arguments.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_admitted(
        &self,
        queries: Arc<BinaryCodes>,
        k: usize,
    ) -> Result<Vec<Vec<usize>>, AdmissionError> {
        self.admit(queries, k, None)
    }

    /// [`knn_budgeted`](Self::knn_budgeted) through the bounded admission
    /// queue: the admission loop only coalesces submissions with the *same*
    /// probe budget into a shared fan-out (the probed-bucket set depends on
    /// the budget, never on `k`), so answers equal the direct budgeted call.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_admitted_budgeted(
        &self,
        queries: Arc<BinaryCodes>,
        k: usize,
        probes: usize,
    ) -> Result<Vec<Vec<usize>>, AdmissionError> {
        self.admit(queries, k, Some(probes))
    }

    fn admit(
        &self,
        queries: Arc<BinaryCodes>,
        k: usize,
        probes: Option<usize>,
    ) -> Result<Vec<Vec<usize>>, AdmissionError> {
        assert!(k > 0, "k must be positive");
        let counters = &self.admission.counters;
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        let tx = self.admission.sender(&self.fleet);
        let (reply_tx, reply_rx) = unbounded();
        let pending = Pending {
            queries,
            k,
            probes,
            reply: reply_tx,
        };
        if let Err(err) = tx.try_send(pending) {
            counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(match err {
                TrySendError::Full(_) => AdmissionError::Shed {
                    queue_capacity: self.admission.config.lock().queue_capacity,
                },
                TrySendError::Disconnected(_) => AdmissionError::Closed,
            });
        }
        match reply_rx.recv() {
            Ok(answers) => Ok(answers),
            Err(_) => {
                counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(AdmissionError::Closed)
            }
        }
    }

    /// Snapshot of the admission/shedding counters.
    pub fn serving_stats(&self) -> ServingStats {
        self.admission.counters.snapshot()
    }

    /// Number of resident machines currently serving queries.
    pub fn n_machines(&self) -> usize {
        self.fleet.n_machines()
    }
}

/// The sharded-server backend: the fourth [`ClusterBackend`].
///
/// Training steps run the typed mailbox protocol over per-machine actors and
/// stay bitwise identical to [`SimBackend`](crate::backend::SimBackend); the
/// resident serving fleet answers retrieval queries concurrently (see the
/// module docs for the full picture). Cloning the backend shares the fleet.
#[derive(Clone)]
pub struct ServerBackend {
    cost: CostModel,
    fleet: Arc<Fleet>,
    admission: Arc<Admission>,
}

impl ServerBackend {
    /// A server backend with the distributed cost preset and an empty fleet.
    pub fn new() -> Self {
        ServerBackend {
            cost: CostModel::distributed(),
            fleet: Arc::new(Fleet::default()),
            admission: Arc::new(Admission::default()),
        }
    }

    /// Overrides the cost model a trainer built on this backend seeds its
    /// cluster with (the cluster is authoritative at execution time; see
    /// [`ClusterBackend::cost_model`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets how many scan workers each serving actor splits its query
    /// batches over (default: the host's parallelism, capped at 4). Workers
    /// probe the shared index snapshot for disjoint sub-ranges of the batch
    /// and per-query answers are independent, so the worker count never
    /// changes answers. Call before the fleet spawns (i.e. before the first
    /// `publish_codes`): each actor captures the count when it starts.
    pub fn with_scan_workers(self, workers: usize) -> Self {
        self.fleet
            .scan_workers
            .store(workers.max(1), Ordering::Relaxed);
        self
    }

    /// Sets the admission-queue sizing (default: capacity 256, a 256-query
    /// budget per coalesced fan-out). Call before the first
    /// [`QueryRouter::knn_admitted`]: the admission loop captures the
    /// configuration when it spawns.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` or `max_batch` is zero.
    pub fn with_admission_config(self, config: AdmissionConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        *self.admission.config.lock() = config;
        self
    }

    /// A retrieval front-end over this backend's serving fleet. Routers stay
    /// valid (and keep the fleet alive) after the backend is moved into a
    /// trainer.
    pub fn query_router(&self) -> QueryRouter {
        QueryRouter {
            fleet: Arc::clone(&self.fleet),
            admission: Arc::clone(&self.admission),
        }
    }
}

impl Default for ServerBackend {
    fn default() -> Self {
        ServerBackend::new()
    }
}

impl ClusterBackend for ServerBackend {
    fn name(&self) -> &'static str {
        "server"
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Loads every machine's shard codes into the resident serving fleet
    /// (spawning actors on first publish). Machines keep their shard even
    /// when they leave the ring — "returning machine p to the cluster"
    /// (§4.3) does not unload its data.
    fn publish_codes(&self, cluster: &SimCluster, codes: &BinaryCodes) {
        for machine in 0..cluster.n_machines() {
            let points = cluster.shard(machine).to_vec();
            let mut shard_codes = BinaryCodes::zeros(points.len(), codes.n_bits());
            for (local, &global) in points.iter().enumerate() {
                shard_codes.set_code(local, &codes.to_f64_row(global));
            }
            self.fleet.send(
                machine,
                MachineMsg::LoadShard {
                    points,
                    codes: shard_codes,
                },
            );
        }
    }

    /// Streams just the new points' codes to the one machine that ingested
    /// them (an incremental `ApplyUpdates`, not a full fleet reload).
    fn publish_point_codes(&self, machine: usize, points: &[usize], codes: &BinaryCodes) {
        if points.is_empty() {
            return;
        }
        let updates: Vec<ZUpdate> = points
            .iter()
            .map(|&point| ZUpdate {
                point,
                code: codes.to_f64_row(point),
            })
            .collect();
        self.fleet.send(machine, MachineMsg::ApplyUpdates(updates));
    }

    /// The asynchronous ring of §4.1 with §4.3's list-driven routing: every
    /// hop delivers the envelope to the scoped actor of the next machine;
    /// machines not on the envelope's visit list relay it unchanged. In the
    /// fault-free case every machine is always on the list, so the visit
    /// sequence — and therefore the trained weights — are bitwise identical
    /// to the other backends. Fault *injection* plans are ignored like on the
    /// other real-thread backends (pre-faulted envelopes are exercised by the
    /// unit tests instead); `messages_sent` is the canonical [`ring_hops`]
    /// count plus any relay hops.
    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        _fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync,
    {
        assert!(epochs > 0, "need at least one epoch");
        let start = Instant::now();
        let machines = cluster.topology().machines().to_vec();
        let p = machines.len();
        let m_total = submodels.len();
        if m_total == 0 {
            return (
                submodels,
                WStepStats {
                    timings: StepTimings::default().with_wall_clock(start.elapsed()),
                    ..WStepStats::default()
                },
            );
        }

        let mut senders: Vec<Sender<MachineMsg<S>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<MachineMsg<S>>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let (done_tx, done_rx) = unbounded::<SubmodelEnvelope<S>>();

        // Seed each machine's mailbox with its portion of the submodels
        // (round robin by ring position, as in fig. 2).
        for (idx, sub) in submodels.into_iter().enumerate() {
            let env = SubmodelEnvelope::new(idx, sub, &machines);
            senders[idx % p]
                .send(MachineMsg::Envelope(env))
                .expect("seed send");
        }

        let update_visits = AtomicUsize::new(0);
        let relayed = AtomicUsize::new(0);

        let finished = thread::scope(|scope| {
            for (pos, &machine) in machines.iter().enumerate() {
                let rx = receivers[pos].take().expect("receiver taken once");
                let next_tx = senders[(pos + 1) % p].clone();
                let done_tx = done_tx.clone();
                let shard = cluster.shard(machine);
                let update = &update;
                let machines_ref = &machines;
                let update_visits = &update_visits;
                let relayed = &relayed;
                scope.spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        let mut env = match msg {
                            MachineMsg::Shutdown => break,
                            MachineMsg::Envelope(env) => env,
                            // Step mailboxes carry only envelopes; the other
                            // message kinds belong to the serving fleet.
                            _ => continue,
                        };
                        if !env.should_process_at(machine, epochs) {
                            // §4.3 routing: not on the visit list (already
                            // visited this epoch, or faulted out) — relay the
                            // envelope unchanged towards the next pending
                            // machine.
                            relayed.fetch_add(1, Ordering::Relaxed);
                            next_tx.send(MachineMsg::Envelope(env)).expect("ring alive");
                            continue;
                        }
                        if env.record_visit(machine, machines_ref, epochs) {
                            update(&mut env.payload, machine, shard);
                            update_visits.fetch_add(1, Ordering::Relaxed);
                        }
                        if env.is_finished(p, epochs) {
                            done_tx.send(env).expect("collector alive");
                        } else {
                            next_tx.send(MachineMsg::Envelope(env)).expect("ring alive");
                        }
                    }
                });
            }

            // Collector: once every submodel has finished, shut the ring down.
            let mut finished: Vec<Option<S>> = (0..m_total).map(|_| None).collect();
            for _ in 0..m_total {
                let env = done_rx.recv().expect("all submodels eventually finish");
                finished[env.submodel_id] = Some(env.payload);
            }
            for tx in &senders {
                let _ = tx.send(MachineMsg::Shutdown);
            }
            finished
        });

        let result: Vec<S> = finished
            .into_iter()
            .map(|s| s.expect("every submodel collected"))
            .collect();
        let msgs = ring_hops(m_total, p, epochs) + relayed.load(Ordering::Relaxed);
        let stats = WStepStats {
            timings: StepTimings::default().with_wall_clock(start.elapsed()),
            messages_sent: msgs,
            bytes_sent: msgs * params_per_submodel * std::mem::size_of::<f64>(),
            update_visits: update_visits.load(Ordering::Relaxed),
        };
        (result, stats)
    }

    /// The Z step as a request/reply exchange: every machine actor receives a
    /// [`ZStepRequest`], solves its own shard, and answers with its
    /// [`ZShardUpdates`]. Replies are assembled in topology order (bitwise
    /// identical to the serial sweep) and mirrored into the serving fleet so
    /// concurrent queries see the freshest codes.
    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync,
    {
        let start = Instant::now();
        let machines = cluster.topology().machines().to_vec();
        let (reply_tx, reply_rx) = unbounded::<ZShardUpdates>();

        thread::scope(|scope| {
            for &machine in &machines {
                let (tx, rx) = unbounded::<MachineMsg<()>>();
                let solve = &solve;
                let shard = cluster.shard(machine);
                scope.spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            MachineMsg::ZStepRequest(request) => {
                                let updates = solve(machine, shard);
                                let _ = request.reply.send(ZShardUpdates { machine, updates });
                            }
                            MachineMsg::Shutdown => break,
                            _ => {}
                        }
                    }
                });
                tx.send(MachineMsg::ZStepRequest(ZStepRequest {
                    reply: reply_tx.clone(),
                }))
                .expect("machine mailbox alive");
                tx.send(MachineMsg::Shutdown)
                    .expect("machine mailbox alive");
            }
        });

        let mut per_machine: HashMap<usize, Vec<ZUpdate>> = HashMap::with_capacity(machines.len());
        for _ in 0..machines.len() {
            let reply = reply_rx.recv().expect("every machine replies");
            per_machine.insert(reply.machine, reply.updates);
        }
        let mut updates = Vec::new();
        for &machine in &machines {
            let shard_updates = per_machine.remove(&machine).expect("one reply per machine");
            // Keep the serving fleet fresh: queries issued from now on see
            // this machine's post-step codes.
            if !shard_updates.is_empty() {
                self.fleet
                    .send(machine, MachineMsg::ApplyUpdates(shard_updates.clone()));
            }
            updates.extend(shard_updates);
        }
        (updates, z_stats(cluster, n_submodels, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::topology::RingTopology;
    use parking_lot::Mutex;

    fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
        let base = n / p;
        (0..p)
            .map(|i| (i * base..(i + 1) * base).collect())
            .collect()
    }

    fn toggle_solve(machine: usize, shard: &[usize]) -> Vec<ZUpdate> {
        shard
            .iter()
            .filter(|&&n| n % 2 == 0)
            .map(|&n| ZUpdate {
                point: n,
                code: vec![machine as f64, n as f64],
            })
            .collect()
    }

    #[test]
    fn server_z_step_matches_sim() {
        let cost = CostModel::new(1.0, 10.0, 5.0);
        let cluster = SimCluster::new(shards(4, 40), cost);
        let (u_sim, s_sim) = SimBackend::new(cost).run_z_step(&cluster, 8, toggle_solve);
        let server = ServerBackend::new().with_cost_model(cost);
        let (u_srv, s_srv) = server.run_z_step(&cluster, 8, toggle_solve);
        assert_eq!(u_sim, u_srv, "server Z must be bitwise identical to sim");
        assert_eq!(s_sim.points_updated, s_srv.points_updated);
        assert_eq!(s_sim.timings.simulated, s_srv.timings.simulated);
    }

    #[test]
    fn server_z_updates_arrive_in_topology_order() {
        let mut cluster = SimCluster::new(shards(4, 16), CostModel::distributed());
        cluster.set_topology(RingTopology::from_order(vec![2, 0, 3, 1]));
        let backend = ServerBackend::new();
        let (updates, _) = backend.run_z_step(&cluster, 2, |machine, shard| {
            shard
                .iter()
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![machine as f64],
                })
                .collect()
        });
        let machine_order: Vec<usize> = updates
            .iter()
            .map(|u| u.code[0] as usize)
            .collect::<Vec<_>>()
            .chunks(4)
            .map(|c| c[0])
            .collect();
        assert_eq!(machine_order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn server_w_step_runs_the_full_protocol() {
        let cluster = SimCluster::new(shards(4, 40), CostModel::distributed());
        let backend = ServerBackend::new();
        let epochs = 3;
        let visits = Mutex::new(std::collections::HashMap::<(usize, usize), usize>::new());
        let (result, stats) = backend.run_w_step(
            &cluster,
            (0..6).collect::<Vec<usize>>(),
            epochs,
            1,
            |sub, machine, shard| {
                assert_eq!(shard.len(), 10);
                *visits.lock().entry((*sub, machine)).or_insert(0) += 1;
            },
            None,
        );
        assert_eq!(result, (0..6).collect::<Vec<_>>(), "original order kept");
        let visits = visits.lock();
        for sub in 0..6 {
            for machine in 0..4 {
                assert_eq!(
                    visits.get(&(sub, machine)),
                    Some(&epochs),
                    "({sub},{machine})"
                );
            }
        }
        assert_eq!(stats.update_visits, 6 * 4 * epochs);
        assert_eq!(stats.messages_sent, ring_hops(6, 4, epochs));
    }

    #[test]
    fn server_w_step_visits_machines_in_ring_order() {
        let mut cluster = SimCluster::new(shards(4, 8), CostModel::distributed());
        cluster.set_topology(RingTopology::from_order(vec![2, 0, 3, 1]));
        let seen = Mutex::new(Vec::new());
        let backend = ServerBackend::new();
        backend.run_w_step(
            &cluster,
            vec![(); 1],
            1,
            1,
            |_, machine, _| seen.lock().push(machine),
            None,
        );
        assert_eq!(*seen.lock(), vec![2, 0, 3, 1]);
    }

    #[test]
    fn server_w_step_empty_submodels_and_single_machine() {
        let cluster = SimCluster::new(shards(1, 10), CostModel::distributed());
        let backend = ServerBackend::new();
        let (empty, stats) =
            backend.run_w_step(&cluster, Vec::<u8>::new(), 1, 1, |_, _, _| {}, None);
        assert!(empty.is_empty());
        assert_eq!(stats.update_visits, 0);
        let (result, stats) =
            backend.run_w_step(&cluster, vec![0usize; 2], 2, 1, |sub, _, _| *sub += 1, None);
        assert_eq!(result, vec![2, 2]);
        assert_eq!(stats.update_visits, 4);
    }

    #[test]
    fn published_codes_are_served_and_match_single_process_knn() {
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(5, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        assert_eq!(router.n_machines(), 3);
        for k in [1usize, 7, 60] {
            assert_eq!(
                router.knn(&queries, k),
                parmac_retrieval::hamming_knn(&db, &queries, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn z_step_refreshes_the_served_codes() {
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        let initial = BinaryCodes::zeros(8, 2);
        backend.publish_codes(&cluster, &initial);
        let router = backend.query_router();
        // Flip point 5's code to (1, 1); a (1, 1) query must now rank it first.
        backend.run_z_step(&cluster, 1, |_, shard| {
            shard
                .iter()
                .filter(|&&n| n == 5)
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![1.0, 1.0],
                })
                .collect()
        });
        let q = BinaryCodes::from_bools(&[vec![true, true]]);
        assert_eq!(router.knn(&q, 1), vec![vec![5]]);
    }

    #[test]
    fn pre_faulted_envelopes_are_routed_around_the_dead_machine() {
        // Drive run_w_step with envelopes... the backend seeds fresh
        // envelopes, so exercise the routing at the protocol level instead: a
        // ring where one machine is never pending still trains the submodel on
        // the remaining machines (relay hops, no update). Machine 1 is taken
        // out of the ring (streaming removal) — the route must skip it without
        // panicking and without updating on it.
        let mut cluster = SimCluster::new(shards(3, 9), CostModel::distributed());
        cluster.remove_machine(1);
        let seen = Mutex::new(Vec::new());
        let backend = ServerBackend::new();
        let (result, stats) = backend.run_w_step(
            &cluster,
            vec![0usize; 2],
            2,
            1,
            |sub, machine, _| {
                *sub += 1;
                seen.lock().push(machine);
            },
            None,
        );
        assert_eq!(result, vec![4, 4], "2 epochs x 2 live machines");
        assert_eq!(stats.update_visits, 8);
        assert!(!seen.lock().contains(&1), "removed machine must not update");
    }

    #[test]
    fn mismatched_query_width_yields_empty_answers_not_a_dead_actor() {
        // Regression: a width-mismatched query used to panic inside the
        // detached serving actor, leaving every later call blocked forever.
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &BinaryCodes::zeros(8, 4));
        let router = backend.query_router();
        let wrong_width = BinaryCodes::from_bools(&[vec![true, false]]);
        assert_eq!(router.knn(&wrong_width, 3), vec![Vec::<usize>::new()]);
        // The fleet is still alive and serves well-formed queries.
        let ok = BinaryCodes::from_bools(&[vec![false, false, false, false]]);
        assert_eq!(router.knn(&ok, 1), vec![vec![0]]);
    }

    #[test]
    fn streamed_point_codes_are_served_incrementally() {
        // publish_point_codes must reach the (possibly brand-new) machine's
        // actor without a full fleet reload.
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &BinaryCodes::zeros(8, 2));
        let mut all = BinaryCodes::zeros(8, 2);
        all.push_code(&[1.0, 1.0]); // point 8 joins machine 2 (a new actor)
        backend.publish_point_codes(2, &[8], &all);
        let router = backend.query_router();
        assert_eq!(router.n_machines(), 3);
        let q = BinaryCodes::from_bools(&[vec![true, true]]);
        assert_eq!(router.knn(&q, 1), vec![vec![8]]);
    }

    #[test]
    fn router_on_an_empty_fleet_returns_empty_lists() {
        let backend = ServerBackend::new();
        let router = backend.query_router();
        let q = BinaryCodes::from_bools(&[vec![true, false]]);
        assert_eq!(router.knn(&q, 3), vec![Vec::<usize>::new()]);
        assert_eq!(router.n_machines(), 0);
    }

    #[test]
    fn knn_shared_does_not_copy_the_query_batch() {
        // The satellite regression: `knn` used to deep-clone the batch on
        // every call. The Arc-accepting entry must share the caller's
        // allocation across the fan-out and release it afterwards.
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        let backend = ServerBackend::new();
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(17);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(30, 8, 0.0, 1.0, &mut rng));
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            4, 8, 0.0, 1.0, &mut rng,
        )));
        let shared = router.knn_shared(&queries, 5);
        assert_eq!(shared, router.knn(&queries, 5));
        assert_eq!(shared, parmac_retrieval::hamming_knn(&db, &queries, 5));
        // Every fan-out clone has been released: the caller's Arc is unique
        // again, so no machine kept (or copied into) a private batch.
        assert_eq!(Arc::strong_count(&queries), 1);
    }

    #[test]
    fn scan_workers_do_not_change_answers() {
        // Query-partitioned multi-worker probing must stay bitwise identical
        // to the serial scan. MIN_QUERIES_PER_SCAN_TASK would keep a small
        // batch serial, so use a batch large enough to actually split.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let n = 3000;
        let batch = 3 * (MIN_QUERIES_PER_SCAN_TASK * 2);
        let mut rng = SmallRng::seed_from_u64(18);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(n, 16, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(batch, 16, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, n), CostModel::distributed());
        let reference = parmac_retrieval::hamming_knn(&db, &queries, 40);
        let shared = Arc::new(queries.clone());
        let mut budgeted_reference = None;
        for workers in [1usize, 3] {
            let backend = ServerBackend::new().with_scan_workers(workers);
            backend.publish_codes(&cluster, &db);
            let router = backend.query_router();
            assert_eq!(router.knn(&queries, 40), reference, "workers={workers}");
            // The split must also leave budgeted answers independent of the
            // worker count: probe order is per query, not per worker.
            let budgeted = router.knn_budgeted(&shared, 40, 1);
            let pinned = budgeted_reference.get_or_insert_with(|| budgeted.clone());
            assert_eq!(&budgeted, pinned, "budgeted, workers={workers}");
        }
    }

    #[test]
    fn budgeted_queries_saturate_to_the_exact_answer() {
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(23);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(240, 16, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 240), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            5, 16, 0.0, 1.0, &mut rng,
        )));
        let exact = parmac_retrieval::hamming_knn(&db, &queries, 9);
        // A budget covering every bucket (2^16 is a safe upper bound here)
        // must equal exact mode, both direct and through admission.
        assert_eq!(router.knn_budgeted(&queries, 9, 1 << 16), exact);
        assert_eq!(
            router
                .knn_admitted_budgeted(Arc::clone(&queries), 9, 1 << 16)
                .expect("admitted"),
            exact
        );
        // A small budget still returns well-formed sorted hit lists with at
        // most k entries, each a true database point.
        for answers in router.knn_budgeted(&queries, 9, 1) {
            assert!(answers.len() <= 9);
            for &id in &answers {
                assert!(id < db.len());
            }
        }
    }

    #[test]
    fn admitted_queries_match_direct_fanout_and_are_accounted() {
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(19);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            5, 12, 0.0, 1.0, &mut rng,
        )));
        for k in [1usize, 7, 60] {
            assert_eq!(
                router
                    .knn_admitted(Arc::clone(&queries), k)
                    .expect("admitted"),
                parmac_retrieval::hamming_knn(&db, &queries, k),
                "k={k}"
            );
        }
        let stats = router.serving_stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.answered, 3);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.submitted, stats.answered + stats.shed);
    }

    #[test]
    fn coalesced_submissions_with_different_k_get_their_own_topk() {
        // Force coalescing deterministically: saturate the admission loop
        // with a slow first batch is racy, so instead drive serve_coalesced
        // directly through the public API with many concurrent clients and
        // verify every answer against the single-process reference.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(20);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(90, 10, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 90), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let batches: Vec<(Arc<BinaryCodes>, usize)> = (0..12)
            .map(|i| {
                let q = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
                    1 + i % 3,
                    10,
                    0.0,
                    1.0,
                    &mut rng,
                )));
                (q, 1 + 7 * (i % 4))
            })
            .collect();
        thread::scope(|scope| {
            for (q, k) in &batches {
                let router = router.clone();
                let db = &db;
                scope.spawn(move || {
                    let got = router
                        .knn_admitted(Arc::clone(q), *k)
                        .expect("default queue is large enough");
                    assert_eq!(got, parmac_retrieval::hamming_knn(db, q, *k), "k={k}");
                });
            }
        });
        let stats = router.serving_stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.answered, 12);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn saturated_admission_queue_sheds_explicitly_and_accounts_every_query() {
        // Tiny queue + many concurrent clients: some submissions must be
        // shed with an explicit error; every answered one must be exact; and
        // the counters must balance (answered + shed == submitted).
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(21);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(80, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(4, 80), CostModel::distributed());
        let backend = ServerBackend::new().with_admission_config(AdmissionConfig {
            queue_capacity: 1,
            max_batch: 4,
        });
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            2, 12, 0.0, 1.0, &mut rng,
        )));
        let reference = parmac_retrieval::hamming_knn(&db, &queries, 9);
        let clients = 8usize;
        let per_client = 25usize;
        let (answered, shed) = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let router = router.clone();
                    let queries = Arc::clone(&queries);
                    let reference = &reference;
                    scope.spawn(move || {
                        let (mut ok, mut shed) = (0u64, 0u64);
                        for _ in 0..per_client {
                            match router.knn_admitted(Arc::clone(&queries), 9) {
                                Ok(answers) => {
                                    assert_eq!(&answers, reference, "answered must be exact");
                                    ok += 1;
                                }
                                Err(AdmissionError::Shed { queue_capacity }) => {
                                    assert_eq!(queue_capacity, 1);
                                    shed += 1;
                                }
                                Err(AdmissionError::Closed) => {
                                    panic!("admission loop died mid-test")
                                }
                            }
                        }
                        (ok, shed)
                    })
                })
                .collect();
            handles.into_iter().fold((0u64, 0u64), |acc, h| {
                let (ok, shed) = h.join().expect("client thread");
                (acc.0 + ok, acc.1 + shed)
            })
        });
        let stats = router.serving_stats();
        assert_eq!(stats.submitted, (clients * per_client) as u64);
        assert_eq!(stats.answered, answered);
        assert_eq!(stats.shed, shed);
        assert_eq!(
            stats.submitted,
            stats.answered + stats.shed,
            "every query accounted for: {stats:?}"
        );
        assert!(stats.batches >= 1);
    }

    #[test]
    fn admitted_path_on_an_empty_fleet_returns_empty_lists() {
        let backend = ServerBackend::new();
        let router = backend.query_router();
        let q = Arc::new(BinaryCodes::from_bools(&[vec![true, false]]));
        assert_eq!(
            router.knn_admitted(q, 3).expect("admitted"),
            vec![Vec::<usize>::new()]
        );
    }

    #[test]
    fn server_exposes_name_and_cost() {
        let backend = ServerBackend::new().with_cost_model(CostModel::shared_memory());
        assert_eq!(backend.name(), "server");
        assert_eq!(backend.cost_model(), CostModel::shared_memory());
        assert_eq!(
            ServerBackend::default().cost_model(),
            CostModel::distributed()
        );
    }
}
