//! Sharded-server backend: machines as long-lived actors that serve
//! **training and retrieval from the same processes**, with shard
//! replication, failover routing and health-tracked self-healing.
//!
//! ParMAC's data layout — every machine keeps its shard and its slice of the
//! auxiliary codes forever, only submodels move — is exactly the shape of a
//! serving fleet. [`ServerBackend`] exploits that: each machine is an actor
//! behind a typed crossbeam mailbox ([`MachineMsg`]), and the same machine
//! identity serves three kinds of traffic:
//!
//! * **W step** — [`SubmodelEnvelope`] hops around the ring. Routing is
//!   driven by the envelope's *own visit list* (`pending_machines`), not a
//!   hardcoded successor walk: a machine that is not on the list (it faulted
//!   out via [`SubmodelEnvelope::handle_fault`], or was already visited this
//!   epoch) relays the envelope unchanged towards the next pending machine.
//!   This is §4.3's general mechanism, and it is what lets streaming
//!   `add_machine`/`remove_machine` and fault recovery work mid-training.
//! * **Z step** — a [`ZStepRequest`]/reply exchange: each machine solves its
//!   own shard and answers with the changed codes ([`ZShardUpdates`]), which
//!   are applied in deterministic topology order — bitwise identical to
//!   [`SimBackend`](crate::backend::SimBackend).
//! * **Retrieval** — [`Query`]/[`QueryReply`]: the resident serving fleet
//!   owns a copy of each shard's binary codes and answers Hamming k-NN
//!   queries *while training runs*. [`QueryRouter`] fans a query batch out to
//!   the machines hosting the shards and merges the per-shard top-k
//!   ([`parmac_retrieval::merge_shard_topk`]) into exactly the answer a
//!   single-process [`hamming_knn`](parmac_retrieval::hamming_knn) over the
//!   concatenated shards would give.
//!
//! # Replication and failover
//!
//! A [`ReplicationConfig`] places each shard's codes on `replicas` distinct
//! machine actors. The same `LoadShard`/`ApplyUpdates` messages that keep a
//! single copy fresh through training publishes flow to *every* host of the
//! shard, so replicas stay bitwise identical. The router's fan-out
//! read-balances across live replicas (a rotating cursor) and **fails over**
//! to an alternate replica when a machine is dead (its mailbox is
//! disconnected — detected instantly) or wedged (no reply within
//! `replica_timeout`); the whole fan-out is bounded by `query_deadline`, so
//! a wedged actor can never hang a query. Consecutive failures mark a
//! machine dead in the health tracker; a dead machine is only tried as a
//! last resort, and any successful reply (or an explicit
//! [`ServerBackend::restore_machine`] probe) revives it.
//!
//! Every `knn`-family answer is **coverage-aware**: a [`KnnResponse`]
//! carries [`Coverage`] (shards answered / shards total), so a degraded
//! answer is explicit, never a silently shorter candidate list.
//!
//! Machine deaths wake a rebalancer that re-replicates under-replicated
//! shards onto the least-loaded live machines: the new host is told to
//! expect the shard (`ExpectReplica`), the assignment is recorded so
//! concurrent training publishes start flowing to it (stashed until the
//! snapshot lands), a live replica donates a snapshot (`FetchShard`), and
//! `InstallReplica` installs it and replays the stash. Because the trainer
//! publishes from a single thread and mailboxes are FIFO, the replayed
//! stream is a contiguous suffix of the update stream — stale re-applications
//! are always superseded, so a rebalanced replica converges to the same
//! bytes as its donor even when the copy races training.
//!
//! # Thread structure
//!
//! The *serving fleet* is genuinely long-lived: one detached thread per
//! machine, spawned on first [`publish_codes`] and kept until the backend is
//! dropped (the drop path is bounded: a wedged actor is abandoned after a
//! grace period, never joined forever). The *step protocol* runs on scoped
//! per-machine threads inside `run_w_step` / `run_z_step`. Both populations
//! share machine ids and shard layout — one process, training and serving
//! concurrently.
//!
//! Trained weights and codes are bitwise identical to every other backend:
//! submodels visit machines in the same order, and Z updates are collected
//! per shard and applied in topology order.
//!
//! [`publish_codes`]: crate::backend::ClusterBackend::publish_codes

use crate::backend::{z_stats, ClusterBackend, ZUpdate};
use crate::cost::{ring_hops, CostModel, StepTimings, WStepStats, ZStepStats};
use crate::envelope::SubmodelEnvelope;
use crate::sim::{Fault, SimCluster};
use crate::waits;
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use parmac_hash::BinaryCodes;
use parmac_retrieval::{merge_shard_topk, PrefixIndex};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Minimum queries per scan task: a batch only splits over scan workers when
/// every worker gets at least this many queries, so the dispatch overhead
/// stays well under the probe cost and small batches run serially on the
/// actor thread.
const MIN_QUERIES_PER_SCAN_TASK: usize = 4;

/// How long the drop/kill paths wait for an actor thread to exit before
/// abandoning it. A wedged actor (sleeping in a scan, or chaos-wedged) must
/// never block shutdown forever.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// How long a synchronous rebalance (`rebalance_once`) waits for the
/// rebalance actor to acknowledge its pass. A pass is internally bounded by
/// the replication config's timeouts, so this only trips when the fleet is
/// pathologically wedged — the caller then proceeds and the pass completes
/// asynchronously.
const REBALANCE_SYNC_GRACE: Duration = Duration::from_secs(10);

/// Default number of scan workers per serving actor: the host's parallelism,
/// capped so a many-machine fleet does not oversubscribe the box.
fn default_scan_workers() -> usize {
    thread::available_parallelism()
        .map_or(1, |w| w.get())
        .min(4)
}

/// Replication and failover knobs of the serving fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// How many distinct machines host each shard's codes (capped at the
    /// fleet size). 1 is the unreplicated layout: a dead machine degrades
    /// coverage until the trainer republishes.
    pub replicas: usize,
    /// How long one failover wave waits for a machine's reply before trying
    /// the next replica. A *dead* machine (disconnected mailbox) is detected
    /// instantly and never costs this wait; only a wedged-but-alive actor
    /// does.
    pub replica_timeout: Duration,
    /// Total budget of one fan-out across all failover waves: a query
    /// returns (possibly with degraded coverage) within this bound no matter
    /// how many machines are wedged.
    pub query_deadline: Duration,
    /// Consecutive failures (timeouts on a fan-out wave, or a failed probe)
    /// after which a machine is marked dead. Dead machines are skipped by
    /// read-balancing (tried only as a last resort) and trigger the
    /// rebalancer.
    pub failure_threshold: u32,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicas: 1,
            replica_timeout: Duration::from_millis(250),
            query_deadline: Duration::from_secs(2),
            failure_threshold: 2,
        }
    }
}

/// How much of the fleet answered one fan-out: `shards_answered` of
/// `shards_total` resident shards contributed their top-k to the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shards that contributed an answer.
    pub shards_answered: usize,
    /// Shards the fleet holds (the denominator of the coverage contract).
    pub shards_total: usize,
}

impl Coverage {
    /// `true` when every resident shard answered — the result is exactly the
    /// single-process answer. Vacuously `true` on an empty fleet.
    pub fn is_full(&self) -> bool {
        self.shards_answered == self.shards_total
    }

    /// Answered fraction in `[0, 1]` (1.0 on an empty fleet).
    pub fn fraction(&self) -> f64 {
        if self.shards_total == 0 {
            1.0
        } else {
            self.shards_answered as f64 / self.shards_total as f64
        }
    }
}

/// A coverage-aware k-NN answer: the per-query neighbour lists plus how much
/// of the fleet produced them. A degraded answer (machines down past the
/// replication factor) is explicit — callers that require exactness gate on
/// [`Coverage::is_full`] or use [`expect_full`](Self::expect_full).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnnResponse {
    /// Per query: the merged global top-k over every answering shard.
    pub answers: Vec<Vec<usize>>,
    /// How many shards answered.
    pub coverage: Coverage,
}

impl KnnResponse {
    /// The answers, asserting full coverage.
    ///
    /// # Panics
    ///
    /// Panics if the answer is degraded (some shard did not answer).
    pub fn expect_full(self) -> Vec<Vec<usize>> {
        assert!(
            self.coverage.is_full(),
            "degraded k-NN answer: coverage {}/{}",
            self.coverage.shards_answered,
            self.coverage.shards_total
        );
        self.answers
    }

    /// `true` when at least one resident shard did not answer.
    pub fn is_degraded(&self) -> bool {
        !self.coverage.is_full()
    }
}

/// A Hamming k-NN query fanned out to machines hosting the requested shards.
///
/// The wire-serialisable request payload is [`wire`](crate::wire)'s
/// `WireQuery`; in-process the query carries its reply channel.
pub struct Query {
    /// The query codes (shared across the fan-out, one allocation total).
    pub queries: Arc<BinaryCodes>,
    /// Which resident shards this machine should answer for. Shards it does
    /// not host come back in [`QueryReply::missing`] so the router can retry
    /// them on another replica.
    pub shards: Vec<usize>,
    /// How many neighbours each shard should return (its shard top-k).
    pub k: usize,
    /// Per-query probe budget for the machine's prefix index: `None` is
    /// exact mode, `Some(b)` stops each query after `b` non-empty buckets
    /// (see [`PrefixIndex::topk_batched`]).
    pub probes: Option<usize>,
    /// Where the machine sends its [`QueryReply`].
    pub reply: Sender<QueryReply>,
}

/// One shard's per-query hit lists: ascending `(Hamming distance, global
/// point index)` pairs, at most `k` per query.
pub type ShardHits = Vec<Vec<(u32, usize)>>;

/// One machine's answer to a [`Query`]: per requested shard, either that
/// shard's top-k per query or a "not resident here" marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// The answering machine (the replica identity).
    pub machine: usize,
    /// Per answered shard: `(shard id, per-query hits)`.
    pub answered: Vec<(usize, ShardHits)>,
    /// Requested shards this machine does not host (the router retries them
    /// on an alternate replica).
    pub missing: Vec<usize>,
}

/// A Z-step work order: "solve your shard, reply with the changed codes".
pub struct ZStepRequest {
    /// Where the machine sends its [`ZShardUpdates`].
    pub reply: Sender<ZShardUpdates>,
}

/// One machine's answer to a [`ZStepRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZShardUpdates {
    /// The machine whose shard was solved.
    pub machine: usize,
    /// The changed codes, in shard order.
    pub updates: Vec<ZUpdate>,
}

/// The typed mailbox protocol of a ParMAC server machine. `S` is the
/// circulating submodel type (the serving fleet instantiates it at `()`).
// lint: wire-protocol — every variant must be codec'd, declared tag-only,
// or explicitly local-only (checked by the wire-symmetry pass).
pub enum MachineMsg<S> {
    /// W step: a submodel envelope hopping the ring. The step protocol runs
    /// on scoped in-process actors (the serving loop ignores it), so the
    /// envelope never crosses the serving wire.
    // lint: local-only — scoped step protocol, not a serving-wire message
    Envelope(SubmodelEnvelope<S>),
    /// Z step: solve the local shard and reply. Same scoped step protocol
    /// as `Envelope`; the reply channel is in-process.
    // lint: local-only — scoped step protocol, not a serving-wire message
    ZStepRequest(ZStepRequest),
    /// Retrieval: answer a Hamming k-NN query from the requested shards.
    /// Crosses the wire as [`WireQuery`](crate::wire::WireQuery); the reply
    /// channel is transport-level routing.
    // lint: wire(WireQuery)
    Query(Query),
    /// Authoritatively (re)place one shard's codes on this machine. Clears
    /// any pending replica-installation state for the shard.
    LoadShard {
        /// The shard being placed.
        shard: usize,
        /// Global indices of the points in the shard.
        points: Vec<usize>,
        /// Their binary codes, one row per point, in `points` order.
        codes: BinaryCodes,
        /// The publish-sequence stamp (see `Fleet::publish_seq`). An actor
        /// ignores a `LoadShard` older than the shard data it already holds.
        seq: u64,
    },
    /// Rebalancer: a replica snapshot fetched from a live donor. Installs it
    /// and replays updates stashed since the matching `ExpectReplica`.
    InstallReplica {
        /// The shard being installed.
        shard: usize,
        /// Global indices of the points in the snapshot.
        points: Vec<usize>,
        /// Their binary codes, in `points` order.
        codes: BinaryCodes,
        /// The publish seq of the donor data the snapshot captured. An
        /// install that raced a newer authoritative `LoadShard` is ignored
        /// — ordering, not a publish-wide lock, keeps donors from
        /// overwriting fresher publishes.
        seq: u64,
    },
    /// Rebalancer: this machine is about to receive `InstallReplica` for the
    /// shard; stash (do not apply) updates for it until the snapshot lands.
    ExpectReplica {
        /// The shard to expect.
        shard: usize,
    },
    /// Stop hosting a shard (over-replication trim, or a cancelled install).
    DropShard {
        /// The shard to drop.
        shard: usize,
    },
    /// Apply incremental Z-step code updates to one hosted shard.
    ApplyUpdates {
        /// The shard the updates belong to.
        shard: usize,
        /// The changed codes.
        updates: Vec<ZUpdate>,
    },
    /// Rebalancer: reply with a snapshot of one hosted shard (`None` if not
    /// hosted), so it can be installed on an under-replicated peer.
    // lint: wire(tag-only) — a shard id; the reply channel is routing
    FetchShard {
        /// The shard to snapshot.
        shard: usize,
        /// Where to send the `(points, codes, seq)` snapshot — `seq` is the
        /// publish stamp of the donated data.
        reply: Sender<Option<(Vec<usize>, BinaryCodes, u64)>>,
    },
    /// Health probe: reply with the machine id.
    // lint: wire(tag-only) — a bare probe; the reply channel is routing
    Ping {
        /// Where to send the pong.
        reply: Sender<usize>,
    },
    /// Chaos: block the actor thread for the duration (simulates a wedged —
    /// alive but unresponsive — machine).
    // lint: local-only — chaos-harness control, never crosses a wire
    Wedge(Duration),
    /// Stop the actor.
    Shutdown,
}

/// One chunk's scan result: `(chunk index, per-query top-k hits)`.
type ChunkHits = (usize, Vec<Vec<(u32, usize)>>);

/// A scan work order for one persistent scan worker: probe the index
/// snapshot for the queries in `q_rows` and send that chunk's per-query
/// top-k back.
struct ScanTask {
    index: Arc<PrefixIndex>,
    queries: Arc<BinaryCodes>,
    q_rows: std::ops::Range<usize>,
    k: usize,
    probes: Option<usize>,
    chunk: usize,
    reply: Sender<ChunkHits>,
}

/// The persistent scan workers owned by one serving actor — a real pool, not
/// per-query thread spawns: each worker is a long-lived thread draining its
/// own task channel, so a query batch pays only channel sends.
struct ScanPool {
    txs: Vec<Sender<ScanTask>>,
    threads: Vec<JoinHandle<()>>,
}

impl ScanPool {
    fn new(machine: usize, workers: usize) -> Self {
        let mut txs = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<ScanTask>();
            // lint: actor-region — scan workers are detached serving threads
            let spawned = thread::Builder::new()
                .name(format!("parmac-scan-{machine}-{w}"))
                .spawn(move || {
                    while let Ok(task) = waits::recv_bounded(&rx, waits::IDLE_TICK) {
                        let hits = task.index.topk_batched_range(
                            &task.queries,
                            task.q_rows.clone(),
                            task.k,
                            task.probes,
                        );
                        let reply = task.reply.clone();
                        let chunk = task.chunk;
                        // Drop the task (and its query/index Arcs) before
                        // replying, so batch ownership reverts to the caller.
                        drop(task);
                        let _ = reply.send((chunk, hits));
                    }
                });
            // lint: end-actor-region
            match spawned {
                Ok(thread) => {
                    txs.push(tx);
                    threads.push(thread);
                }
                // Spawn failure (thread exhaustion) degrades the pool rather
                // than panicking the serving actor: `scan_index` falls back
                // to scanning on the actor thread when the pool is short.
                Err(_) => break,
            }
        }
        ScanPool { txs, threads }
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        self.txs.clear();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// One hosted replica of a shard: the multi-probe index the actor serves
/// from, plus the materialised `(points, codes)` pair so the shard can be
/// donated to an under-replicated peer (`FetchShard`) without reverse-
/// engineering the index. `row_of` maps global point id → row, so an update
/// to an existing point rewrites its row instead of appending.
struct ReplicaShard {
    points: Vec<usize>,
    codes: BinaryCodes,
    row_of: HashMap<usize, usize>,
    index: Arc<PrefixIndex>,
    /// Publish stamp of the authoritative data this replica derives from
    /// (0 = created by the streaming path, before any full publish).
    seq: u64,
}

impl ReplicaShard {
    // lint: actor-region — replica maintenance runs on serving-actor threads
    fn build(points: Vec<usize>, codes: BinaryCodes, seq: u64) -> Self {
        let index = Arc::new(PrefixIndex::build(&codes, &points));
        let row_of = points.iter().enumerate().map(|(r, &p)| (p, r)).collect();
        ReplicaShard {
            points,
            codes,
            row_of,
            index,
            seq,
        }
    }

    fn apply(&mut self, update: &ZUpdate) {
        match self.row_of.get(&update.point) {
            Some(&row) => self.codes.set_code(row, &update.code),
            None => {
                self.row_of.insert(update.point, self.points.len());
                self.points.push(update.point);
                self.codes.push_code(&update.code);
            }
        }
        // Same-prefix updates rewrite their bucket row; bucket-moving ones
        // ride the index's delta region until it recompacts, so a Z step
        // costs per-update work, not a rebuild. `make_mut` copies only in
        // the brief window where a scan worker still holds a snapshot.
        Arc::make_mut(&mut self.index).upsert(update.point, &update.code);
    }
    // lint: end-actor-region
}

/// State owned by one long-lived serving actor: every shard replica this
/// machine hosts, plus the replica-installation protocol state — shards it
/// has been told to *expect* (`ExpectReplica` arrived, snapshot still in
/// flight) and the updates stashed for them. Mailbox FIFO plus the
/// single-threaded publisher make the stash a contiguous suffix of the
/// update stream, so replaying it over the installed snapshot converges to
/// the donor's bytes.
struct MachineState {
    machine: usize,
    shards: BTreeMap<usize, ReplicaShard>,
    expecting: BTreeSet<usize>,
    pending: BTreeMap<usize, Vec<ZUpdate>>,
    /// How many scan workers split this machine's query batches (1 = serial).
    scan_workers: usize,
    /// Lazily spawned persistent workers (`scan_workers - 1` threads; the
    /// actor itself scans chunk 0).
    pool: Option<ScanPool>,
}

impl MachineState {
    // lint: actor-region — every method below runs on a serving-actor thread
    fn install(&mut self, shard: usize, points: Vec<usize>, codes: BinaryCodes, seq: u64) {
        // A newer authoritative publish already landed: the snapshot is
        // stale, and installing it would roll the shard back. The install
        // attempt is over either way, so drop its protocol state too.
        if self.shards.get(&shard).is_some_and(|r| r.seq > seq) {
            self.expecting.remove(&shard);
            self.pending.remove(&shard);
            return;
        }
        let mut replica = ReplicaShard::build(points, codes, seq);
        if let Some(stash) = self.pending.remove(&shard) {
            // Replay updates that raced the snapshot fetch. Stale
            // re-applications (updates the donor already folded into the
            // snapshot) are idempotent overwrites.
            for update in &stash {
                replica.apply(update);
            }
        }
        self.expecting.remove(&shard);
        self.shards.insert(shard, replica);
    }

    fn apply_updates(&mut self, shard: usize, updates: Vec<ZUpdate>) {
        if let Some(replica) = self.shards.get_mut(&shard) {
            for update in &updates {
                replica.apply(update);
            }
        } else if self.expecting.contains(&shard) {
            self.pending.entry(shard).or_default().extend(updates);
        } else {
            // Legacy incremental path: updates to a shard this machine never
            // loaded create it from scratch (streaming `publish_point_codes`
            // to a brand-new machine).
            let width = updates.first().map_or(1, |u| u.code.len().max(1));
            let mut replica = ReplicaShard::build(Vec::new(), BinaryCodes::zeros(0, width), 0);
            for update in &updates {
                replica.apply(update);
            }
            self.shards.insert(shard, replica);
        }
    }

    fn answer(&mut self, query: &Query) -> QueryReply {
        let mut answered = Vec::new();
        let mut missing = Vec::new();
        for &shard in &query.shards {
            // Tolerate malformed queries (width mismatch, k = 0) with an
            // empty answer instead of panicking: a panic here would kill the
            // detached actor and leave the router failing over for nothing.
            // A resident-but-unservable shard counts as *answered* (empty),
            // never missing: its replicas are identical, so retrying
            // elsewhere cannot do better.
            match self.shards.get(&shard) {
                Some(replica) => {
                    let servable = !replica.index.is_empty()
                        && query.k > 0
                        && replica.index.n_bits() == query.queries.n_bits();
                    let hits = if servable {
                        let index = Arc::clone(&replica.index);
                        scan_index(
                            &index,
                            self.machine,
                            self.scan_workers,
                            &mut self.pool,
                            &query.queries,
                            query.k,
                            query.probes,
                        )
                    } else {
                        vec![Vec::new(); query.queries.len()]
                    };
                    answered.push((shard, hits));
                }
                None => missing.push(shard),
            }
        }
        QueryReply {
            machine: self.machine,
            answered,
            missing,
        }
    }
    // lint: end-actor-region
}

/// The shard's batched top-k, split over this machine's scan workers: each
/// worker probes the shared index snapshot for a contiguous sub-range of the
/// query *batch*, so concatenating the chunks in order is exactly the
/// whole-batch answer (per-query probing is independent — no merge needed).
/// Each worker keeps at least [`MIN_QUERIES_PER_SCAN_TASK`] queries — small
/// batches probe serially on the actor thread regardless of the worker
/// count.
fn scan_index(
    index: &Arc<PrefixIndex>,
    machine: usize,
    scan_workers: usize,
    pool: &mut Option<ScanPool>,
    queries: &Arc<BinaryCodes>,
    k: usize,
    probes: Option<usize>,
) -> Vec<Vec<(u32, usize)>> {
    let batch = queries.len();
    let max_useful = (batch / MIN_QUERIES_PER_SCAN_TASK).max(1);
    let workers = scan_workers.min(max_useful).max(1);
    if workers == 1 {
        return index.topk_batched(queries, k, probes);
    }
    let pool = pool.get_or_insert_with(|| {
        // Sized once for the configured maximum; smaller scans simply use
        // a prefix of the workers.
        ScanPool::new(machine, scan_workers - 1)
    });
    // lint: actor-region — runs on the serving-actor thread; must not panic
    // The pool may be short if worker spawns failed: cap the split to the
    // workers that actually exist (plus the actor thread itself).
    let workers = workers.min(pool.txs.len() + 1);
    if workers == 1 {
        return index.topk_batched(queries, k, probes);
    }
    let chunk_len = batch.div_ceil(workers);
    let (reply_tx, reply_rx) = unbounded();
    let mut outstanding = 0usize;
    let mut per_chunk: Vec<Option<ShardHits>> = vec![None; workers];
    for c in 1..workers {
        let lo = (c * chunk_len).min(batch);
        let hi = ((c + 1) * chunk_len).min(batch);
        let task = ScanTask {
            index: Arc::clone(index),
            queries: Arc::clone(queries),
            q_rows: lo..hi,
            k,
            probes,
            chunk: c,
            reply: reply_tx.clone(),
        };
        if pool.txs[c - 1].send(task).is_ok() {
            outstanding += 1;
        }
        // A dead worker (channel closed) is recovered below: its chunk is
        // simply scanned on the actor thread like a missing reply.
    }
    drop(reply_tx);
    // The actor probes chunk 0 itself while the workers probe the rest.
    per_chunk[0] = Some(index.topk_batched_range(queries, 0..chunk_len.min(batch), k, probes));
    while outstanding > 0 {
        match reply_rx.recv_timeout(waits::IDLE_TICK) {
            Ok((chunk, hits)) => {
                per_chunk[chunk] = Some(hits);
                outstanding -= 1;
            }
            Err(RecvTimeoutError::Timeout) => continue,
            // Remaining workers died mid-scan: their reply senders are gone;
            // fall through and rescan the missing chunks locally.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    per_chunk
        .into_iter()
        .enumerate()
        .flat_map(|(c, hits)| {
            hits.unwrap_or_else(|| {
                let lo = (c * chunk_len).min(batch);
                let hi = ((c + 1) * chunk_len).min(batch);
                index.topk_batched_range(queries, lo..hi, k, probes)
            })
        })
        .collect()
    // lint: end-actor-region
}

/// The long-lived serving actor loop: retrieval, shard placement and the
/// replica-installation protocol until `Shutdown`. Step messages never reach
/// this loop (the step protocol runs on the scoped per-step actors), so they
/// are ignored defensively.
fn serving_actor(machine: usize, rx: Receiver<MachineMsg<()>>, scan_workers: usize) {
    let mut state = MachineState {
        machine,
        shards: BTreeMap::new(),
        expecting: BTreeSet::new(),
        pending: BTreeMap::new(),
        scan_workers,
        pool: None,
    };
    while let Ok(msg) = waits::recv_bounded(&rx, waits::IDLE_TICK) {
        match msg {
            MachineMsg::Query(query) => {
                let reply = query.reply.clone();
                let answer = state.answer(&query);
                // Release the shared query batch before replying so the
                // router's caller sees its Arc unique again on return.
                drop(query);
                let _ = reply.send(answer);
            }
            MachineMsg::LoadShard {
                shard,
                points,
                codes,
                seq,
            } => {
                // Authoritative for its seq: a load that raced a newer
                // publish must not roll the shard back.
                if state.shards.get(&shard).is_none_or(|r| r.seq <= seq) {
                    // Discard any in-flight install state.
                    state.pending.remove(&shard);
                    state.expecting.remove(&shard);
                    state
                        .shards
                        .insert(shard, ReplicaShard::build(points, codes, seq));
                }
            }
            MachineMsg::InstallReplica {
                shard,
                points,
                codes,
                seq,
            } => state.install(shard, points, codes, seq),
            MachineMsg::ExpectReplica { shard } => {
                if !state.shards.contains_key(&shard) {
                    state.expecting.insert(shard);
                }
            }
            MachineMsg::DropShard { shard } => {
                state.shards.remove(&shard);
                state.expecting.remove(&shard);
                state.pending.remove(&shard);
            }
            MachineMsg::ApplyUpdates { shard, updates } => state.apply_updates(shard, updates),
            MachineMsg::FetchShard { shard, reply } => {
                let snapshot = state
                    .shards
                    .get(&shard)
                    .map(|r| (r.points.clone(), r.codes.clone(), r.seq));
                let _ = reply.send(snapshot);
            }
            MachineMsg::Ping { reply } => {
                let _ = reply.send(machine);
            }
            MachineMsg::Wedge(duration) => thread::sleep(duration),
            MachineMsg::Shutdown => break,
            MachineMsg::Envelope(_) | MachineMsg::ZStepRequest(_) => {}
        }
    }
}

struct MachineHandle {
    tx: Sender<MachineMsg<()>>,
    thread: Option<JoinHandle<()>>,
}

/// One trigger for the rebalance actor. `ack` carries the synchronous
/// callers (`rebalance_once`): the actor signals it after the pass that
/// served the trigger completes.
struct RebalanceCmd {
    ack: Option<Sender<()>>,
}

/// The lazily spawned rebalance actor: its mailbox plus the join handle the
/// fleet uses for bounded shutdown.
struct RebalanceHandle {
    tx: Sender<RebalanceCmd>,
    thread: Option<JoinHandle<()>>,
}

/// The self-healing rebalance actor loop: every pass runs on this one
/// long-lived thread, so passes are serialised by construction — no mutex
/// is held across the snapshot fetches and installs a pass performs.
/// Triggers that arrive while a pass runs coalesce into the next pass (each
/// keeps its ack). Holds only a weak fleet reference, so it can never keep
/// a dropped backend's fleet alive; it exits when the fleet is gone or
/// every trigger sender has been dropped.
fn rebalance_actor(fleet: &Weak<Fleet>, rx: &Receiver<RebalanceCmd>) {
    while let Ok(first) = waits::recv_bounded(rx, waits::IDLE_TICK) {
        let mut acks = Vec::new();
        let mut next = Some(first);
        while let Some(cmd) = next {
            if let Some(ack) = cmd.ack {
                acks.push(ack);
            }
            next = rx.try_recv().ok();
        }
        let Some(fleet) = fleet.upgrade() else { return };
        fleet.rebalance_pass();
        // The pass may have upgraded the last reference; dropping it here
        // runs `Fleet::drop` on this very thread, which is why that drop
        // never joins the rebalance thread from itself.
        drop(fleet);
        for ack in acks {
            let _ = ack.send(());
        }
    }
}

/// Per-machine health as seen by the router's failover path.
#[derive(Debug, Clone, Copy, Default)]
struct MachineHealth {
    consecutive_failures: u32,
    dead: bool,
}

/// A snapshot of the fleet's replication health (see
/// [`ServerBackend::fleet_status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// The configured replication factor.
    pub target_replicas: usize,
    /// Machines with a live (not dead-marked) actor.
    pub live_machines: usize,
    /// Machines marked dead by the health tracker (killed, or past the
    /// failure threshold).
    pub dead_machines: usize,
    /// Resident shards (the coverage denominator).
    pub shards: usize,
    /// Shards with fewer live hosts than `min(target_replicas,
    /// live_machines)` — what the rebalancer works through.
    pub under_replicated: Vec<usize>,
}

impl FleetStatus {
    /// `true` once every shard has its target number of live replicas.
    pub fn is_fully_replicated(&self) -> bool {
        self.under_replicated.is_empty()
    }
}

/// Joins a finished actor thread, abandoning it after `grace` if it is
/// wedged. Returns `true` if the thread actually exited.
fn join_bounded(thread: JoinHandle<()>, grace: Duration) -> bool {
    let deadline = Instant::now() + grace;
    while Instant::now() < deadline {
        if thread.is_finished() {
            let _ = thread.join();
            return true;
        }
        thread::sleep(Duration::from_millis(2));
    }
    // Abandon: the thread keeps running detached until its mailbox
    // disconnects (all senders dropped) and it drains to Shutdown.
    false
}

/// The resident machine fleet: one long-lived actor per machine, shared by
/// the backend and every [`QueryRouter`] cloned from it, plus the
/// replication state — which machines host which shard, per-machine health,
/// and the failover/degraded counters.
///
/// Lock order (outer to inner): `assignments` → `machines` → `health`.
/// Most paths take one lock at a time, and no lock is ever held across a
/// blocking channel operation.
struct Fleet {
    machines: Mutex<BTreeMap<usize, MachineHandle>>,
    /// Scan workers per serving actor, captured when each actor spawns.
    scan_workers: AtomicUsize,
    replication: Mutex<ReplicationConfig>,
    /// shard → hosting machines. The publisher reads this to fan updates to
    /// every replica; the router reads it to plan fan-outs.
    assignments: Mutex<BTreeMap<usize, Vec<usize>>>,
    health: Mutex<BTreeMap<usize, MachineHealth>>,
    /// The lazily spawned self-healing rebalance actor. Passes run only on
    /// its thread, which serialises them by construction; the lock guards
    /// only the handle, never a pass.
    rebalancer: Mutex<Option<RebalanceHandle>>,
    /// Publish-sequence clock. Every `publish_codes` pass stamps its
    /// `LoadShard`s with the next value; replica snapshots inherit the seq
    /// of the data they captured, so an actor can reject an install that
    /// raced a newer authoritative publish — ordering replaces the old
    /// publish-vs-rebalance mutex.
    publish_seq: AtomicU64,
    /// Read-balancing cursor: successive fan-outs rotate which replica of a
    /// shard is tried first.
    rr: AtomicUsize,
    /// Shard attempts that were retried on an alternate replica.
    failovers: AtomicU64,
    /// Fan-outs that returned with partial coverage.
    degraded: AtomicU64,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet {
            machines: Mutex::new(BTreeMap::new()),
            scan_workers: AtomicUsize::new(default_scan_workers()),
            replication: Mutex::new(ReplicationConfig::default()),
            assignments: Mutex::new(BTreeMap::new()),
            health: Mutex::new(BTreeMap::new()),
            rebalancer: Mutex::new(None),
            publish_seq: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }
}

impl Fleet {
    /// Sends `msg` to `machine`, spawning its actor on first contact. Only
    /// the *publish* paths use this: an authoritative `LoadShard` (or the
    /// legacy streaming path) legitimately brings a machine into existence.
    fn send_spawning(&self, machine: usize, msg: MachineMsg<()>) {
        // Clone the mailbox sender inside the guard scope, send after: an
        // actor blocked on a full downstream channel must never be able to
        // wedge a thread that is holding the machine-table lock.
        let tx = {
            let mut map = self.machines.lock();
            let scan_workers = self.scan_workers.load(Ordering::Relaxed);
            map.entry(machine)
                .or_insert_with(|| spawn_actor(machine, scan_workers))
                .tx
                .clone()
        };
        let _ = tx.send(msg);
    }

    /// Sends `msg` to `machine` only if its actor exists. The query/update
    /// fan-outs use this: a killed machine must *not* be resurrected as an
    /// empty actor that would serve partial shards as complete.
    fn send_if_resident(&self, machine: usize, msg: MachineMsg<()>) -> Result<(), ()> {
        // Same guard discipline as `send_spawning`: never send while holding
        // the machine-table lock.
        let tx = {
            let map = self.machines.lock();
            map.get(&machine).map(|handle| handle.tx.clone())
        };
        match tx {
            Some(tx) => tx.send(msg).map_err(|_| ()),
            None => Err(()),
        }
    }

    fn n_machines(&self) -> usize {
        self.machines.lock().len()
    }

    // ---- health tracking ----

    /// Records one failed interaction. Returns `true` if this crossed the
    /// failure threshold and newly marked the machine dead.
    fn record_failure(&self, machine: usize) -> bool {
        let threshold = self.replication.lock().failure_threshold;
        let mut health = self.health.lock();
        let entry = health.entry(machine).or_default();
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        if !entry.dead && entry.consecutive_failures >= threshold {
            entry.dead = true;
            true
        } else {
            false
        }
    }

    /// Records a successful interaction: clears the failure streak and
    /// revives a dead-marked machine (probe-based recovery — a wedged actor
    /// that answers again is live again).
    fn record_success(&self, machine: usize) {
        let mut health = self.health.lock();
        let entry = health.entry(machine).or_default();
        entry.consecutive_failures = 0;
        entry.dead = false;
    }

    fn mark_dead(&self, machine: usize) {
        let threshold = self.replication.lock().failure_threshold;
        let mut health = self.health.lock();
        let entry = health.entry(machine).or_default();
        entry.consecutive_failures = threshold;
        entry.dead = true;
    }

    fn dead_set(&self) -> BTreeSet<usize> {
        self.health
            .lock()
            .iter()
            .filter(|(_, h)| h.dead)
            .map(|(&m, _)| m)
            .collect()
    }

    /// Machines with a resident actor that are not dead-marked.
    fn live_set(&self) -> BTreeSet<usize> {
        let with_handle: BTreeSet<usize> = self.machines.lock().keys().copied().collect();
        let dead = self.dead_set();
        with_handle.difference(&dead).copied().collect()
    }

    // ---- replication plumbing ----

    /// Fans one shard's incremental updates to every host of the shard. If
    /// the shard has no assignment yet (legacy streaming to a brand-new
    /// machine), the shard's namesake machine becomes its first host.
    fn publish_shard_updates(&self, shard: usize, mut updates: Vec<ZUpdate>) {
        let (hosts, fresh) = {
            let mut assignments = self.assignments.lock();
            match assignments.get(&shard) {
                Some(hosts) => (hosts.clone(), false),
                None => {
                    assignments.insert(shard, vec![shard]);
                    (vec![shard], true)
                }
            }
        };
        for (i, &host) in hosts.iter().enumerate() {
            let payload = if i + 1 == hosts.len() {
                std::mem::take(&mut updates)
            } else {
                updates.clone()
            };
            let msg = MachineMsg::ApplyUpdates {
                shard,
                updates: payload,
            };
            if fresh {
                // The legacy streaming path may be creating this machine.
                self.send_spawning(host, msg);
            } else {
                let _ = self.send_if_resident(host, msg);
            }
        }
    }

    /// Computes the fleet's replication status snapshot.
    fn status(&self) -> FleetStatus {
        let target_replicas = self.replication.lock().replicas;
        let live = self.live_set();
        let dead = self.dead_set();
        let assignments = self.assignments.lock().clone();
        let under_replicated = assignments
            .iter()
            .filter(|(_, hosts)| {
                let live_hosts = hosts.iter().filter(|h| live.contains(h)).count();
                live_hosts < target_replicas.min(live.len())
            })
            .map(|(&shard, _)| shard)
            .collect();
        FleetStatus {
            target_replicas,
            live_machines: live.len(),
            dead_machines: dead.len(),
            shards: assignments.len(),
            under_replicated,
        }
    }

    /// The rebalance actor's mailbox, spawning the actor on first use. The
    /// thread holds only a weak reference, so it cannot keep a dropped
    /// backend's fleet alive indefinitely.
    fn rebalance_tx(self: &Arc<Self>) -> Sender<RebalanceCmd> {
        let mut guard = self.rebalancer.lock();
        let handle = guard.get_or_insert_with(|| {
            let weak = Arc::downgrade(self);
            let (tx, rx) = unbounded();
            let thread = thread::Builder::new()
                .name("parmac-rebalance".into())
                .spawn(move || rebalance_actor(&weak, &rx))
                .ok();
            RebalanceHandle { tx, thread }
        });
        handle.tx.clone()
    }

    /// Wakes the self-healing rebalancer (fire-and-forget). Back-to-back
    /// notifications coalesce into a single pass on the rebalance actor.
    fn notify_rebalance(self: &Arc<Self>) {
        let _ = self.rebalance_tx().send(RebalanceCmd { ack: None });
    }

    /// One synchronous rebalancing pass: triggers the rebalance actor and
    /// waits (bounded) for it to acknowledge a pass that started after this
    /// call. If the fleet is badly wedged the wait gives up — the pass
    /// still happens, just asynchronously.
    fn rebalance_once(self: &Arc<Self>) {
        let (ack_tx, ack_rx) = unbounded();
        let _ = self.rebalance_tx().send(RebalanceCmd { ack: Some(ack_tx) });
        let _ = ack_rx.recv_timeout(REBALANCE_SYNC_GRACE);
    }

    // lint: actor-region — the rebalancer runs on the dedicated rebalance
    // actor thread; a panic here silently stops self-healing.

    /// One rebalancing pass: prune hosts whose actor is gone, re-replicate
    /// every under-replicated shard from a live donor onto the least-loaded
    /// live machine, and trim over-replicated shards. Runs only on the
    /// rebalance actor thread, which serialises passes against each other;
    /// racing a publish is safe because installs are seq-ordered (see
    /// `Fleet::publish_seq`).
    fn rebalance_pass(self: &Arc<Self>) {
        let config = *self.replication.lock();
        let shard_list: Vec<usize> = self.assignments.lock().keys().copied().collect();
        for shard in shard_list {
            self.rebalance_shard(shard, &config);
        }
    }

    fn rebalance_shard(self: &Arc<Self>, shard: usize, config: &ReplicationConfig) {
        // Prune hosts whose actor no longer exists (killed machines were
        // already purged, but a failed install can leave strays).
        let with_handle: BTreeSet<usize> = self.machines.lock().keys().copied().collect();
        {
            let mut assignments = self.assignments.lock();
            if let Some(hosts) = assignments.get_mut(&shard) {
                hosts.retain(|h| with_handle.contains(h));
            }
        }
        loop {
            let live = self.live_set();
            let target = config.replicas.min(live.len());
            let hosts = self
                .assignments
                .lock()
                .get(&shard)
                .cloned()
                .unwrap_or_default();
            let live_hosts = hosts.iter().filter(|h| live.contains(h)).count();
            if hosts.len() > target.max(live_hosts) {
                // Over-replicated: drop a dead-marked host first, else the
                // most recently added one.
                // `hosts` cannot be empty in this branch (its length exceeds
                // a non-negative target), but never panic the rebalancer on
                // it — a missing victim just ends the trim.
                let victim = hosts
                    .iter()
                    .copied()
                    .find(|h| !live.contains(h))
                    .or_else(|| hosts.last().copied());
                let Some(victim) = victim else { return };
                if let Some(hosts) = self.assignments.lock().get_mut(&shard) {
                    hosts.retain(|&h| h != victim);
                }
                let _ = self.send_if_resident(victim, MachineMsg::DropShard { shard });
                continue;
            }
            if live_hosts >= target {
                return;
            }
            // Under-replicated: pick the live machine hosting the fewest
            // shards that does not already host this one (smallest id wins
            // ties — deterministic placement).
            let load: BTreeMap<usize, usize> = {
                let assignments = self.assignments.lock();
                let mut load: BTreeMap<usize, usize> = live.iter().map(|&m| (m, 0usize)).collect();
                for hosts in assignments.values() {
                    for h in hosts {
                        if let Some(count) = load.get_mut(h) {
                            *count += 1;
                        }
                    }
                }
                load
            };
            let candidate = load
                .iter()
                .filter(|(m, _)| !hosts.contains(m))
                .min_by_key(|(&m, &count)| (count, m))
                .map(|(&m, _)| m);
            let Some(candidate) = candidate else { return };
            // Prefer a live donor; a dead-marked one (wedged, not killed)
            // still holds correct bytes and is better than losing the shard.
            let donor = hosts
                .iter()
                .copied()
                .find(|h| live.contains(h))
                .or_else(|| hosts.first().copied());
            let Some(donor) = donor else { return };
            if !self.replicate(shard, donor, candidate, config) {
                return;
            }
        }
    }

    /// Copies `shard` from `donor` onto `candidate` with the stash-and-replay
    /// protocol: `ExpectReplica` first, *then* record the assignment (so
    /// every update published from now on reaches the candidate's stash),
    /// then fetch the donor's snapshot and install it. Returns `false` if
    /// the copy failed (the assignment is rolled back).
    fn replicate(
        self: &Arc<Self>,
        shard: usize,
        donor: usize,
        candidate: usize,
        config: &ReplicationConfig,
    ) -> bool {
        if self
            .send_if_resident(candidate, MachineMsg::ExpectReplica { shard })
            .is_err()
        {
            return false;
        }
        if let Some(hosts) = self.assignments.lock().get_mut(&shard) {
            hosts.push(candidate);
        }
        let rollback = |fleet: &Fleet| {
            if let Some(hosts) = fleet.assignments.lock().get_mut(&shard) {
                if let Some(pos) = hosts.iter().rposition(|&h| h == candidate) {
                    hosts.remove(pos);
                }
            }
            let _ = fleet.send_if_resident(candidate, MachineMsg::DropShard { shard });
        };
        let (snap_tx, snap_rx) = unbounded();
        if self
            .send_if_resident(
                donor,
                MachineMsg::FetchShard {
                    shard,
                    reply: snap_tx,
                },
            )
            .is_err()
        {
            rollback(self);
            return false;
        }
        match snap_rx.recv_timeout(config.query_deadline) {
            Ok(Some((points, codes, seq))) => {
                if self
                    .send_if_resident(
                        candidate,
                        MachineMsg::InstallReplica {
                            shard,
                            points,
                            codes,
                            seq,
                        },
                    )
                    .is_err()
                {
                    rollback(self);
                    return false;
                }
                self.record_success(donor);
                true
            }
            Ok(None) => {
                rollback(self);
                false
            }
            Err(_) => {
                if self.record_failure(donor) {
                    self.notify_rebalance();
                }
                rollback(self);
                false
            }
        }
    }
    // lint: end-actor-region

    // ---- chaos / lifecycle controls ----

    /// Kills a machine: its actor is shut down (bounded join) and it is
    /// removed from every shard assignment and marked dead, so no query or
    /// update is routed to a resurrected empty actor. Wakes the rebalancer.
    fn kill_machine(self: &Arc<Self>, machine: usize) {
        let handle = self.machines.lock().remove(&machine);
        if let Some(mut handle) = handle {
            let _ = handle.tx.send(MachineMsg::Shutdown);
            drop(handle.tx);
            if let Some(thread) = handle.thread.take() {
                join_bounded(thread, SHUTDOWN_GRACE);
            }
        }
        for hosts in self.assignments.lock().values_mut() {
            hosts.retain(|&h| h != machine);
        }
        self.mark_dead(machine);
        self.notify_rebalance();
    }

    /// Restores a machine: spawns a fresh actor if none exists, probes it
    /// (`Ping` with the replica timeout), and on a pong marks it live and
    /// runs a synchronous rebalance so under-replicated shards land on it.
    /// Returns `false` if the probe timed out (the machine stays dead).
    fn restore_machine(self: &Arc<Self>, machine: usize) -> bool {
        {
            let mut map = self.machines.lock();
            let scan_workers = self.scan_workers.load(Ordering::Relaxed);
            map.entry(machine)
                .or_insert_with(|| spawn_actor(machine, scan_workers));
        }
        let (pong_tx, pong_rx) = unbounded();
        let timeout = self.replication.lock().replica_timeout;
        if self
            .send_if_resident(machine, MachineMsg::Ping { reply: pong_tx })
            .is_err()
        {
            return false;
        }
        match pong_rx.recv_timeout(timeout) {
            Ok(_) => {
                self.record_success(machine);
                self.rebalance_once();
                true
            }
            Err(_) => {
                self.mark_dead(machine);
                false
            }
        }
    }
}

fn spawn_actor(machine: usize, scan_workers: usize) -> MachineHandle {
    let (tx, rx) = unbounded();
    // Spawn failure (thread exhaustion) must not panic the caller — it can
    // be a serving thread. On failure the closure (owning `rx`) is dropped,
    // so the mailbox is born disconnected: every send to this machine fails,
    // the health tracker marks it dead and failover covers its shards.
    let thread = thread::Builder::new()
        .name(format!("parmac-serve-{machine}"))
        .spawn(move || serving_actor(machine, rx, scan_workers))
        .ok();
    MachineHandle { tx, thread }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Stop the rebalance actor first so no pass races the machine
        // teardown. The handle is hoisted out of the lock (an `if let`
        // scrutinee would keep `rebalancer` locked across the join), and
        // the join is skipped when this drop runs *on* the rebalance thread
        // itself — the pass that upgraded the last weak reference drops it
        // there, and a self-join would deadlock. In that case the thread is
        // detached and exits on its own once its mailbox disconnects.
        let rebalancer = self.rebalancer.lock().take();
        if let Some(mut handle) = rebalancer {
            drop(handle.tx);
            if let Some(thread) = handle.thread.take() {
                if thread.thread().id() != thread::current().id() {
                    join_bounded(thread, SHUTDOWN_GRACE);
                }
            }
        }
        // Take ownership of the machine table so no lock is held across the
        // shutdown sends and joins.
        let map = std::mem::take(&mut *self.machines.lock());
        for handle in map.values() {
            let _ = handle.tx.send(MachineMsg::Shutdown);
        }
        // Bounded shutdown: join actors that exit within the grace period,
        // abandon the wedged ones (their mailboxes disconnect when the
        // handles drop, so they exit on their own once they wake).
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for (_, mut handle) in map {
            drop(handle.tx);
            if let Some(thread) = handle.thread.take() {
                let grace = deadline.saturating_duration_since(Instant::now());
                join_bounded(thread, grace);
            }
        }
    }
}

/// The result of one fan-out: per answering shard (ascending shard order)
/// the per-query hit lists, plus the coverage achieved.
struct FanOut {
    per_shard: Vec<Vec<Vec<(u32, usize)>>>,
    coverage: Coverage,
}

/// Per-shard failover state inside one fan-out.
struct ShardAttempt {
    shard: usize,
    /// Replica candidates in try-order: hosts rotated by the read-balancing
    /// cursor, live ones first, dead-marked ones as a last resort.
    candidates: Vec<usize>,
    /// Next candidate index.
    cursor: usize,
    /// The machine currently asked, if an attempt is outstanding this wave.
    in_flight: Option<usize>,
    answered: bool,
}

/// One coverage-aware fan-out with replica failover. Shards are dispatched
/// to their read-balanced first replica; a dead machine (disconnected
/// mailbox) cascades to the next replica instantly, a wedged one after
/// `replica_timeout`; the whole fan-out is bounded by `query_deadline`.
/// Every shard that cannot be answered within the budget is simply absent
/// from the merge — and visible in the returned [`Coverage`].
fn fan_out_topk(
    fleet: &Arc<Fleet>,
    queries: &Arc<BinaryCodes>,
    k: usize,
    probes: Option<usize>,
) -> FanOut {
    let config = *fleet.replication.lock();
    let plan: BTreeMap<usize, Vec<usize>> = fleet.assignments.lock().clone();
    let total = plan.len();
    if total == 0 {
        return FanOut {
            per_shard: Vec::new(),
            coverage: Coverage {
                shards_answered: 0,
                shards_total: 0,
            },
        };
    }
    let dead = fleet.dead_set();
    let rr = fleet.rr.fetch_add(1, Ordering::Relaxed);
    let mut attempts: Vec<ShardAttempt> = plan
        .into_iter()
        .map(|(shard, mut hosts)| {
            if !hosts.is_empty() {
                let shift = rr % hosts.len();
                hosts.rotate_left(shift);
            }
            // Stable partition: live replicas first, dead ones last resort.
            let mut candidates: Vec<usize> = hosts
                .iter()
                .copied()
                .filter(|h| !dead.contains(h))
                .collect();
            candidates.extend(hosts.iter().copied().filter(|h| dead.contains(h)));
            ShardAttempt {
                shard,
                candidates,
                cursor: 0,
                in_flight: None,
                answered: false,
            }
        })
        .collect();
    let mut hits_by_shard: BTreeMap<usize, Vec<Vec<(u32, usize)>>> = BTreeMap::new();
    let (reply_tx, reply_rx) = unbounded::<QueryReply>();
    let overall_deadline = Instant::now() + config.query_deadline;

    'outer: loop {
        // Dispatch phase: give every unanswered shard without an outstanding
        // attempt its next candidate, grouping shards by machine so each
        // machine scans one batch. A disconnected mailbox cascades
        // immediately to the next candidate.
        loop {
            let mut by_machine: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (i, attempt) in attempts.iter_mut().enumerate() {
                if attempt.answered || attempt.in_flight.is_some() {
                    continue;
                }
                if attempt.cursor >= attempt.candidates.len() {
                    continue; // exhausted: stays unanswered
                }
                let machine = attempt.candidates[attempt.cursor];
                if attempt.cursor > 0 {
                    fleet.failovers.fetch_add(1, Ordering::Relaxed);
                }
                attempt.cursor += 1;
                attempt.in_flight = Some(machine);
                by_machine.entry(machine).or_default().push(i);
            }
            if by_machine.is_empty() {
                break;
            }
            let mut cascaded = false;
            for (machine, idxs) in by_machine {
                let shards: Vec<usize> = idxs.iter().map(|&i| attempts[i].shard).collect();
                let sent = fleet.send_if_resident(
                    machine,
                    MachineMsg::Query(Query {
                        queries: Arc::clone(queries),
                        shards,
                        k,
                        probes,
                        reply: reply_tx.clone(),
                    }),
                );
                if sent.is_err() {
                    // Dead machine: instant failover, plus a health strike.
                    if fleet.record_failure(machine) {
                        fleet.notify_rebalance();
                    }
                    for i in idxs {
                        attempts[i].in_flight = None;
                    }
                    cascaded = true;
                }
            }
            if !cascaded {
                break;
            }
        }
        if attempts.iter().all(|a| a.answered || a.in_flight.is_none()) {
            // Nothing outstanding: everything is answered or exhausted.
            break 'outer;
        }

        // Wait phase: collect replies until the wave times out. Late replies
        // from earlier waves still count (first answer wins per shard). The
        // multi-recv loop waits against the *absolute* wave deadline, so a
        // burst of replies never stretches the wave by per-recv drift.
        let wave_deadline = (Instant::now() + config.replica_timeout).min(overall_deadline);
        loop {
            let now = Instant::now();
            if now >= wave_deadline {
                // Penalise every machine that left an attempt hanging, free
                // the shards for the next wave.
                let mut blamed: BTreeSet<usize> = BTreeSet::new();
                for attempt in attempts.iter_mut() {
                    if let Some(machine) = attempt.in_flight.take() {
                        if !attempt.answered {
                            blamed.insert(machine);
                        }
                    }
                }
                for machine in blamed {
                    if fleet.record_failure(machine) {
                        fleet.notify_rebalance();
                    }
                }
                if now >= overall_deadline {
                    break 'outer;
                }
                continue 'outer;
            }
            match waits::recv_deadline(&reply_rx, wave_deadline) {
                Ok(reply) => {
                    fleet.record_success(reply.machine);
                    let mut freed = false;
                    for (shard, hits) in reply.answered {
                        if let Some(attempt) = attempts.iter_mut().find(|a| a.shard == shard) {
                            if !attempt.answered {
                                attempt.answered = true;
                                attempt.in_flight = None;
                                hits_by_shard.insert(shard, hits);
                            }
                        }
                    }
                    for shard in reply.missing {
                        if let Some(attempt) = attempts.iter_mut().find(|a| a.shard == shard) {
                            if !attempt.answered && attempt.in_flight == Some(reply.machine) {
                                attempt.in_flight = None;
                                freed = true;
                            }
                        }
                    }
                    // Settled = answered, or out of candidates with nothing
                    // in flight (a lost shard must not make every fan-out
                    // wait out the wave timeout — degraded, but fast).
                    if attempts.iter().all(|a| {
                        a.answered || (a.in_flight.is_none() && a.cursor >= a.candidates.len())
                    }) {
                        break 'outer;
                    }
                    if freed {
                        continue 'outer;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {} // re-check the deadline
                Err(RecvTimeoutError::Disconnected) => break 'outer,
            }
        }
    }

    let coverage = Coverage {
        shards_answered: hits_by_shard.len(),
        shards_total: total,
    };
    if !coverage.is_full() {
        fleet.degraded.fetch_add(1, Ordering::Relaxed);
    }
    FanOut {
        per_shard: hits_by_shard.into_values().collect(),
        coverage,
    }
}

/// Sizing of the batched admission queue (see [`QueryRouter::knn_admitted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Capacity of the bounded admission mailbox. A submission finding the
    /// mailbox full is *shed*: the caller gets [`AdmissionError::Shed`]
    /// immediately instead of queueing unboundedly — explicit load shedding,
    /// never a silent drop.
    pub queue_capacity: usize,
    /// Query budget of one coalesced fan-out: the admission loop stops
    /// draining further submissions once the accumulated batch holds at
    /// least this many *queries*. Bounds the size of the concatenated batch
    /// and the latency outliers a slow scan inflicts on the queries
    /// coalesced with it. The first submission of a batch is always served
    /// whole, so one oversized submission can exceed the budget by itself.
    pub max_batch: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            max_batch: 256,
        }
    }
}

/// Snapshot of the admission/shedding and availability counters. At every
/// quiesce point (no `knn_admitted` call in flight) `submitted == answered +
/// shed`: every query is accounted for, whatever the fleet's health.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Submissions to [`QueryRouter::knn_admitted`].
    pub submitted: u64,
    /// Submissions answered (possibly coalesced into a shared fan-out).
    pub answered: u64,
    /// Submissions shed: the admission queue was full, or the backend shut
    /// down before the reply. Every shed surfaces as [`AdmissionError`].
    pub shed: u64,
    /// Fan-out batches dispatched by the admission loop.
    pub batches: u64,
    /// Submissions that shared a fan-out with at least one other submission.
    pub coalesced: u64,
    /// Shard attempts retried on an alternate replica (dead or timed-out
    /// machine). Counts every fan-out, admitted or direct.
    pub failovers: u64,
    /// Fan-outs that returned with partial coverage (the response's
    /// [`Coverage`] said so too — degradation is never silent).
    pub degraded: u64,
}

#[derive(Default)]
struct AdmissionCounters {
    submitted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
}

impl AdmissionCounters {
    fn snapshot(&self, fleet: &Fleet) -> ServingStats {
        ServingStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            failovers: fleet.failovers.load(Ordering::Relaxed),
            degraded: fleet.degraded.load(Ordering::Relaxed),
        }
    }
}

/// Why a [`QueryRouter::knn_admitted`] call returned no answer. Either way
/// the query was counted in [`ServingStats::shed`] — load shedding is
/// explicit, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded admission queue was at capacity; retry later or back off.
    Shed {
        /// The capacity the queue was configured with.
        queue_capacity: usize,
    },
    /// The admission loop has shut down (the backend was dropped).
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Shed { queue_capacity } => {
                write!(
                    f,
                    "query shed: admission queue at capacity {queue_capacity}"
                )
            }
            AdmissionError::Closed => write!(f, "admission loop shut down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One admitted-but-unanswered query batch.
struct Pending {
    queries: Arc<BinaryCodes>,
    k: usize,
    probes: Option<usize>,
    reply: Sender<KnnResponse>,
}

struct AdmissionHandle {
    tx: Sender<Pending>,
    thread: Option<JoinHandle<()>>,
}

/// The batched admission front: a bounded mailbox plus one loop thread that
/// drains concurrently arriving submissions and coalesces them into shared
/// fan-out batches. Spawned lazily on the first admitted query.
struct Admission {
    handle: Mutex<Option<AdmissionHandle>>,
    config: Mutex<AdmissionConfig>,
    counters: Arc<AdmissionCounters>,
}

impl Default for Admission {
    fn default() -> Self {
        Admission {
            handle: Mutex::new(None),
            config: Mutex::new(AdmissionConfig::default()),
            counters: Arc::new(AdmissionCounters::default()),
        }
    }
}

impl Admission {
    /// The bounded submission sender, spawning the admission loop on first
    /// use. The loop thread owns an `Arc` of the fleet, so the fleet outlives
    /// every admitted query.
    fn sender(&self, fleet: &Arc<Fleet>) -> Sender<Pending> {
        let mut guard = self.handle.lock();
        let handle = guard.get_or_insert_with(|| {
            let config = *self.config.lock();
            let (tx, rx) = bounded(config.queue_capacity);
            let fleet = Arc::clone(fleet);
            let counters = Arc::clone(&self.counters);
            let thread = thread::Builder::new()
                .name("parmac-admission".into())
                .spawn(move || admission_loop(&fleet, &rx, &counters, config.max_batch))
                .expect("spawn admission loop");
            AdmissionHandle {
                tx,
                thread: Some(thread),
            }
        });
        handle.tx.clone()
    }
}

impl Drop for Admission {
    fn drop(&mut self) {
        // Take the handle out in its own statement: an `if let` scrutinee
        // temporary lives for the whole block (Rust 2021 scoping), which
        // would keep `self.handle` locked across the bounded join below.
        let handle = self.handle.lock().take();
        if let Some(mut handle) = handle {
            // Dropping the mailbox sender disconnects the loop; it drains the
            // already-admitted queue (answering every blocked caller) and
            // exits. The join is bounded: a fan-out already cannot outlive
            // its query deadline, but a pathological pile-up is abandoned
            // rather than hanging the drop.
            drop(handle.tx);
            if let Some(thread) = handle.thread.take() {
                join_bounded(thread, SHUTDOWN_GRACE.max(Duration::from_secs(3)));
            }
        }
    }
}

/// The admission loop: blocks for one submission, opportunistically drains
/// whatever else arrived concurrently (until the batch holds `max_batch`
/// queries), groups runs of equal code width *and* probe budget, and serves
/// each group with one coalesced fan-out. The probed-bucket set of a
/// budgeted query is a fixed function of the query prefix and the budget —
/// never of `k` — so coalescing submissions with different `k` at the same
/// budget cannot change any submission's answer.
fn admission_loop(
    fleet: &Arc<Fleet>,
    rx: &Receiver<Pending>,
    counters: &AdmissionCounters,
    max_batch: usize,
) {
    while let Ok(first) = waits::recv_bounded(rx, waits::IDLE_TICK) {
        let mut total_queries = first.queries.len();
        let mut batch = vec![first];
        while total_queries < max_batch {
            match rx.try_recv() {
                Ok(pending) => {
                    total_queries += pending.queries.len();
                    batch.push(pending);
                }
                Err(_) => break,
            }
        }
        let mut start = 0;
        while start < batch.len() {
            let width = batch[start].queries.n_bits();
            let probes = batch[start].probes;
            let mut end = start + 1;
            while end < batch.len()
                && batch[end].queries.n_bits() == width
                && batch[end].probes == probes
            {
                end += 1;
            }
            serve_coalesced(fleet, counters, &batch[start..end]);
            start = end;
        }
    }
}

/// Serves a group of equal-width, equal-budget submissions with one fan-out
/// at the group's largest `k`: each per-shard list is the ascending prefix
/// of its shard's ranking over the probed candidate set (all of it in exact
/// mode), so merging to any smaller `k` is that submission's own answer —
/// coalescing changes batching, never answers. Every submission in the
/// group shares the fan-out's coverage.
fn serve_coalesced(fleet: &Arc<Fleet>, counters: &AdmissionCounters, group: &[Pending]) {
    // lint: actor-region — runs on the admission thread; must not panic
    counters.batches.fetch_add(1, Ordering::Relaxed);
    if group.len() > 1 {
        counters
            .coalesced
            .fetch_add(group.len() as u64, Ordering::Relaxed);
    }
    // An empty group cannot happen (callers slice non-empty runs), but fold
    // instead of `max().expect` so the admission thread cannot die on it.
    let k_max = group.iter().map(|p| p.k).fold(0, usize::max);
    let queries = if group.len() == 1 {
        Arc::clone(&group[0].queries)
    } else {
        let mut all = BinaryCodes::zeros(0, group[0].queries.n_bits());
        for pending in group {
            all.append_codes(&pending.queries);
        }
        Arc::new(all)
    };
    let mut fan = fan_out_topk(fleet, &queries, k_max, group[0].probes);
    let mut offset = 0usize;
    for pending in group {
        let answers: Vec<Vec<usize>> = (offset..offset + pending.queries.len())
            .map(|q| {
                let lists: Vec<Vec<(u32, usize)>> = fan
                    .per_shard
                    .iter_mut()
                    .map(|hits| std::mem::take(&mut hits[q]))
                    .collect();
                merge_shard_topk(&lists, pending.k)
            })
            .collect();
        offset += pending.queries.len();
        counters.answered.fetch_add(1, Ordering::Relaxed);
        let _ = pending.reply.send(KnnResponse {
            answers,
            coverage: fan.coverage,
        });
    }
    // lint: end-actor-region
}

/// Front-end that fans Hamming k-NN queries out to the machines hosting the
/// shards and merges the per-shard top-k into the global answer. Cheap to
/// clone; can be handed to request threads while training runs.
///
/// Two entry points: [`knn`](Self::knn)/[`knn_shared`](Self::knn_shared)
/// fan out immediately (one fan-out per call), and
/// [`knn_admitted`](Self::knn_admitted) goes through the bounded admission
/// queue, which coalesces concurrently arriving submissions into shared
/// fan-out batches and sheds load explicitly when saturated. Every answer is
/// a coverage-aware [`KnnResponse`].
#[derive(Clone)]
pub struct QueryRouter {
    fleet: Arc<Fleet>,
    admission: Arc<Admission>,
}

impl QueryRouter {
    /// For each query code, the indices of the `k` resident database codes
    /// with the smallest Hamming distance, closest first (ties broken by
    /// global index) — with full coverage, exactly what a single-process
    /// [`hamming_knn`](parmac_retrieval::hamming_knn) over the concatenated
    /// shards returns. Queries are answered from each machine's current
    /// shard snapshot, so calling concurrently with training is safe; an
    /// empty fleet (nothing published yet) yields empty result lists with
    /// vacuously full `0/0` coverage.
    ///
    /// Copies the query batch once to share it across the fan-out; callers
    /// that already hold an `Arc` should use [`knn_shared`](Self::knn_shared).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn(&self, queries: &BinaryCodes, k: usize) -> KnnResponse {
        self.knn_shared(&Arc::new(queries.clone()), k)
    }

    /// [`knn`](Self::knn) without the copy: the shared batch is handed to
    /// every machine as-is, so the fan-out allocates nothing per machine.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_shared(&self, queries: &Arc<BinaryCodes>, k: usize) -> KnnResponse {
        self.knn_with_probes(queries, k, None)
    }

    /// Budgeted retrieval: each machine stops a query's index probing after
    /// `probes` non-empty prefix buckets instead of running to provable
    /// exactness, trading recall for throughput (the recall-vs-qps knob of
    /// the serving stack; see [`PrefixIndex::topk_batched`]). Recall against
    /// the exact answer is monotone non-decreasing in `probes`; a budget of
    /// at least every machine's occupied-bucket count is exact mode.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_budgeted(&self, queries: &Arc<BinaryCodes>, k: usize, probes: usize) -> KnnResponse {
        self.knn_with_probes(queries, k, Some(probes))
    }

    fn knn_with_probes(
        &self,
        queries: &Arc<BinaryCodes>,
        k: usize,
        probes: Option<usize>,
    ) -> KnnResponse {
        assert!(k > 0, "k must be positive");
        let mut fan = fan_out_topk(&self.fleet, queries, k, probes);
        let answers = (0..queries.len())
            .map(|q| {
                let lists: Vec<Vec<(u32, usize)>> = fan
                    .per_shard
                    .iter_mut()
                    .map(|hits| std::mem::take(&mut hits[q]))
                    .collect();
                merge_shard_topk(&lists, k)
            })
            .collect();
        KnnResponse {
            answers,
            coverage: fan.coverage,
        }
    }

    /// Submits a query batch through the bounded admission queue. Under
    /// concurrent load the admission loop coalesces waiting submissions into
    /// one fan-out batch (scanned by the batched kernel in a single shard
    /// walk); when the queue is full the call returns
    /// [`AdmissionError::Shed`] *immediately* — explicit backpressure, so a
    /// saturated fleet degrades by answering fewer queries exactly rather
    /// than all queries late. Every submission ends up in
    /// [`ServingStats`]: `answered + shed == submitted`.
    ///
    /// Answers are identical to [`knn_shared`](Self::knn_shared) with the
    /// same arguments, including the coverage.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_admitted(
        &self,
        queries: Arc<BinaryCodes>,
        k: usize,
    ) -> Result<KnnResponse, AdmissionError> {
        self.admit(queries, k, None)
    }

    /// [`knn_budgeted`](Self::knn_budgeted) through the bounded admission
    /// queue: the admission loop only coalesces submissions with the *same*
    /// probe budget into a shared fan-out (the probed-bucket set depends on
    /// the budget, never on `k`), so answers equal the direct budgeted call.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn knn_admitted_budgeted(
        &self,
        queries: Arc<BinaryCodes>,
        k: usize,
        probes: usize,
    ) -> Result<KnnResponse, AdmissionError> {
        self.admit(queries, k, Some(probes))
    }

    fn admit(
        &self,
        queries: Arc<BinaryCodes>,
        k: usize,
        probes: Option<usize>,
    ) -> Result<KnnResponse, AdmissionError> {
        assert!(k > 0, "k must be positive");
        let counters = &self.admission.counters;
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        let tx = self.admission.sender(&self.fleet);
        let (reply_tx, reply_rx) = unbounded();
        let pending = Pending {
            queries,
            k,
            probes,
            reply: reply_tx,
        };
        if let Err(err) = tx.try_send(pending) {
            counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(match err {
                TrySendError::Full(_) => AdmissionError::Shed {
                    queue_capacity: self.admission.config.lock().queue_capacity,
                },
                TrySendError::Disconnected(_) => AdmissionError::Closed,
            });
        }
        // Heartbeat-bounded wait for the admission worker's reply: if the
        // worker dies, the reply sender drops and this surfaces as `Closed`
        // within one tick instead of hanging the caller forever.
        match waits::recv_bounded(&reply_rx, waits::IDLE_TICK) {
            Ok(response) => Ok(response),
            Err(()) => {
                counters.shed.fetch_add(1, Ordering::Relaxed);
                Err(AdmissionError::Closed)
            }
        }
    }

    /// Snapshot of the admission/shedding and availability counters.
    pub fn serving_stats(&self) -> ServingStats {
        self.admission.counters.snapshot(&self.fleet)
    }

    /// Number of resident machine actors (live or wedged; killed machines
    /// are gone).
    pub fn n_machines(&self) -> usize {
        self.fleet.n_machines()
    }

    /// Snapshot of the fleet's replication health.
    pub fn fleet_status(&self) -> FleetStatus {
        self.fleet.status()
    }
}

/// The sharded-server backend: the fourth [`ClusterBackend`].
///
/// Training steps run the typed mailbox protocol over per-machine actors and
/// stay bitwise identical to [`SimBackend`](crate::backend::SimBackend); the
/// resident serving fleet answers retrieval queries concurrently, with shard
/// replication and failover (see the module docs for the full picture).
/// Cloning the backend shares the fleet.
#[derive(Clone)]
pub struct ServerBackend {
    cost: CostModel,
    fleet: Arc<Fleet>,
    admission: Arc<Admission>,
}

impl ServerBackend {
    /// A server backend with the distributed cost preset and an empty fleet.
    pub fn new() -> Self {
        ServerBackend {
            cost: CostModel::distributed(),
            fleet: Arc::new(Fleet::default()),
            admission: Arc::new(Admission::default()),
        }
    }

    /// Overrides the cost model a trainer built on this backend seeds its
    /// cluster with (the cluster is authoritative at execution time; see
    /// [`ClusterBackend::cost_model`]).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets how many scan workers each serving actor splits its query
    /// batches over (default: the host's parallelism, capped at 4). Workers
    /// probe the shared index snapshot for disjoint sub-ranges of the batch
    /// and per-query answers are independent, so the worker count never
    /// changes answers. Call before the fleet spawns (i.e. before the first
    /// `publish_codes`): each actor captures the count when it starts.
    pub fn with_scan_workers(self, workers: usize) -> Self {
        self.fleet
            .scan_workers
            .store(workers.max(1), Ordering::Relaxed);
        self
    }

    /// Sets the replication factor: each shard's codes live on `replicas`
    /// distinct machines (capped at the fleet size), so any single machine
    /// failure leaves every shard answerable at `replicas >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn with_replication(self, replicas: usize) -> Self {
        assert!(replicas > 0, "replication factor must be positive");
        self.fleet.replication.lock().replicas = replicas;
        self
    }

    /// Sets the full replication/failover configuration (factor, per-wave
    /// replica timeout, total query deadline, failure threshold).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `failure_threshold` is zero.
    pub fn with_replication_config(self, config: ReplicationConfig) -> Self {
        assert!(config.replicas > 0, "replication factor must be positive");
        assert!(
            config.failure_threshold > 0,
            "failure threshold must be positive"
        );
        *self.fleet.replication.lock() = config;
        self
    }

    /// Sets the admission-queue sizing (default: capacity 256, a 256-query
    /// budget per coalesced fan-out). Call before the first
    /// [`QueryRouter::knn_admitted`]: the admission loop captures the
    /// configuration when it spawns.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` or `max_batch` is zero.
    pub fn with_admission_config(self, config: AdmissionConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        *self.admission.config.lock() = config;
        self
    }

    /// A retrieval front-end over this backend's serving fleet. Routers stay
    /// valid (and keep the fleet alive) after the backend is moved into a
    /// trainer.
    pub fn query_router(&self) -> QueryRouter {
        QueryRouter {
            fleet: Arc::clone(&self.fleet),
            admission: Arc::clone(&self.admission),
        }
    }

    /// Chaos/lifecycle: kills a machine — its actor shuts down (bounded,
    /// never hangs on a wedged thread), it leaves every shard assignment and
    /// is marked dead. In-flight queries fail over to the surviving
    /// replicas; the rebalancer re-replicates what it hosted.
    pub fn kill_machine(&self, machine: usize) {
        self.fleet.kill_machine(machine);
    }

    /// Chaos/lifecycle: restores a machine — a fresh actor is spawned if
    /// needed and probed (`Ping`); on a pong the machine is marked live and
    /// a synchronous rebalance re-replicates under-replicated shards onto
    /// it. Returns `false` if the probe timed out.
    pub fn restore_machine(&self, machine: usize) -> bool {
        self.fleet.restore_machine(machine)
    }

    /// Chaos: blocks a machine's actor thread for `duration`, simulating a
    /// wedged (alive but unresponsive) machine. Returns `false` if the
    /// machine has no actor.
    pub fn wedge_machine(&self, machine: usize, duration: Duration) -> bool {
        self.fleet
            .send_if_resident(machine, MachineMsg::Wedge(duration))
            .is_ok()
    }

    /// Runs one synchronous rebalancing pass (the same work the self-healing
    /// background pass does): prunes gone hosts, re-replicates
    /// under-replicated shards from live donors, trims over-replication.
    pub fn rebalance(&self) {
        self.fleet.rebalance_once();
    }

    /// Snapshot of the fleet's replication health.
    pub fn fleet_status(&self) -> FleetStatus {
        self.fleet.status()
    }
}

impl Default for ServerBackend {
    fn default() -> Self {
        ServerBackend::new()
    }
}

impl ClusterBackend for ServerBackend {
    fn name(&self) -> &'static str {
        "server"
    }

    fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Loads every machine's shard codes into the resident serving fleet
    /// (spawning actors on first publish), placing each shard on
    /// `replicas` distinct machines: shard `s` goes to machines `s, s+1,
    /// ... (mod P)`. A publish is authoritative — it refreshes the
    /// assignments, revives dead-marked machines (they receive complete
    /// state), and is how an unreplicated fleet recovers a lost shard.
    ///
    /// Holds no lock across the sends: every `LoadShard` of this pass is
    /// stamped with a fresh publish seq, and actors reject any replica
    /// install (or older load) that would roll a shard back past it — so a
    /// concurrently running rebalance pass cannot clobber the publish.
    fn publish_codes(&self, cluster: &SimCluster, codes: &BinaryCodes) {
        let p = cluster.n_machines();
        if p == 0 {
            return;
        }
        let seq = self.fleet.publish_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let replicas = self.fleet.replication.lock().replicas.min(p);
        for shard in 0..p {
            let points = cluster.shard(shard).to_vec();
            let mut shard_codes = BinaryCodes::zeros(points.len(), codes.n_bits());
            for (local, &global) in points.iter().enumerate() {
                shard_codes.set_code(local, &codes.to_f64_row(global));
            }
            let hosts: Vec<usize> = (0..replicas).map(|j| (shard + j) % p).collect();
            self.fleet.assignments.lock().insert(shard, hosts.clone());
            for &host in &hosts {
                self.fleet.send_spawning(
                    host,
                    MachineMsg::LoadShard {
                        shard,
                        points: points.clone(),
                        codes: shard_codes.clone(),
                        seq,
                    },
                );
                self.fleet.record_success(host);
            }
        }
    }

    /// Streams just the new points' codes to every host of the ingesting
    /// machine's shard (an incremental `ApplyUpdates`, not a full fleet
    /// reload). A brand-new machine becomes its own shard's first host.
    fn publish_point_codes(&self, machine: usize, points: &[usize], codes: &BinaryCodes) {
        if points.is_empty() {
            return;
        }
        let updates: Vec<ZUpdate> = points
            .iter()
            .map(|&point| ZUpdate {
                point,
                code: codes.to_f64_row(point),
            })
            .collect();
        self.fleet.publish_shard_updates(machine, updates);
    }

    /// The asynchronous ring of §4.1 with §4.3's list-driven routing: every
    /// hop delivers the envelope to the scoped actor of the next machine;
    /// machines not on the envelope's visit list relay it unchanged. In the
    /// fault-free case every machine is always on the list, so the visit
    /// sequence — and therefore the trained weights — are bitwise identical
    /// to the other backends. Fault *injection* plans are ignored like on the
    /// other real-thread backends (pre-faulted envelopes are exercised by the
    /// unit tests instead); `messages_sent` is the canonical [`ring_hops`]
    /// count plus any relay hops.
    fn run_w_step<S, F>(
        &self,
        cluster: &SimCluster,
        submodels: Vec<S>,
        epochs: usize,
        params_per_submodel: usize,
        update: F,
        _fault: Option<Fault>,
    ) -> (Vec<S>, WStepStats)
    where
        S: Send,
        F: Fn(&mut S, usize, &[usize]) + Sync,
    {
        assert!(epochs > 0, "need at least one epoch");
        let start = Instant::now();
        let machines = cluster.topology().machines().to_vec();
        let p = machines.len();
        let m_total = submodels.len();
        if m_total == 0 {
            return (
                submodels,
                WStepStats {
                    timings: StepTimings::default().with_wall_clock(start.elapsed()),
                    ..WStepStats::default()
                },
            );
        }

        let mut senders: Vec<Sender<MachineMsg<S>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<MachineMsg<S>>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let (done_tx, done_rx) = unbounded::<SubmodelEnvelope<S>>();

        // Seed each machine's mailbox with its portion of the submodels
        // (round robin by ring position, as in fig. 2).
        for (idx, sub) in submodels.into_iter().enumerate() {
            let env = SubmodelEnvelope::new(idx, sub, &machines);
            senders[idx % p]
                .send(MachineMsg::Envelope(env))
                .expect("seed send");
        }

        let update_visits = AtomicUsize::new(0);
        let relayed = AtomicUsize::new(0);

        let finished = thread::scope(|scope| {
            for (pos, &machine) in machines.iter().enumerate() {
                let rx = receivers[pos].take().expect("receiver taken once");
                let next_tx = senders[(pos + 1) % p].clone();
                let done_tx = done_tx.clone();
                let shard = cluster.shard(machine);
                let update = &update;
                let machines_ref = &machines;
                let update_visits = &update_visits;
                let relayed = &relayed;
                scope.spawn(move || {
                    while let Ok(msg) = waits::recv_bounded(&rx, waits::IDLE_TICK) {
                        let mut env = match msg {
                            MachineMsg::Shutdown => break,
                            MachineMsg::Envelope(env) => env,
                            // Step mailboxes carry only envelopes; the other
                            // message kinds belong to the serving fleet.
                            _ => continue,
                        };
                        if !env.should_process_at(machine, epochs) {
                            // §4.3 routing: not on the visit list (already
                            // visited this epoch, or faulted out) — relay the
                            // envelope unchanged towards the next pending
                            // machine.
                            relayed.fetch_add(1, Ordering::Relaxed);
                            next_tx.send(MachineMsg::Envelope(env)).expect("ring alive");
                            continue;
                        }
                        if env.record_visit(machine, machines_ref, epochs) {
                            update(&mut env.payload, machine, shard);
                            update_visits.fetch_add(1, Ordering::Relaxed);
                        }
                        if env.is_finished(p, epochs) {
                            done_tx.send(env).expect("collector alive");
                        } else {
                            next_tx.send(MachineMsg::Envelope(env)).expect("ring alive");
                        }
                    }
                });
            }

            // Collector: once every submodel has finished, shut the ring down.
            let mut finished: Vec<Option<S>> = (0..m_total).map(|_| None).collect();
            for _ in 0..m_total {
                // Heartbeat-bounded: these are scoped step threads, so a
                // panic here re-raises at scope join (unlike the detached
                // serving actors, which must never panic).
                let env = waits::recv_bounded(&done_rx, waits::IDLE_TICK)
                    .expect("all submodels eventually finish");
                finished[env.submodel_id] = Some(env.payload);
            }
            for tx in &senders {
                let _ = tx.send(MachineMsg::Shutdown);
            }
            finished
        });

        let result: Vec<S> = finished
            .into_iter()
            .map(|s| s.expect("every submodel collected"))
            .collect();
        let msgs = ring_hops(m_total, p, epochs) + relayed.load(Ordering::Relaxed);
        let stats = WStepStats {
            timings: StepTimings::default().with_wall_clock(start.elapsed()),
            messages_sent: msgs,
            bytes_sent: msgs * params_per_submodel * std::mem::size_of::<f64>(),
            update_visits: update_visits.load(Ordering::Relaxed),
        };
        (result, stats)
    }

    /// The Z step as a request/reply exchange: every machine actor receives a
    /// [`ZStepRequest`], solves its own shard, and answers with its
    /// [`ZShardUpdates`]. Replies are assembled in topology order (bitwise
    /// identical to the serial sweep) and mirrored into the serving fleet —
    /// to *every* replica of each shard — so concurrent queries see the
    /// freshest codes whichever replica answers them.
    fn run_z_step<F>(
        &self,
        cluster: &SimCluster,
        n_submodels: usize,
        solve: F,
    ) -> (Vec<ZUpdate>, ZStepStats)
    where
        F: Fn(usize, &[usize]) -> Vec<ZUpdate> + Sync,
    {
        let start = Instant::now();
        let machines = cluster.topology().machines().to_vec();
        let (reply_tx, reply_rx) = unbounded::<ZShardUpdates>();

        thread::scope(|scope| {
            for &machine in &machines {
                let (tx, rx) = unbounded::<MachineMsg<()>>();
                let solve = &solve;
                let shard = cluster.shard(machine);
                scope.spawn(move || {
                    while let Ok(msg) = waits::recv_bounded(&rx, waits::IDLE_TICK) {
                        match msg {
                            MachineMsg::ZStepRequest(request) => {
                                let updates = solve(machine, shard);
                                let _ = request.reply.send(ZShardUpdates { machine, updates });
                            }
                            MachineMsg::Shutdown => break,
                            _ => {}
                        }
                    }
                });
                tx.send(MachineMsg::ZStepRequest(ZStepRequest {
                    reply: reply_tx.clone(),
                }))
                .expect("machine mailbox alive");
                tx.send(MachineMsg::Shutdown)
                    .expect("machine mailbox alive");
            }
        });

        let mut per_machine: HashMap<usize, Vec<ZUpdate>> = HashMap::with_capacity(machines.len());
        for _ in 0..machines.len() {
            // The scope above has joined: every reply is already queued, so
            // a non-blocking drain suffices (and can never hang).
            let reply = reply_rx
                .try_recv()
                .expect("every machine replied during the scope");
            per_machine.insert(reply.machine, reply.updates);
        }
        let mut updates = Vec::new();
        for &machine in &machines {
            let shard_updates = per_machine.remove(&machine).expect("one reply per machine");
            // Keep the serving fleet fresh: queries issued from now on see
            // this machine's post-step codes on every replica.
            if !shard_updates.is_empty() {
                self.fleet
                    .publish_shard_updates(machine, shard_updates.clone());
            }
            updates.extend(shard_updates);
        }
        (updates, z_stats(cluster, n_submodels, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::topology::RingTopology;
    use parking_lot::Mutex;

    fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
        let base = n / p;
        (0..p)
            .map(|i| (i * base..(i + 1) * base).collect())
            .collect()
    }

    fn toggle_solve(machine: usize, shard: &[usize]) -> Vec<ZUpdate> {
        shard
            .iter()
            .filter(|&&n| n % 2 == 0)
            .map(|&n| ZUpdate {
                point: n,
                code: vec![machine as f64, n as f64],
            })
            .collect()
    }

    /// Single-process reference over the database minus the points in
    /// `lost`, with answers mapped back to global point indices — what a
    /// degraded fleet that lost exactly those shards should answer.
    fn knn_excluding(
        db: &BinaryCodes,
        queries: &BinaryCodes,
        k: usize,
        lost: std::ops::Range<usize>,
    ) -> Vec<Vec<usize>> {
        let keep: Vec<usize> = (0..db.len()).filter(|i| !lost.contains(i)).collect();
        let mut sub = BinaryCodes::zeros(0, db.n_bits());
        for &i in &keep {
            sub.push_code(&db.to_f64_row(i));
        }
        parmac_retrieval::hamming_knn(&sub, queries, k)
            .into_iter()
            .map(|row| row.into_iter().map(|r| keep[r]).collect())
            .collect()
    }

    #[test]
    fn server_z_step_matches_sim() {
        let cost = CostModel::new(1.0, 10.0, 5.0);
        let cluster = SimCluster::new(shards(4, 40), cost);
        let (u_sim, s_sim) = SimBackend::new(cost).run_z_step(&cluster, 8, toggle_solve);
        let server = ServerBackend::new().with_cost_model(cost);
        let (u_srv, s_srv) = server.run_z_step(&cluster, 8, toggle_solve);
        assert_eq!(u_sim, u_srv, "server Z must be bitwise identical to sim");
        assert_eq!(s_sim.points_updated, s_srv.points_updated);
        assert_eq!(s_sim.timings.simulated, s_srv.timings.simulated);
    }

    #[test]
    fn server_z_updates_arrive_in_topology_order() {
        let mut cluster = SimCluster::new(shards(4, 16), CostModel::distributed());
        cluster.set_topology(RingTopology::from_order(vec![2, 0, 3, 1]));
        let backend = ServerBackend::new();
        let (updates, _) = backend.run_z_step(&cluster, 2, |machine, shard| {
            shard
                .iter()
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![machine as f64],
                })
                .collect()
        });
        let machine_order: Vec<usize> = updates
            .iter()
            .map(|u| u.code[0] as usize)
            .collect::<Vec<_>>()
            .chunks(4)
            .map(|c| c[0])
            .collect();
        assert_eq!(machine_order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn server_w_step_runs_the_full_protocol() {
        let cluster = SimCluster::new(shards(4, 40), CostModel::distributed());
        let backend = ServerBackend::new();
        let epochs = 3;
        let visits = Mutex::new(std::collections::HashMap::<(usize, usize), usize>::new());
        let (result, stats) = backend.run_w_step(
            &cluster,
            (0..6).collect::<Vec<usize>>(),
            epochs,
            1,
            |sub, machine, shard| {
                assert_eq!(shard.len(), 10);
                *visits.lock().entry((*sub, machine)).or_insert(0) += 1;
            },
            None,
        );
        assert_eq!(result, (0..6).collect::<Vec<_>>(), "original order kept");
        let visits = visits.lock();
        for sub in 0..6 {
            for machine in 0..4 {
                assert_eq!(
                    visits.get(&(sub, machine)),
                    Some(&epochs),
                    "({sub},{machine})"
                );
            }
        }
        assert_eq!(stats.update_visits, 6 * 4 * epochs);
        assert_eq!(stats.messages_sent, ring_hops(6, 4, epochs));
    }

    #[test]
    fn server_w_step_visits_machines_in_ring_order() {
        let mut cluster = SimCluster::new(shards(4, 8), CostModel::distributed());
        cluster.set_topology(RingTopology::from_order(vec![2, 0, 3, 1]));
        let seen = Mutex::new(Vec::new());
        let backend = ServerBackend::new();
        backend.run_w_step(
            &cluster,
            vec![(); 1],
            1,
            1,
            |_, machine, _| seen.lock().push(machine),
            None,
        );
        assert_eq!(*seen.lock(), vec![2, 0, 3, 1]);
    }

    #[test]
    fn server_w_step_empty_submodels_and_single_machine() {
        let cluster = SimCluster::new(shards(1, 10), CostModel::distributed());
        let backend = ServerBackend::new();
        let (empty, stats) =
            backend.run_w_step(&cluster, Vec::<u8>::new(), 1, 1, |_, _, _| {}, None);
        assert!(empty.is_empty());
        assert_eq!(stats.update_visits, 0);
        let (result, stats) =
            backend.run_w_step(&cluster, vec![0usize; 2], 2, 1, |sub, _, _| *sub += 1, None);
        assert_eq!(result, vec![2, 2]);
        assert_eq!(stats.update_visits, 4);
    }

    #[test]
    fn published_codes_are_served_and_match_single_process_knn() {
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(5, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        assert_eq!(router.n_machines(), 3);
        for k in [1usize, 7, 60] {
            assert_eq!(
                router.knn(&queries, k).expect_full(),
                parmac_retrieval::hamming_knn(&db, &queries, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn replicated_publish_matches_single_process_knn() {
        // R = 2 places every shard on two machines; a healthy fleet must
        // answer exactly like the unreplicated one (read balancing only
        // changes which replica answers, never the answer).
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(29);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(6, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new().with_replication(2);
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let status = router.fleet_status();
        assert!(status.is_fully_replicated(), "{status:?}");
        assert_eq!(status.target_replicas, 2);
        let reference = parmac_retrieval::hamming_knn(&db, &queries, 7);
        // Several calls, so the read-balancing cursor rotates through every
        // replica choice.
        for _ in 0..4 {
            assert_eq!(router.knn(&queries, 7).expect_full(), reference);
        }
        assert_eq!(router.serving_stats().degraded, 0);
    }

    #[test]
    fn kill_at_r2_fails_over_with_full_coverage() {
        // The tentpole guarantee: at R = 2, killing *any single machine*
        // leaves every shard answerable — answers stay bitwise identical to
        // the single-process reference, coverage stays full.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(31);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(5, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        for victim in 0..3 {
            let backend = ServerBackend::new().with_replication(2);
            backend.publish_codes(&cluster, &db);
            backend.kill_machine(victim);
            let router = backend.query_router();
            for k in [1usize, 7, 60] {
                let response = router.knn(&queries, k);
                assert!(response.coverage.is_full(), "victim={victim} k={k}");
                assert_eq!(
                    response.answers,
                    parmac_retrieval::hamming_knn(&db, &queries, k),
                    "victim={victim} k={k}"
                );
            }
            let status = router.fleet_status();
            assert_eq!(status.dead_machines, 1, "victim={victim}");
        }
    }

    #[test]
    fn killed_machine_no_longer_shrinks_answers_silently() {
        // Regression for the pre-replication bug: a killed machine dropped
        // its shard from every answer with no signal to the caller. At R = 1
        // the shard *is* lost, but the response now says so: coverage is
        // degraded and the answers equal the reference over the surviving
        // shards — never a silently shorter candidate set.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(37);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(5, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new(); // R = 1
        backend.publish_codes(&cluster, &db);
        backend.kill_machine(1); // shard 1 = points 20..40, now lost
        let router = backend.query_router();
        let response = router.knn(&queries, 9);
        assert!(response.is_degraded(), "lost shard must be flagged");
        assert_eq!(
            response.coverage,
            Coverage {
                shards_answered: 2,
                shards_total: 3
            }
        );
        assert_eq!(response.answers, knn_excluding(&db, &queries, 9, 20..40));
        let stats = router.serving_stats();
        assert!(stats.degraded >= 1, "{stats:?}");
        // A republish is authoritative: it restores the machine's actor and
        // the lost shard, and coverage returns to full.
        backend.publish_codes(&cluster, &db);
        assert_eq!(
            router.knn(&queries, 9).expect_full(),
            parmac_retrieval::hamming_knn(&db, &queries, 9)
        );
    }

    #[test]
    #[should_panic(expected = "degraded")]
    fn expect_full_panics_on_degraded_coverage() {
        KnnResponse {
            answers: Vec::new(),
            coverage: Coverage {
                shards_answered: 1,
                shards_total: 2,
            },
        }
        .expect_full();
    }

    #[test]
    fn wedged_machine_fails_over_within_deadline_and_recovers() {
        // A wedged (alive but unresponsive) machine must cost at most the
        // replica timeout per wave, never a hang: queries fail over to the
        // other replica, the health tracker marks the machine dead after
        // consecutive failures, and a probe after it recovers revives it.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(41);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(4, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new().with_replication_config(ReplicationConfig {
            replicas: 2,
            replica_timeout: Duration::from_millis(100),
            query_deadline: Duration::from_secs(5),
            failure_threshold: 2,
        });
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let reference = parmac_retrieval::hamming_knn(&db, &queries, 7);
        assert!(backend.wedge_machine(0, Duration::from_millis(600)));
        let start = Instant::now();
        // Every fan-out during the wedge must still produce the exact
        // full-coverage answer via the surviving replicas, within the
        // deadline. Repeated queries rack up consecutive failures on the
        // wedged machine until it is marked dead.
        for _ in 0..4 {
            assert_eq!(router.knn(&queries, 7).expect_full(), reference);
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "queries must not hang on a wedged actor"
        );
        let stats = router.serving_stats();
        assert!(stats.failovers >= 1, "{stats:?}");
        assert_eq!(stats.degraded, 0, "R=2 must hide a single wedge");
        // Let the wedge pass, then probe: the machine answers again and is
        // marked live; the fleet converges back to full replication.
        thread::sleep(Duration::from_millis(700));
        let mut restored = false;
        for _ in 0..50 {
            if backend.restore_machine(0) {
                restored = true;
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(restored, "recovered machine must pass the probe");
        let status = backend.fleet_status();
        assert_eq!(status.dead_machines, 0, "{status:?}");
        assert!(status.is_fully_replicated(), "{status:?}");
        assert_eq!(router.knn(&queries, 7).expect_full(), reference);
    }

    #[test]
    fn rebalance_reconverges_after_kill() {
        // Self-healing: after a kill, the rebalancer re-replicates the dead
        // machine's shards from the surviving replicas. Killing the *other*
        // original host afterwards must then still leave full coverage —
        // proof the new replica really exists and serves.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(43);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(80, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(5, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(4, 80), CostModel::distributed());
        let backend = ServerBackend::new().with_replication(2);
        backend.publish_codes(&cluster, &db);
        backend.kill_machine(0);
        backend.rebalance();
        let status = backend.fleet_status();
        assert!(status.is_fully_replicated(), "{status:?}");
        assert_eq!(status.live_machines, 3);
        // Shard 0's original hosts were machines 0 and 1. With 0 dead and
        // the fleet rebalanced, killing 1 as well must not lose the shard.
        backend.kill_machine(1);
        let router = backend.query_router();
        let response = router.knn(&queries, 9);
        assert!(response.coverage.is_full(), "{:?}", response.coverage);
        assert_eq!(
            response.answers,
            parmac_retrieval::hamming_knn(&db, &queries, 9)
        );
    }

    #[test]
    fn rebalanced_replicas_stay_fresh_through_z_updates() {
        // A replica created by the rebalancer must keep receiving training
        // publishes like an original: updates published after the rebalance
        // are visible even when every original host of the shard is gone.
        let cluster = SimCluster::new(shards(3, 12), CostModel::distributed());
        let backend = ServerBackend::new().with_replication(2);
        backend.publish_codes(&cluster, &BinaryCodes::zeros(12, 2));
        backend.kill_machine(0);
        backend.rebalance();
        assert!(backend.fleet_status().is_fully_replicated());
        // Point 2 lives in shard 0 (originally hosted on machines 0 and 1).
        backend.run_z_step(&cluster, 1, |_, shard| {
            shard
                .iter()
                .filter(|&&n| n == 2)
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![1.0, 1.0],
                })
                .collect()
        });
        backend.kill_machine(1);
        let router = backend.query_router();
        let q = BinaryCodes::from_bools(&[vec![true, true]]);
        let response = router.knn(&q, 1);
        assert!(response.coverage.is_full(), "{:?}", response.coverage);
        assert_eq!(response.answers, vec![vec![2]]);
    }

    #[test]
    fn restore_after_kill_requires_republish_at_r1() {
        // At R = 1 a killed machine's shard has no surviving replica: the
        // rebalancer cannot recreate data that no longer exists anywhere.
        // Restoring the machine brings back an *empty* actor — coverage
        // stays (correctly) degraded until the trainer republishes.
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        let codes = BinaryCodes::zeros(8, 2);
        backend.publish_codes(&cluster, &codes);
        backend.kill_machine(0);
        assert!(backend.restore_machine(0), "fresh actor must answer a ping");
        let router = backend.query_router();
        let q = BinaryCodes::from_bools(&[vec![false, false]]);
        let response = router.knn(&q, 3);
        assert!(response.is_degraded(), "lost shard cannot come back alone");
        assert_eq!(
            response.coverage,
            Coverage {
                shards_answered: 1,
                shards_total: 2
            }
        );
        backend.publish_codes(&cluster, &codes);
        let response = router.knn(&q, 3);
        assert!(response.coverage.is_full(), "{:?}", response.coverage);
        assert_eq!(response.answers, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn wedged_actor_drop_is_bounded() {
        // Satellite regression: dropping the backend used to join every
        // actor unconditionally, so a wedged actor blocked the drop for as
        // long as it stayed wedged. The drop path must abandon it after the
        // shutdown grace instead.
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &BinaryCodes::zeros(8, 2));
        assert!(backend.wedge_machine(0, Duration::from_secs(10)));
        let start = Instant::now();
        drop(backend);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not wait out a 10s wedge (took {:?})",
            start.elapsed()
        );
    }

    #[test]
    fn fleet_status_reports_replication_health() {
        let cluster = SimCluster::new(shards(3, 12), CostModel::distributed());
        let backend = ServerBackend::new().with_replication(2);
        backend.publish_codes(&cluster, &BinaryCodes::zeros(12, 2));
        let status = backend.fleet_status();
        assert_eq!(status.target_replicas, 2);
        assert_eq!(status.live_machines, 3);
        assert_eq!(status.dead_machines, 0);
        assert_eq!(status.shards, 3);
        assert!(status.is_fully_replicated());
        backend.kill_machine(2);
        backend.rebalance();
        let status = backend.fleet_status();
        assert_eq!(status.live_machines, 2);
        assert_eq!(status.dead_machines, 1);
        assert!(status.is_fully_replicated(), "{status:?}");
    }

    #[test]
    fn z_step_refreshes_the_served_codes() {
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        let initial = BinaryCodes::zeros(8, 2);
        backend.publish_codes(&cluster, &initial);
        let router = backend.query_router();
        // Flip point 5's code to (1, 1); a (1, 1) query must now rank it first.
        backend.run_z_step(&cluster, 1, |_, shard| {
            shard
                .iter()
                .filter(|&&n| n == 5)
                .map(|&n| ZUpdate {
                    point: n,
                    code: vec![1.0, 1.0],
                })
                .collect()
        });
        let q = BinaryCodes::from_bools(&[vec![true, true]]);
        assert_eq!(router.knn(&q, 1).expect_full(), vec![vec![5]]);
    }

    #[test]
    fn pre_faulted_envelopes_are_routed_around_the_dead_machine() {
        // Drive run_w_step with envelopes... the backend seeds fresh
        // envelopes, so exercise the routing at the protocol level instead: a
        // ring where one machine is never pending still trains the submodel on
        // the remaining machines (relay hops, no update). Machine 1 is taken
        // out of the ring (streaming removal) — the route must skip it without
        // panicking and without updating on it.
        let mut cluster = SimCluster::new(shards(3, 9), CostModel::distributed());
        cluster.remove_machine(1);
        let seen = Mutex::new(Vec::new());
        let backend = ServerBackend::new();
        let (result, stats) = backend.run_w_step(
            &cluster,
            vec![0usize; 2],
            2,
            1,
            |sub, machine, _| {
                *sub += 1;
                seen.lock().push(machine);
            },
            None,
        );
        assert_eq!(result, vec![4, 4], "2 epochs x 2 live machines");
        assert_eq!(stats.update_visits, 8);
        assert!(!seen.lock().contains(&1), "removed machine must not update");
    }

    #[test]
    fn mismatched_query_width_yields_empty_answers_not_a_dead_actor() {
        // Regression: a width-mismatched query used to panic inside the
        // detached serving actor, leaving every later call blocked forever.
        // The shard is resident, so it counts as answered (empty), with full
        // coverage — retrying another replica could not do better.
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &BinaryCodes::zeros(8, 4));
        let router = backend.query_router();
        let wrong_width = BinaryCodes::from_bools(&[vec![true, false]]);
        assert_eq!(
            router.knn(&wrong_width, 3).expect_full(),
            vec![Vec::<usize>::new()]
        );
        // The fleet is still alive and serves well-formed queries.
        let ok = BinaryCodes::from_bools(&[vec![false, false, false, false]]);
        assert_eq!(router.knn(&ok, 1).expect_full(), vec![vec![0]]);
    }

    #[test]
    fn streamed_point_codes_are_served_incrementally() {
        // publish_point_codes must reach the (possibly brand-new) machine's
        // actor without a full fleet reload.
        let cluster = SimCluster::new(shards(2, 8), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &BinaryCodes::zeros(8, 2));
        let mut all = BinaryCodes::zeros(8, 2);
        all.push_code(&[1.0, 1.0]); // point 8 joins machine 2 (a new actor)
        backend.publish_point_codes(2, &[8], &all);
        let router = backend.query_router();
        assert_eq!(router.n_machines(), 3);
        let q = BinaryCodes::from_bools(&[vec![true, true]]);
        assert_eq!(router.knn(&q, 1).expect_full(), vec![vec![8]]);
    }

    #[test]
    fn router_on_an_empty_fleet_returns_empty_lists() {
        let backend = ServerBackend::new();
        let router = backend.query_router();
        let q = BinaryCodes::from_bools(&[vec![true, false]]);
        let response = router.knn(&q, 3);
        assert!(response.coverage.is_full(), "0/0 is vacuously full");
        assert_eq!(response.answers, vec![Vec::<usize>::new()]);
        assert_eq!(router.n_machines(), 0);
    }

    #[test]
    fn knn_shared_does_not_copy_the_query_batch() {
        // The satellite regression: `knn` used to deep-clone the batch on
        // every call. The Arc-accepting entry must share the caller's
        // allocation across the fan-out and release it afterwards.
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        let backend = ServerBackend::new();
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(17);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(30, 8, 0.0, 1.0, &mut rng));
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            4, 8, 0.0, 1.0, &mut rng,
        )));
        let shared = router.knn_shared(&queries, 5);
        assert_eq!(shared, router.knn(&queries, 5));
        assert_eq!(
            shared.expect_full(),
            parmac_retrieval::hamming_knn(&db, &queries, 5)
        );
        // Every fan-out clone has been released: the caller's Arc is unique
        // again, so no machine kept (or copied into) a private batch.
        assert_eq!(Arc::strong_count(&queries), 1);
    }

    #[test]
    fn scan_workers_do_not_change_answers() {
        // Query-partitioned multi-worker probing must stay bitwise identical
        // to the serial scan. MIN_QUERIES_PER_SCAN_TASK would keep a small
        // batch serial, so use a batch large enough to actually split.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let n = 3000;
        let batch = 3 * (MIN_QUERIES_PER_SCAN_TASK * 2);
        let mut rng = SmallRng::seed_from_u64(18);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(n, 16, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(batch, 16, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, n), CostModel::distributed());
        let reference = parmac_retrieval::hamming_knn(&db, &queries, 40);
        let shared = Arc::new(queries.clone());
        let mut budgeted_reference = None;
        for workers in [1usize, 3] {
            let backend = ServerBackend::new().with_scan_workers(workers);
            backend.publish_codes(&cluster, &db);
            let router = backend.query_router();
            assert_eq!(
                router.knn(&queries, 40).expect_full(),
                reference,
                "workers={workers}"
            );
            // The split must also leave budgeted answers independent of the
            // worker count: probe order is per query, not per worker.
            let budgeted = router.knn_budgeted(&shared, 40, 1);
            let pinned = budgeted_reference.get_or_insert_with(|| budgeted.clone());
            assert_eq!(&budgeted, pinned, "budgeted, workers={workers}");
        }
    }

    #[test]
    fn budgeted_queries_saturate_to_the_exact_answer() {
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(23);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(240, 16, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 240), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            5, 16, 0.0, 1.0, &mut rng,
        )));
        let exact = parmac_retrieval::hamming_knn(&db, &queries, 9);
        // A budget covering every bucket (2^16 is a safe upper bound here)
        // must equal exact mode, both direct and through admission.
        assert_eq!(
            router.knn_budgeted(&queries, 9, 1 << 16).expect_full(),
            exact
        );
        assert_eq!(
            router
                .knn_admitted_budgeted(Arc::clone(&queries), 9, 1 << 16)
                .expect("admitted")
                .expect_full(),
            exact
        );
        // A small budget still returns well-formed sorted hit lists with at
        // most k entries, each a true database point.
        for answers in router.knn_budgeted(&queries, 9, 1).answers {
            assert!(answers.len() <= 9);
            for &id in &answers {
                assert!(id < db.len());
            }
        }
    }

    #[test]
    fn admitted_queries_match_direct_fanout_and_are_accounted() {
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(19);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            5, 12, 0.0, 1.0, &mut rng,
        )));
        for k in [1usize, 7, 60] {
            assert_eq!(
                router
                    .knn_admitted(Arc::clone(&queries), k)
                    .expect("admitted")
                    .expect_full(),
                parmac_retrieval::hamming_knn(&db, &queries, k),
                "k={k}"
            );
        }
        let stats = router.serving_stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.answered, 3);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.submitted, stats.answered + stats.shed);
    }

    #[test]
    fn coalesced_submissions_with_different_k_get_their_own_topk() {
        // Force coalescing deterministically: saturate the admission loop
        // with a slow first batch is racy, so instead drive serve_coalesced
        // directly through the public API with many concurrent clients and
        // verify every answer against the single-process reference.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(20);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(90, 10, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 90), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let batches: Vec<(Arc<BinaryCodes>, usize)> = (0..12)
            .map(|i| {
                let q = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
                    1 + i % 3,
                    10,
                    0.0,
                    1.0,
                    &mut rng,
                )));
                (q, 1 + 7 * (i % 4))
            })
            .collect();
        thread::scope(|scope| {
            for (q, k) in &batches {
                let router = router.clone();
                let db = &db;
                scope.spawn(move || {
                    let got = router
                        .knn_admitted(Arc::clone(q), *k)
                        .expect("default queue is large enough");
                    assert_eq!(
                        got.expect_full(),
                        parmac_retrieval::hamming_knn(db, q, *k),
                        "k={k}"
                    );
                });
            }
        });
        let stats = router.serving_stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.answered, 12);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn saturated_admission_queue_sheds_explicitly_and_accounts_every_query() {
        // Tiny queue + many concurrent clients: some submissions must be
        // shed with an explicit error; every answered one must be exact; and
        // the counters must balance (answered + shed == submitted).
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(21);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(80, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(4, 80), CostModel::distributed());
        let backend = ServerBackend::new().with_admission_config(AdmissionConfig {
            queue_capacity: 1,
            max_batch: 4,
        });
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let queries = Arc::new(BinaryCodes::from_matrix(&Mat::random_uniform(
            2, 12, 0.0, 1.0, &mut rng,
        )));
        let reference = parmac_retrieval::hamming_knn(&db, &queries, 9);
        let clients = 8usize;
        let per_client = 25usize;
        let (answered, shed) = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let router = router.clone();
                    let queries = Arc::clone(&queries);
                    let reference = &reference;
                    scope.spawn(move || {
                        let (mut ok, mut shed) = (0u64, 0u64);
                        for _ in 0..per_client {
                            match router.knn_admitted(Arc::clone(&queries), 9) {
                                Ok(response) => {
                                    assert!(response.coverage.is_full());
                                    assert_eq!(
                                        &response.answers, reference,
                                        "answered must be exact"
                                    );
                                    ok += 1;
                                }
                                Err(AdmissionError::Shed { queue_capacity }) => {
                                    assert_eq!(queue_capacity, 1);
                                    shed += 1;
                                }
                                Err(AdmissionError::Closed) => {
                                    panic!("admission loop died mid-test")
                                }
                            }
                        }
                        (ok, shed)
                    })
                })
                .collect();
            handles.into_iter().fold((0u64, 0u64), |acc, h| {
                let (ok, shed) = h.join().expect("client thread");
                (acc.0 + ok, acc.1 + shed)
            })
        });
        let stats = router.serving_stats();
        assert_eq!(stats.submitted, (clients * per_client) as u64);
        assert_eq!(stats.answered, answered);
        assert_eq!(stats.shed, shed);
        assert_eq!(
            stats.submitted,
            stats.answered + stats.shed,
            "every query accounted for: {stats:?}"
        );
        assert!(stats.batches >= 1);
    }

    #[test]
    fn admitted_path_on_an_empty_fleet_returns_empty_lists() {
        let backend = ServerBackend::new();
        let router = backend.query_router();
        let q = Arc::new(BinaryCodes::from_bools(&[vec![true, false]]));
        let response = router.knn_admitted(q, 3).expect("admitted");
        assert!(response.coverage.is_full(), "0/0 is vacuously full");
        assert_eq!(response.answers, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn server_exposes_name_and_cost() {
        let backend = ServerBackend::new().with_cost_model(CostModel::shared_memory());
        assert_eq!(backend.name(), "server");
        assert_eq!(backend.cost_model(), CostModel::shared_memory());
        assert_eq!(
            ServerBackend::default().cost_model(),
            CostModel::distributed()
        );
    }

    /// Fetches `(points, codes, seq)` for `shard` from `machine`'s actor.
    fn fetch_shard(
        fleet: &Arc<Fleet>,
        machine: usize,
        shard: usize,
    ) -> Option<(Vec<usize>, BinaryCodes, u64)> {
        let (tx, rx) = unbounded();
        fleet
            .send_if_resident(machine, MachineMsg::FetchShard { shard, reply: tx })
            .ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok().flatten()
    }

    #[test]
    fn stale_install_replica_cannot_roll_back_a_newer_publish() {
        // Regression for the lock that used to serialise publishes against
        // the rebalancer: ordering replaced it. A replica snapshot fetched
        // before a publish (low seq) must be rejected by an actor that
        // already holds the publish's authoritative data (higher seq).
        let fleet = Arc::new(Fleet::default());
        let mut v1 = BinaryCodes::zeros(2, 8);
        v1.set_code(0, &[1.0; 8]);
        let mut v2 = BinaryCodes::zeros(2, 8);
        v2.set_code(1, &[1.0; 8]);

        fleet.send_spawning(
            0,
            MachineMsg::LoadShard {
                shard: 0,
                points: vec![4, 5],
                codes: v2.clone(),
                seq: 2,
            },
        );
        fleet.send_spawning(
            0,
            MachineMsg::InstallReplica {
                shard: 0,
                points: vec![4, 5],
                codes: v1.clone(),
                seq: 1,
            },
        );
        let (_, codes, seq) = fetch_shard(&fleet, 0, 0).expect("shard hosted");
        assert_eq!(seq, 2, "stale install must not displace the publish");
        assert_eq!(codes, v2);

        // An older LoadShard is equally stale.
        fleet.send_spawning(
            0,
            MachineMsg::LoadShard {
                shard: 0,
                points: vec![4, 5],
                codes: v1.clone(),
                seq: 1,
            },
        );
        let (_, codes, seq) = fetch_shard(&fleet, 0, 0).expect("shard hosted");
        assert_eq!((seq, codes), (2, v2));

        // On a machine with nothing newer the same install is welcome.
        fleet.send_spawning(
            1,
            MachineMsg::InstallReplica {
                shard: 0,
                points: vec![4, 5],
                codes: v1.clone(),
                seq: 1,
            },
        );
        let (_, codes, seq) = fetch_shard(&fleet, 1, 0).expect("shard hosted");
        assert_eq!((seq, codes), (1, v1));
    }

    #[test]
    fn publish_racing_rebalance_converges_to_the_latest_publish() {
        // The old design held `rebalance_lock` across every publish and
        // every rebalance pass. Now they genuinely overlap; seq ordering
        // must still make the newest publish win on every assigned host.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(41);
        let v1 = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let v2 = BinaryCodes::from_matrix(&Mat::random_uniform(60, 12, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(5, 12, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 60), CostModel::distributed());

        let backend = ServerBackend::new().with_replication(2);
        backend.publish_codes(&cluster, &v1);
        backend.kill_machine(1); // give the racing passes real work
        thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..3 {
                    backend.rebalance();
                }
            });
            backend.publish_codes(&cluster, &v2);
        });
        backend.rebalance();

        let status = backend.fleet_status();
        assert!(status.is_fully_replicated(), "{status:?}");
        // Every assigned host must serve the v2 publish — nothing rolled
        // back by a racing install, nothing left at the v1 seq.
        let assignments = backend.fleet.assignments.lock().clone();
        assert_eq!(assignments.len(), 3);
        for (&shard, hosts) in &assignments {
            let expected: Vec<usize> = cluster.shard(shard).to_vec();
            for &host in hosts {
                let (points, codes, seq) =
                    fetch_shard(&backend.fleet, host, shard).expect("assigned host hosts shard");
                assert_eq!(seq, 2, "shard {shard} on machine {host}");
                assert_eq!(points, expected, "shard {shard} on machine {host}");
                for (row, &point) in expected.iter().enumerate() {
                    assert_eq!(
                        codes.to_f64_row(row),
                        v2.to_f64_row(point),
                        "shard {shard} host {host} point {point}"
                    );
                }
            }
        }
        assert_eq!(
            backend.query_router().knn(&queries, 7).expect_full(),
            parmac_retrieval::hamming_knn(&v2, &queries, 7)
        );
    }

    #[test]
    fn admission_drop_joins_its_loop_without_holding_the_handle_lock() {
        // Regression for the `if let Some(h) = self.handle.lock().take()`
        // scrutinee: under Rust 2021 scoping that guard lived across the
        // bounded join. The drop must complete promptly even when another
        // thread pokes the handle lock concurrently.
        use parmac_linalg::Mat;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(43);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(30, 8, 0.0, 1.0, &mut rng));
        let queries = BinaryCodes::from_matrix(&Mat::random_uniform(2, 8, 0.0, 1.0, &mut rng));
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &db);
        let router = backend.query_router();
        let _ = router.knn_admitted(Arc::new(queries), 3).expect("admitted");
        let started = Instant::now();
        drop(backend);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "drop wedged: {:?}",
            started.elapsed()
        );
    }
}
