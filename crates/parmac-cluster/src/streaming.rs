//! Streaming: adding/removing data and machines between ParMAC steps (§4.3).
//!
//! ParMAC supports two forms of streaming. Within a machine, data can simply
//! be added to or dropped from its local shard (done at the start of a Z
//! step). Across machines, a whole machine (with its pre-loaded shard) can be
//! connected into the ring, or an existing machine disconnected. These
//! operations never move data over the network; they only edit shard index
//! sets and the ring topology, which is what the functions here do.
//!
//! The disjointness checks are hash-based: one `O(N + new)` pass instead of a
//! `Vec::contains` scan per point (`O(N · new)`), which matters in the
//! streaming regime where points arrive continuously.

use crate::topology::RingTopology;
use std::collections::HashSet;

/// Asserts that none of `new_points` is already owned by a shard, in one
/// hashed pass over the existing shards.
fn assert_disjoint(shards: &[Vec<usize>], new_points: &[usize]) {
    let incoming: HashSet<usize> = new_points.iter().copied().collect();
    assert_eq!(
        incoming.len(),
        new_points.len(),
        "duplicate point in the batch being added"
    );
    for shard in shards {
        for p in shard {
            assert!(
                !incoming.contains(p),
                "point {p} is already owned by a machine"
            );
        }
    }
}

/// Adds `new_points` (global point indices) to machine `machine`'s shard.
///
/// Mirrors §4.3's within-machine streaming: "Adding data means inserting
/// {(x_n, y_n)} in that machine".
///
/// # Panics
///
/// Panics if `machine` is out of range or any of the points is already owned
/// by some machine (shards must stay disjoint).
pub fn add_data(shards: &mut [Vec<usize>], machine: usize, new_points: &[usize]) {
    assert!(machine < shards.len(), "machine {machine} out of range");
    assert_disjoint(shards, new_points);
    shards[machine].extend_from_slice(new_points);
}

/// Removes the given points from machine `machine`'s shard (discarding old
/// data, §4.3). Points not present are ignored.
///
/// # Panics
///
/// Panics if `machine` is out of range.
pub fn remove_data(shards: &mut [Vec<usize>], machine: usize, points: &[usize]) {
    assert!(machine < shards.len(), "machine {machine} out of range");
    let drop: HashSet<usize> = points.iter().copied().collect();
    shards[machine].retain(|p| !drop.contains(p));
}

/// Connects a new machine, with its own pre-loaded shard, into the ring after
/// machine `after` (§4.3: "Adding it to the circular topology simply requires
/// connecting it between any two machines"). Returns the new machine's id.
///
/// # Panics
///
/// Panics if `after` is not in the topology or the new shard overlaps an
/// existing one.
pub fn add_machine(
    shards: &mut Vec<Vec<usize>>,
    topology: &mut RingTopology,
    after: usize,
    new_shard: Vec<usize>,
) -> usize {
    assert_disjoint(shards, &new_shard);
    let new_id = shards.len();
    shards.push(new_shard);
    topology.add_machine_after(new_id, after);
    new_id
}

/// Disconnects machine `machine` from the ring (its shard stays allocated but
/// is no longer visited; §4.3: "Removing a machine is easier ... reconnecting
/// machine p−1 → machine p+1 and returning machine p to the cluster").
/// Disconnecting a machine that already left the ring is a no-op.
///
/// # Panics
///
/// Panics if the machine is the last one in the ring.
pub fn remove_machine(topology: &mut RingTopology, machine: usize) {
    topology.remove_machine(machine);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<Vec<usize>>, RingTopology) {
        (
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]],
            RingTopology::new(3),
        )
    }

    #[test]
    fn add_and_remove_data_within_a_machine() {
        let (mut shards, _) = setup();
        add_data(&mut shards, 1, &[9, 10]);
        assert_eq!(shards[1], vec![3, 4, 5, 9, 10]);
        remove_data(&mut shards, 1, &[4, 10]);
        assert_eq!(shards[1], vec![3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn adding_a_point_owned_elsewhere_is_rejected() {
        let (mut shards, _) = setup();
        add_data(&mut shards, 0, &[5]);
    }

    #[test]
    #[should_panic(expected = "duplicate point in the batch")]
    fn adding_a_batch_with_internal_duplicates_is_rejected() {
        let (mut shards, _) = setup();
        add_data(&mut shards, 0, &[9, 9]);
    }

    #[test]
    fn bulk_add_stays_disjoint_checked_and_correct() {
        // 10k-point streaming add: the hashed disjointness check must still
        // reject overlap and accept the disjoint bulk (the old per-point
        // `Vec::contains` scan made this O(N·P) per call).
        let mut shards = vec![(0..5_000).collect::<Vec<usize>>(), vec![]];
        let incoming: Vec<usize> = (5_000..15_000).collect();
        add_data(&mut shards, 1, &incoming);
        assert_eq!(shards[1].len(), 10_000);
        assert_eq!(shards[1][0], 5_000);
        assert_eq!(*shards[1].last().unwrap(), 14_999);
        // One overlapping point in another 10k batch is still caught.
        let overlapping: Vec<usize> = (15_000..25_000).chain([4_999]).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            add_data(&mut shards, 0, &overlapping);
        }));
        assert!(err.is_err(), "overlap must be rejected");
        // And bulk removal drops exactly the requested points.
        let drop: Vec<usize> = (5_000..10_000).collect();
        remove_data(&mut shards, 1, &drop);
        assert_eq!(shards[1].len(), 5_000);
        assert!(shards[1].iter().all(|&p| p >= 10_000));
    }

    #[test]
    fn add_machine_extends_ring_and_shards() {
        let (mut shards, mut topo) = setup();
        let id = add_machine(&mut shards, &mut topo, 1, vec![9, 10, 11]);
        assert_eq!(id, 3);
        assert_eq!(topo.n_machines(), 4);
        assert_eq!(topo.successor(1), Some(3));
        assert_eq!(topo.successor(3), Some(2));
        assert_eq!(shards[3], vec![9, 10, 11]);
    }

    #[test]
    fn remove_machine_keeps_its_shard_but_drops_it_from_the_ring() {
        let (mut shards, mut topo) = setup();
        remove_machine(&mut topo, 1);
        assert_eq!(topo.n_machines(), 2);
        assert!(!topo.contains(1));
        // The shard is untouched (the data simply is not visited any more).
        assert_eq!(shards[1], vec![3, 4, 5]);
        // And can later be re-added as a "new" machine's data by reconnecting.
        let taken = std::mem::take(&mut shards[1]);
        let id = add_machine(&mut shards, &mut topo, 0, taken);
        assert!(topo.contains(id));
    }

    #[test]
    fn removing_unknown_data_is_a_noop() {
        let (mut shards, _) = setup();
        remove_data(&mut shards, 0, &[99]);
        assert_eq!(shards[0], vec![0, 1, 2]);
    }
}
