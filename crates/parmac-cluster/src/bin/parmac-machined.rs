//! The ParMAC cross-process worker daemon.
//!
//! Spawned by `parmac_cluster::process::FleetLauncher`, one process per ring
//! machine:
//!
//! ```text
//! parmac-machined --machine <id> --dir <fleet socket directory>
//! ```
//!
//! The worker binds `<dir>/m<id>.sock` for ring traffic, connects to
//! `<dir>/coord.sock`, and serves the §4.3 ring protocol until the
//! coordinator sends `Shutdown` (or disappears — an orphaned worker exits
//! rather than lingering). See [`parmac_cluster::process::run_machined`].

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut machine: Option<usize> = None;
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => machine = args.next().and_then(|v| v.parse().ok()),
            "--dir" => dir = args.next().map(PathBuf::from),
            _ => {}
        }
    }
    let (Some(machine), Some(dir)) = (machine, dir) else {
        eprintln!("usage: parmac-machined --machine <id> --dir <fleet socket directory>");
        return ExitCode::from(2);
    };
    let code = parmac_cluster::process::run_machined(machine, &dir);
    ExitCode::from(u8::try_from(code).unwrap_or(1))
}
