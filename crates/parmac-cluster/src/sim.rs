//! Deterministic synchronous-tick simulator of the ParMAC cluster.
//!
//! The simulator executes the W and Z steps of §4.1 exactly as the
//! synchronous description does (fig. 3): at every clock tick each machine
//! updates the group of submodels currently in its queue with its local data
//! shard and passes the group to its successor; after `e·P` ticks a final
//! communication-only lap distributes the finished submodels. Computation and
//! communication are charged to a [`CostModel`], so the simulator reports both
//! the *result* of the distributed optimisation (bit-for-bit what a real
//! cluster computing in this order would produce) and the *simulated runtime*
//! used for the speedup experiments (fig. 10, fig. 13).
//!
//! Machine failures (§4.3) can be injected: at a chosen tick a machine dies,
//! the submodels in its queue lose that tick's update (they revert to the copy
//! held by the predecessor), the ring is reconnected around it, and its data
//! shard is no longer visited.

use crate::cost::{CostModel, StepTimings, WStepStats, ZStepStats};
use crate::topology::RingTopology;
use rand::Rng;
use std::time::Instant;

/// A machine failure to inject during a W step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The machine that fails.
    pub machine: usize,
    /// The W-step tick (0-based) at whose start the failure happens.
    pub at_tick: usize,
}

/// A simulated cluster: machines with data shards, relative speeds, a ring
/// topology and a cost model.
///
/// The simulator is generic over the submodel type and the update work, so it
/// knows nothing about binary autoencoders; `parmac-core` passes closures that
/// perform the actual SGD updates and Z-step optimisations.
#[derive(Debug, Clone)]
pub struct SimCluster {
    shards: Vec<Vec<usize>>,
    speeds: Vec<f64>,
    cost: CostModel,
    topology: RingTopology,
}

impl SimCluster {
    /// Creates a cluster with one shard per machine, unit speeds and the given
    /// cost model. The initial topology is the identity ring.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<Vec<usize>>, cost: CostModel) -> Self {
        assert!(!shards.is_empty(), "need at least one machine");
        let speeds = vec![1.0; shards.len()];
        let topology = RingTopology::new(shards.len());
        SimCluster {
            shards,
            speeds,
            cost,
            topology,
        }
    }

    /// Sets per-machine relative speeds (see load balancing, §4.3).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the number of machines or any speed
    /// is not positive.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.shards.len(), "one speed per machine");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        self.speeds = speeds;
        self
    }

    /// Number of machines (including any that later fail).
    pub fn n_machines(&self) -> usize {
        self.shards.len()
    }

    /// The data shard (point indices) owned by `machine`.
    pub fn shard(&self, machine: usize) -> &[usize] {
        &self.shards[machine]
    }

    /// The relative speed of `machine` (see load balancing, §4.3).
    pub fn speed(&self, machine: usize) -> f64 {
        self.speeds[machine]
    }

    /// The current ring topology.
    pub fn topology(&self) -> &RingTopology {
        &self.topology
    }

    /// Replaces the ring topology (e.g. after removing a machine for
    /// streaming).
    pub fn set_topology(&mut self, topology: RingTopology) {
        self.topology = topology;
    }

    /// Re-randomises the ring (cross-machine shuffling between epochs, §4.3).
    /// Only machines currently in the topology take part, so previously
    /// removed machines stay removed and added machines stay in.
    pub fn shuffle_topology<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        use rand::seq::SliceRandom;
        let mut order = self.topology.machines().to_vec();
        order.shuffle(rng);
        self.topology = RingTopology::from_order(order);
    }

    /// Adds new data points to an existing machine's shard (within-machine
    /// streaming, §4.3). The points must not already belong to any shard.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range or a point is already owned.
    pub fn add_points_to_shard(&mut self, machine: usize, points: &[usize]) {
        assert!(
            machine < self.shards.len(),
            "machine {machine} out of range"
        );
        crate::streaming::add_data(&mut self.shards, machine, points);
    }

    /// Connects a new machine with its own pre-loaded shard into the ring
    /// after machine `after` (across-machine streaming, §4.3). Returns the new
    /// machine's id.
    ///
    /// # Panics
    ///
    /// Panics if `after` is not in the ring or the shard overlaps an existing
    /// one.
    pub fn add_machine(&mut self, after: usize, shard: Vec<usize>, speed: f64) -> usize {
        assert!(speed > 0.0, "machine speed must be positive");
        let id = crate::streaming::add_machine(&mut self.shards, &mut self.topology, after, shard);
        self.speeds.push(speed);
        id
    }

    /// Disconnects a machine from the ring (fault recovery or streaming,
    /// §4.3). Its shard stays allocated but is no longer visited by either
    /// step. Disconnecting a machine that already left the ring is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the machine is the last one in the ring.
    pub fn remove_machine(&mut self, machine: usize) {
        self.topology.remove_machine(machine);
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs one distributed W step.
    ///
    /// * `submodels` — the `M` submodels; updated in place.
    /// * `epochs` — number of passes `e` over the full (distributed) dataset.
    /// * `params_per_submodel` — parameter count, used only for the
    ///   bytes-communicated statistic.
    /// * `update` — called as `update(&mut submodel, machine, shard)` for every
    ///   (submodel, machine) visit; it should perform one pass of stochastic
    ///   updates of that submodel over the shard.
    /// * `fault` — optional machine failure to inject.
    ///
    /// Returns the per-step statistics (simulated time, messages, bytes).
    pub fn run_w_step<S, F>(
        &self,
        submodels: &mut [S],
        epochs: usize,
        params_per_submodel: usize,
        mut update: F,
        fault: Option<Fault>,
    ) -> WStepStats
    where
        F: FnMut(&mut S, usize, &[usize]),
    {
        assert!(epochs > 0, "need at least one epoch");
        let start = Instant::now();
        let mut ring: Vec<usize> = self.topology.machines().to_vec();
        let p_initial = ring.len();
        let m = submodels.len();

        // Group g initially sits in the queue of ring position g % P.
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); p_initial];
        for g in 0..m {
            queues[g % p_initial].push(g);
        }

        let mut stats = WStepStats::default();
        let mut timings = StepTimings::default();
        let total_update_ticks = epochs * p_initial;

        for tick in 0..total_update_ticks {
            // Inject the fault at the start of its tick: the machine's queue
            // is handed (un-updated) to its successor and the machine leaves
            // the ring, so the "previously updated copy" is what survives.
            if let Some(f) = fault {
                if f.at_tick == tick && ring.len() > 1 {
                    if let Some(pos) = ring.iter().position(|&mach| mach == f.machine) {
                        let orphans = std::mem::take(&mut queues[pos]);
                        let succ = (pos + 1) % ring.len();
                        queues[succ].extend(orphans);
                        ring.remove(pos);
                        queues.remove(pos);
                    }
                }
            }
            let p_now = ring.len();
            // All machines compute on their queued submodels in parallel; the
            // tick lasts as long as the slowest machine.
            let mut tick_compute: f64 = 0.0;
            let mut tick_comm: f64 = 0.0;
            for (pos, &machine) in ring.iter().enumerate() {
                let shard = &self.shards[machine];
                let queue = &queues[pos];
                for &sub in queue {
                    update(&mut submodels[sub], machine, shard);
                    stats.update_visits += 1;
                }
                let compute =
                    queue.len() as f64 * shard.len() as f64 * self.cost.w_compute_per_point
                        / self.speeds[machine];
                let comm = queue.len() as f64 * self.cost.w_comm_per_submodel;
                stats.messages_sent += queue.len();
                stats.bytes_sent += queue.len() * params_per_submodel * std::mem::size_of::<f64>();
                tick_compute = tick_compute.max(compute);
                tick_comm = tick_comm.max(comm);
            }
            timings.simulated_compute += tick_compute;
            timings.simulated_comm += tick_comm;
            // Rotate every queue to its successor position.
            let mut rotated: Vec<Vec<usize>> = vec![Vec::new(); p_now];
            for (pos, queue) in queues.drain(..).enumerate() {
                rotated[(pos + 1) % p_now].extend(queue);
            }
            queues = rotated;
        }

        // Final communication-only lap: P−1 hops so that every machine ends up
        // with a copy of every submodel (§4.1). No computation is performed.
        let p_now = ring.len();
        if p_now > 1 {
            for _ in 0..p_now - 1 {
                let mut tick_comm: f64 = 0.0;
                for queue in &queues {
                    tick_comm = tick_comm.max(queue.len() as f64 * self.cost.w_comm_per_submodel);
                    stats.messages_sent += queue.len();
                    stats.bytes_sent +=
                        queue.len() * params_per_submodel * std::mem::size_of::<f64>();
                }
                timings.simulated_comm += tick_comm;
                let mut rotated: Vec<Vec<usize>> = vec![Vec::new(); p_now];
                for (pos, queue) in queues.drain(..).enumerate() {
                    rotated[(pos + 1) % p_now].extend(queue);
                }
                queues = rotated;
            }
        }

        timings.simulated = timings.simulated_compute + timings.simulated_comm;
        stats.timings = timings.with_wall_clock(start.elapsed());
        stats
    }

    /// Simulated duration of one Z step: the slowest machine dominates the
    /// tick, `max_p (M · N_p · t_r^Z / speed_p)` (eq. 7). The single source of
    /// the Z-step cost formula, shared by [`run_z_step`](Self::run_z_step) and
    /// the [`ClusterBackend`](crate::backend::ClusterBackend) implementations.
    pub fn simulated_z_time(&self, n_submodels: usize) -> f64 {
        self.topology
            .machines()
            .iter()
            .map(|&machine| {
                n_submodels as f64
                    * self.shards[machine].len() as f64
                    * self.cost.z_compute_per_point
                    / self.speeds[machine]
            })
            .fold(0.0, f64::max)
    }

    /// Runs one Z step: every machine updates the coordinates of its local
    /// shard, with no communication at all (§4.1).
    ///
    /// * `n_submodels` — the `M` used by the cost model (`M · N/P · t_r^Z`).
    /// * `update` — called as `update(machine, shard)` once per machine that is
    ///   still in the topology.
    pub fn run_z_step<F>(&self, n_submodels: usize, mut update: F) -> ZStepStats
    where
        F: FnMut(usize, &[usize]),
    {
        let start = Instant::now();
        let mut stats = ZStepStats::default();
        let mut timings = StepTimings::default();
        for &machine in self.topology.machines() {
            let shard = &self.shards[machine];
            update(machine, shard);
            stats.points_updated += shard.len();
        }
        timings.simulated_compute = self.simulated_z_time(n_submodels);
        timings.simulated = timings.simulated_compute;
        stats.timings = timings.with_wall_clock(start.elapsed());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
        let base = n / p;
        (0..p)
            .map(|i| (i * base..(i + 1) * base).collect())
            .collect()
    }

    #[test]
    fn every_submodel_visits_every_machine_once_per_epoch() {
        let cluster = SimCluster::new(shards(4, 40), CostModel::distributed());
        // Track visits as (submodel → machines seen).
        let m = 6;
        let mut visits = vec![vec![0usize; 4]; m];
        let mut submodels: Vec<usize> = (0..m).collect();
        let epochs = 2;
        cluster.run_w_step(
            &mut submodels,
            epochs,
            1,
            |sub, machine, shard| {
                visits[*sub][machine] += 1;
                assert_eq!(shard.len(), 10);
            },
            None,
        );
        for sub_visits in &visits {
            for &v in sub_visits {
                assert_eq!(v, epochs, "each machine visited exactly e times");
            }
        }
    }

    #[test]
    fn update_visit_count_matches_m_times_p_times_e() {
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        let mut submodels = vec![0u8; 7];
        let stats = cluster.run_w_step(&mut submodels, 2, 4, |_, _, _| {}, None);
        assert_eq!(stats.update_visits, 7 * 3 * 2);
        // messages: one per submodel per update tick... plus final lap.
        assert!(stats.messages_sent >= stats.update_visits);
        assert_eq!(
            stats.bytes_sent,
            stats.messages_sent * 4 * std::mem::size_of::<f64>()
        );
    }

    #[test]
    fn simulated_time_scales_down_with_more_machines() {
        // Strong scaling: same total data, more machines → smaller W+Z time.
        let n = 240;
        let m = 16;
        let time_for = |p: usize| {
            let cluster = SimCluster::new(shards(p, n), CostModel::new(1.0, 0.1, 5.0));
            let mut submodels = vec![0u8; m];
            let w = cluster.run_w_step(&mut submodels, 1, 1, |_, _, _| {}, None);
            let z = cluster.run_z_step(m, |_, _| {});
            w.timings.simulated + z.timings.simulated
        };
        let t1 = time_for(1);
        let t4 = time_for(4);
        let t8 = time_for(8);
        assert!(t4 < t1 && t8 < t4, "t1={t1} t4={t4} t8={t8}");
        // Speedup should be near-perfect for P ≤ M with cheap communication.
        assert!(t1 / t4 > 3.0, "speedup {}", t1 / t4);
    }

    #[test]
    fn z_step_touches_every_point_exactly_once() {
        let cluster = SimCluster::new(shards(5, 50), CostModel::distributed());
        let mut seen = vec![0usize; 50];
        let stats = cluster.run_z_step(8, |_, shard| {
            for &i in shard {
                seen[i] += 1;
            }
        });
        assert_eq!(stats.points_updated, 50);
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn fault_skips_failed_machine_after_the_fault_tick() {
        let cluster = SimCluster::new(shards(4, 40), CostModel::distributed());
        let mut submodels = vec![(); 4];
        let mut visits_to_failed_after = 0usize;
        let mut tick_counter = [0usize; 4]; // visits per submodel to track progress
        let fault = Fault {
            machine: 2,
            at_tick: 1,
        };
        cluster.run_w_step(
            &mut submodels,
            2,
            1,
            |_, machine, _| {
                // After the fault tick the failed machine must never be used.
                // We can't see the tick here directly, but we can count: with
                // the fault at tick 1, machine 2 may appear only in tick 0.
                if machine == 2 {
                    visits_to_failed_after += 1;
                }
                tick_counter[machine] += 1;
            },
            Some(fault),
        );
        // Machine 2 hosted exactly one group in tick 0, so it is visited at
        // most once per submodel in that single tick.
        assert!(
            visits_to_failed_after <= 1,
            "machine 2 used {visits_to_failed_after} times after failing"
        );
    }

    #[test]
    fn fault_does_not_lose_submodels() {
        let cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        let mut submodels = vec![0usize; 6];
        let fault = Fault {
            machine: 1,
            at_tick: 0,
        };
        let stats = cluster.run_w_step(
            &mut submodels,
            2,
            1,
            |s, _, _| {
                *s += 1;
            },
            Some(fault),
        );
        // Every submodel still received updates (from the surviving machines).
        assert!(submodels.iter().all(|&c| c > 0));
        assert!(stats.update_visits > 0);
    }

    #[test]
    fn heterogeneous_speeds_change_simulated_time() {
        let slow = SimCluster::new(shards(2, 20), CostModel::new(1.0, 0.0, 1.0))
            .with_speeds(vec![1.0, 1.0]);
        let fast = SimCluster::new(shards(2, 20), CostModel::new(1.0, 0.0, 1.0))
            .with_speeds(vec![1.0, 10.0]);
        let mut sub_a = vec![(); 2];
        let mut sub_b = vec![(); 2];
        let ta = slow.run_w_step(&mut sub_a, 1, 1, |_, _, _| {}, None);
        let tb = fast.run_w_step(&mut sub_b, 1, 1, |_, _, _| {}, None);
        // The slowest machine dominates: speeding up only one machine cannot
        // reduce the tick time below the slow machine's, so the totals match.
        assert!(tb.timings.simulated <= ta.timings.simulated);
    }

    #[test]
    fn shuffled_topology_still_visits_all_machines() {
        let mut cluster = SimCluster::new(shards(4, 16), CostModel::distributed());
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        cluster.shuffle_topology(&mut rng);
        let mut machines_seen = std::collections::HashSet::new();
        let mut submodels = vec![(); 3];
        cluster.run_w_step(
            &mut submodels,
            1,
            1,
            |_, machine, _| {
                machines_seen.insert(machine);
            },
            None,
        );
        assert_eq!(machines_seen.len(), 4);
    }

    #[test]
    fn streaming_points_and_machines() {
        let mut cluster = SimCluster::new(shards(3, 30), CostModel::distributed());
        cluster.add_points_to_shard(1, &[30, 31]);
        assert_eq!(cluster.shard(1).len(), 12);

        let new_id = cluster.add_machine(0, vec![40, 41, 42], 2.0);
        assert_eq!(new_id, 3);
        assert_eq!(cluster.topology().n_machines(), 4);
        assert_eq!(cluster.topology().successor(0), Some(3));

        cluster.remove_machine(2);
        assert_eq!(cluster.topology().n_machines(), 3);
        // The removed machine's shard is no longer visited by the Z step.
        let mut seen = Vec::new();
        cluster.run_z_step(4, |machine, _| seen.push(machine));
        assert!(!seen.contains(&2));
        assert!(seen.contains(&3));
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn streaming_rejects_duplicate_points() {
        let mut cluster = SimCluster::new(shards(2, 10), CostModel::distributed());
        cluster.add_points_to_shard(0, &[7]);
    }

    #[test]
    fn shuffle_topology_preserves_membership_after_removal() {
        let mut cluster = SimCluster::new(shards(5, 25), CostModel::distributed());
        cluster.remove_machine(3);
        let mut rng = rand::rngs::mock::StepRng::new(3, 7);
        cluster.shuffle_topology(&mut rng);
        assert_eq!(cluster.topology().n_machines(), 4);
        assert!(!cluster.topology().contains(3));
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let cluster = SimCluster::new(shards(2, 4), CostModel::distributed());
        let mut submodels = vec![(); 1];
        cluster.run_w_step(&mut submodels, 0, 1, |_, _, _| {}, None);
    }
}
