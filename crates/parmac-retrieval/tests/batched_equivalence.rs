//! Property-based bitwise equivalence of the batched, cache-blocked top-k
//! kernel against its pinned references: the full-sort selection and the PR-2
//! per-query heap scans kept verbatim in `search::reference`.
//!
//! The generators deliberately hit the hard cases: tiny code widths (1-16
//! bits over dozens of points, so distances collide constantly and the
//! `(distance, index)` tie-break decides everything), multi-word codes
//! (`L > 64`, exercising the word-level early-exit), `k ≥ N` (heaps that
//! never fill, so the early-skip bound stays disabled), shuffled
//! non-contiguous global ids (post-streaming shards), and random shard /
//! chunk partitions whose merged top-k must equal the single-process scan.

use parmac_hash::BinaryCodes;
use parmac_retrieval::search::{full_sort_knn, reference};
use parmac_retrieval::{
    hamming_knn, merge_shard_topk, merge_shard_topk_hits, shard_hamming_topk_batched,
    shard_hamming_topk_chunk,
};
use proptest::prelude::*;

/// A database, a query batch (same width) and a `k` that may exceed `N`.
/// Widths up to 130 bits span one to three packed words.
fn instance() -> impl Strategy<Value = (Vec<Vec<bool>>, Vec<Vec<bool>>, usize)> {
    (1usize..50, 1usize..130, 1usize..6).prop_flat_map(|(n, l, b)| {
        (
            prop::collection::vec(prop::collection::vec(any::<bool>(), l), n),
            prop::collection::vec(prop::collection::vec(any::<bool>(), l), b),
            1usize..(2 * n + 2),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batched_knn_is_bitwise_identical_to_both_references(
        inst in instance()
    ) {
        let (db, queries, k) = inst;
        let db = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        let batched = hamming_knn(&db, &queries, k);
        prop_assert_eq!(&batched, &full_sort_knn(&db, &queries, k));
        prop_assert_eq!(&batched, &reference::per_query_heap_knn(&db, &queries, k));
    }

    #[test]
    fn batched_shard_topk_matches_the_per_query_scan_on_shuffled_ids(
        inst in instance(),
        id_seed in 0usize..1000,
    ) {
        let (db, queries, k) = inst;
        let shard = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        // Non-contiguous, shuffled-looking global ids (coprime stride walk:
        // distinct by construction), as a shard looks after streaming.
        let ids: Vec<usize> = (0..shard.len())
            .map(|i| (i * 7919 + id_seed) % 99991)
            .collect();
        prop_assert_eq!(
            shard_hamming_topk_batched(&shard, &ids, &queries, k),
            reference::per_query_shard_topk(&shard, &ids, &queries, k)
        );
    }

    #[test]
    fn merged_shard_topk_equals_single_process_knn(
        inst in instance(),
        cut_a in 0usize..50,
        cut_b in 0usize..50,
    ) {
        let (db, queries, k) = inst;
        let db_codes = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        // Split the database into up to three contiguous shards (possibly
        // empty ones are dropped).
        let n = db.len();
        let (lo, hi) = {
            let a = cut_a % (n + 1);
            let b = cut_b % (n + 1);
            (a.min(b), a.max(b))
        };
        let ranges = [0..lo, lo..hi, hi..n];
        let per_shard: Vec<Vec<Vec<(u32, usize)>>> = ranges
            .iter()
            .filter(|r| !r.is_empty())
            .map(|r| {
                let rows: Vec<Vec<bool>> = db[r.clone()].to_vec();
                let ids: Vec<usize> = r.clone().collect();
                shard_hamming_topk_batched(
                    &BinaryCodes::from_bools(&rows),
                    &ids,
                    &queries,
                    k,
                )
            })
            .collect();
        let reference = hamming_knn(&db_codes, &queries, k);
        for q in 0..queries.len() {
            let lists: Vec<Vec<(u32, usize)>> =
                per_shard.iter().map(|s| s[q].clone()).collect();
            prop_assert_eq!(&merge_shard_topk(&lists, k), &reference[q], "query {}", q);
        }
    }

    #[test]
    fn chunked_scan_merges_to_the_whole_shard_answer(
        inst in instance(),
        n_chunks in 1usize..5,
    ) {
        let (db, queries, k) = inst;
        let shard = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        let ids: Vec<usize> = (0..shard.len()).map(|i| i * 3 + 1).collect();
        let whole = shard_hamming_topk_batched(&shard, &ids, &queries, k);
        let chunk = shard.len().div_ceil(n_chunks);
        let per_chunk: Vec<Vec<Vec<(u32, usize)>>> = (0..n_chunks)
            .filter(|c| c * chunk < shard.len())
            .map(|c| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(shard.len());
                shard_hamming_topk_chunk(&shard, lo..hi, &ids, &queries, k)
            })
            .collect();
        for q in 0..queries.len() {
            let lists: Vec<Vec<(u32, usize)>> =
                per_chunk.iter().map(|c| c[q].clone()).collect();
            prop_assert_eq!(&merge_shard_topk_hits(&lists, k), &whole[q], "query {}", q);
        }
    }
}
