//! Property-based contracts of the multi-probe prefix index against the
//! pinned reference scans.
//!
//! Three contracts (module docs of `index` for the proofs):
//!
//! * **exact mode** (`probe_budget = None`) is bitwise identical to the PR-2
//!   per-query heap scan, including `(distance, index)` tie-breaks — the
//!   generators force tiny widths (constant distance collisions), multi-word
//!   codes (`L > 64`), `k ≥ N`, shuffled non-contiguous global ids, and
//!   requested prefix widths wider than the code;
//! * **budgeted mode** has recall monotone non-decreasing in the probe
//!   budget, and saturates to the exact answer once the budget covers every
//!   occupied bucket;
//! * **incremental upserts** leave the index answering exactly like a fresh
//!   build over the final codes, whatever mix of inserts and overwrites (and
//!   however many delta rebuilds) produced it.

use parmac_hash::BinaryCodes;
use parmac_retrieval::search::reference;
use parmac_retrieval::PrefixIndex;
use proptest::prelude::*;

/// A database, a query batch (same width), a `k` that may exceed `N`, and a
/// requested prefix width that may exceed the code width. Widths up to 130
/// bits span one to three packed words.
fn instance() -> impl Strategy<Value = (Vec<Vec<bool>>, Vec<Vec<bool>>, usize, usize)> {
    (1usize..40, 1usize..130, 1usize..5).prop_flat_map(|(n, l, b)| {
        (
            prop::collection::vec(prop::collection::vec(any::<bool>(), l), n),
            prop::collection::vec(prop::collection::vec(any::<bool>(), l), b),
            1usize..(2 * n + 2),
            1usize..20,
        )
    })
}

/// Shuffled-looking distinct global ids (coprime stride walk), as a shard
/// looks after streaming.
fn stride_ids(n: usize, seed: usize) -> Vec<usize> {
    (0..n).map(|i| (i * 7919 + seed) % 99991).collect()
}

/// Fraction of a query's exact top-k hits present in the budgeted answer.
fn recall(budgeted: &[(u32, usize)], exact: &[(u32, usize)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hit = exact.iter().filter(|e| budgeted.contains(e)).count();
    hit as f64 / exact.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_multi_probe_is_bitwise_identical_to_the_reference_scan(
        inst in instance(),
        id_seed in 0usize..1000,
    ) {
        let (db, queries, k, bits) = inst;
        let shard = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        let ids = stride_ids(shard.len(), id_seed);
        let index = PrefixIndex::with_prefix_bits(&shard, &ids, bits);
        prop_assert_eq!(
            index.topk_batched(&queries, k, None),
            reference::per_query_shard_topk(&shard, &ids, &queries, k)
        );
    }

    #[test]
    fn budgeted_recall_is_monotone_and_saturates(
        inst in instance(),
        budget_lo in 0usize..6,
        budget_step in 0usize..6,
    ) {
        let (db, queries, k, bits) = inst;
        let shard = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        let ids: Vec<usize> = (0..shard.len()).collect();
        let index = PrefixIndex::with_prefix_bits(&shard, &ids, bits);
        let exact = index.topk_batched(&queries, k, None);
        let lo = index.topk_batched(&queries, k, Some(budget_lo));
        let hi = index.topk_batched(&queries, k, Some(budget_lo + budget_step));
        for q in 0..queries.len() {
            let r_lo = recall(&lo[q], &exact[q]);
            let r_hi = recall(&hi[q], &exact[q]);
            prop_assert!(
                r_hi >= r_lo,
                "query {}: recall {} at budget {} fell below {} at budget {}",
                q, r_hi, budget_lo + budget_step, r_lo, budget_lo
            );
        }
        // A budget covering every occupied bucket is exact mode.
        prop_assert_eq!(
            index.topk_batched(&queries, k, Some(index.occupied_buckets())),
            exact
        );
    }

    #[test]
    fn incremental_upserts_match_a_fresh_build(
        inst in instance(),
        overwrites in prop::collection::vec((0usize..40, prop::collection::vec(any::<bool>(), 130)), 0..30),
    ) {
        let (db, queries, k, bits) = inst;
        let l = db[0].len();
        let shard = BinaryCodes::from_bools(&db);
        let queries = BinaryCodes::from_bools(&queries);
        // Seed the index with the first half of the shard, stream in the
        // rest, then overwrite random rows — some moving buckets, some not.
        let half = shard.len() / 2;
        let seed_rows: Vec<Vec<bool>> = db[..half].to_vec();
        let seed_ids: Vec<usize> = (0..half).collect();
        let mut index = if half == 0 {
            PrefixIndex::with_prefix_bits(&BinaryCodes::zeros(0, l), &[], bits)
        } else {
            PrefixIndex::with_prefix_bits(&BinaryCodes::from_bools(&seed_rows), &seed_ids, bits)
        };
        let mut live: Vec<Vec<bool>> = db.clone();
        for row in half..shard.len() {
            index.upsert_code(row, &shard, row);
        }
        for (slot, code) in &overwrites {
            let id = slot % live.len();
            let code: Vec<bool> = code[..l].to_vec();
            let as_f64: Vec<f64> = code.iter().map(|&b| f64::from(u8::from(b))).collect();
            index.upsert(id, &as_f64);
            live[id] = code;
        }
        let final_codes = BinaryCodes::from_bools(&live);
        let ids: Vec<usize> = (0..live.len()).collect();
        let fresh = PrefixIndex::with_prefix_bits(&final_codes, &ids, bits);
        prop_assert_eq!(index.len(), fresh.len());
        prop_assert_eq!(
            index.topk_batched(&queries, k, None),
            fresh.topk_batched(&queries, k, None)
        );
    }
}
