//! Multi-probe code-prefix index: sublinear Hamming top-`k` over one shard.
//!
//! The blocked full scan ([`crate::shard_hamming_topk_batched`]) is exact but
//! linear in the shard size. This index makes the common case sublinear while
//! keeping the *same* answer contract, by bucketing codes on their low-`b`-bit
//! prefix and probing buckets in increasing Hamming radius of the query's own
//! prefix:
//!
//! * **Bucketing.** Code `p` lands in bucket `prefix_b(p)` (its low `b` bits,
//!   [`BinaryCodes::prefix_bits`]). Buckets are stored back-to-back in one
//!   bucket-sorted [`BinaryCodes`], so probing a bucket is a contiguous range
//!   scan through the very kernel the full scan uses
//!   ([`search::RangeScanner`](crate::search) — the one choke point both the
//!   exact and the budgeted mode share with the pinned PR-2/PR-5 scans).
//! * **Probe order.** For radius `r = 0, 1, 2, …` the query visits every
//!   bucket whose prefix differs from its own in exactly `r` bits (masks
//!   enumerated in a fixed deterministic order), scanning each through the
//!   shared bounded-heap selection.
//! * **Exact termination.** Dropping bits cannot increase a Hamming
//!   distance, so `dist(q, p) ≥ dist(prefix_b(q), prefix_b(p))`: every code
//!   in a not-yet-probed bucket at radius `≥ r` has full distance `≥ r`.
//!   Once the running k-th distance `bound` satisfies `bound < r`, no
//!   unprobed code can enter the top-`k` — not even by the `(distance,
//!   index)` tie-break, which only lets *equal* distances displace — and the
//!   scan stops with the provably exact answer, bitwise identical to the
//!   full scan.
//! * **Probe budget.** Passing `Some(budget)` instead stops after that many
//!   non-empty buckets, trading recall for throughput. The probe order is
//!   fixed and independent of `k`, so a larger budget probes a superset of
//!   buckets and recall is monotone non-decreasing in the budget (any
//!   candidate that displaces a true top-`k` member is itself a true top-`k`
//!   member).
//!
//! **Incremental refresh.** ParMAC's Z steps rewrite codes in place while the
//! index serves queries. An update whose prefix is unchanged overwrites its
//! row; one that moves buckets is swap-removed from its bucket (the bucket's
//! last live row fills the hole) and appended to a small unsorted *delta
//! region* that every query scans in full — exactness is never lost, only a
//! little speed — until the delta grows past a rebuild threshold and the
//! index recompacts.

use crate::search::{drain_heap, RangeScanner};
use parmac_hash::BinaryCodes;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::ops::Range;

/// Upper limit on the prefix width `b`: 2^16 buckets keep the bucket table
/// around a megabyte per shard while leaving room for million-code shards at
/// the default ~8 codes per bucket.
pub const MAX_PREFIX_BITS: usize = 16;

/// Target mean bucket occupancy of [`PrefixIndex::auto_prefix_bits`].
const TARGET_BUCKET_CODES: usize = 8;

/// The delta region triggers a recompaction when it outgrows
/// `max(REBUILD_MIN_DELTA, live_main / 4)`.
const REBUILD_MIN_DELTA: usize = 64;

/// Where a point's code currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Row of the bucket-sorted main storage.
    Main(usize),
    /// Row of the always-scanned delta region.
    Delta(usize),
}

/// A multi-probe prefix index over one shard's binary codes (module docs for
/// the probe order, the exactness argument and the refresh scheme).
#[derive(Debug, Clone)]
pub struct PrefixIndex {
    prefix_bits: usize,
    n_bits: usize,
    /// Bucket-sorted storage; rows of a bucket past its live length are dead
    /// (left behind by swap-removal) and never scanned.
    codes: BinaryCodes,
    ids: Vec<usize>,
    bucket_start: Vec<usize>,
    bucket_len: Vec<usize>,
    /// Live rows in `codes` (dead rows excluded).
    main_live: usize,
    delta: BinaryCodes,
    delta_ids: Vec<usize>,
    slot_of: HashMap<usize, Slot>,
    rebuilds: usize,
}

impl PrefixIndex {
    /// Builds an index with an automatically chosen prefix width
    /// ([`auto_prefix_bits`](Self::auto_prefix_bits)). Row `i` of `codes` is
    /// the code of global point `ids[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `ids` does not hold one *distinct* id per code.
    pub fn build(codes: &BinaryCodes, ids: &[usize]) -> Self {
        Self::with_prefix_bits(
            codes,
            ids,
            Self::auto_prefix_bits(codes.len(), codes.n_bits()),
        )
    }

    /// The prefix width used by [`build`](Self::build): the smallest `b` with
    /// a mean occupancy of at most [`TARGET_BUCKET_CODES`] codes per bucket,
    /// clamped to `[1, min(MAX_PREFIX_BITS, n_bits)]`.
    pub fn auto_prefix_bits(n_codes: usize, n_bits: usize) -> usize {
        let mut b = 1;
        while b < MAX_PREFIX_BITS && (TARGET_BUCKET_CODES << b) < n_codes {
            b += 1;
        }
        b.min(n_bits).max(1)
    }

    /// Builds an index with an explicit prefix width (clamped to
    /// `[1, min(MAX_PREFIX_BITS, n_bits)]` — asking for a prefix wider than
    /// the code just buckets on the whole code).
    ///
    /// # Panics
    ///
    /// Panics if `ids` does not hold one *distinct* id per code.
    pub fn with_prefix_bits(codes: &BinaryCodes, ids: &[usize], bits: usize) -> Self {
        assert_eq!(ids.len(), codes.len(), "one global id per shard code");
        let b = bits.clamp(1, MAX_PREFIX_BITS).min(codes.n_bits()).max(1);
        let n = codes.len();
        let n_buckets = 1usize << b;
        let mut bucket_len = vec![0usize; n_buckets];
        for i in 0..n {
            bucket_len[codes.prefix_bits(i, b) as usize] += 1;
        }
        let mut bucket_start = vec![0usize; n_buckets];
        let mut acc = 0;
        for (start, len) in bucket_start.iter_mut().zip(&bucket_len) {
            *start = acc;
            acc += len;
        }
        let mut main = BinaryCodes::zeros(n, codes.n_bits());
        let mut main_ids = vec![0usize; n];
        let mut cursor = bucket_start.clone();
        let mut slot_of = HashMap::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            let v = codes.prefix_bits(i, b) as usize;
            let row = cursor[v];
            cursor[v] += 1;
            main.copy_code_from(row, codes, i);
            main_ids[row] = id;
            let previous = slot_of.insert(id, Slot::Main(row));
            assert!(previous.is_none(), "duplicate global id {id}");
        }
        PrefixIndex {
            prefix_bits: b,
            n_bits: codes.n_bits(),
            codes: main,
            ids: main_ids,
            bucket_start,
            bucket_len,
            main_live: n,
            delta: BinaryCodes::zeros(0, codes.n_bits()),
            delta_ids: Vec::new(),
            slot_of,
            rebuilds: 0,
        }
    }

    /// Number of indexed codes.
    pub fn len(&self) -> usize {
        self.main_live + self.delta.len()
    }

    /// Returns `true` if no codes are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per indexed code.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// The effective prefix width `b`.
    pub fn prefix_bits(&self) -> usize {
        self.prefix_bits
    }

    /// Number of buckets (`2^b`).
    pub fn n_buckets(&self) -> usize {
        self.bucket_len.len()
    }

    /// Number of non-empty buckets: a probe budget of at least this many
    /// buckets is equivalent to exact mode.
    pub fn occupied_buckets(&self) -> usize {
        self.bucket_len.iter().filter(|&&len| len > 0).count()
    }

    /// Codes currently in the always-scanned delta region.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// How many times the index has recompacted its delta region.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Inserts or overwrites the code of global point `id` from a 0/1 slice
    /// (the Z-step update representation).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n_bits()`.
    pub fn upsert(&mut self, id: usize, bits: &[f64]) {
        let mut one = BinaryCodes::zeros(1, self.n_bits);
        one.set_code(0, bits);
        self.upsert_code(id, &one, 0);
    }

    /// Inserts or overwrites the code of global point `id` with row `row` of
    /// `src`. Same-prefix updates rewrite in place; bucket-moving updates and
    /// new points go through the delta region (module docs).
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ or `row` is out of range.
    pub fn upsert_code(&mut self, id: usize, src: &BinaryCodes, row: usize) {
        assert_eq!(src.n_bits(), self.n_bits, "bit-width mismatch");
        let new_prefix = src.prefix_bits(row, self.prefix_bits) as usize;
        match self.slot_of.get(&id).copied() {
            Some(Slot::Main(r)) => {
                let old_prefix = self.codes.prefix_bits(r, self.prefix_bits) as usize;
                if old_prefix == new_prefix {
                    self.codes.copy_code_from(r, src, row);
                    return;
                }
                // Swap-remove from the old bucket: the bucket's last live row
                // fills the hole, the freed row goes dead.
                let last = self.bucket_start[old_prefix] + self.bucket_len[old_prefix] - 1;
                if last != r {
                    self.codes.copy_code_within(last, r);
                    let moved = self.ids[last];
                    self.ids[r] = moved;
                    self.slot_of.insert(moved, Slot::Main(r));
                }
                self.bucket_len[old_prefix] -= 1;
                self.main_live -= 1;
                self.push_delta(id, src, row);
            }
            Some(Slot::Delta(d)) => {
                self.delta.copy_code_from(d, src, row);
            }
            None => {
                self.push_delta(id, src, row);
            }
        }
    }

    fn push_delta(&mut self, id: usize, src: &BinaryCodes, row: usize) {
        let d = self.delta.len();
        self.delta.push_code_from(src, row);
        self.delta_ids.push(id);
        self.slot_of.insert(id, Slot::Delta(d));
        if self.delta.len() > REBUILD_MIN_DELTA.max(self.main_live / 4) {
            self.rebuild();
        }
    }

    /// Recompacts every live code (main buckets then delta, in storage
    /// order) into a fresh bucket-sorted index with the same prefix width.
    fn rebuild(&mut self) {
        let total = self.len();
        let mut gathered = BinaryCodes::zeros(total, self.n_bits);
        let mut gathered_ids = Vec::with_capacity(total);
        let mut cursor = 0;
        for (&start, &len) in self.bucket_start.iter().zip(&self.bucket_len) {
            for r in start..start + len {
                gathered.copy_code_from(cursor, &self.codes, r);
                gathered_ids.push(self.ids[r]);
                cursor += 1;
            }
        }
        for d in 0..self.delta.len() {
            gathered.copy_code_from(cursor, &self.delta, d);
            gathered_ids.push(self.delta_ids[d]);
            cursor += 1;
        }
        let rebuilds = self.rebuilds + 1;
        *self = PrefixIndex::with_prefix_bits(&gathered, &gathered_ids, self.prefix_bits);
        self.rebuilds = rebuilds;
    }

    /// Batched top-`k` over the whole query batch: for each query, the `k`
    /// indexed codes with the smallest Hamming distance as `(distance,
    /// global id)` pairs sorted ascending. `probe_budget = None` is exact
    /// mode — bitwise identical to
    /// [`shard_hamming_topk_batched`](crate::shard_hamming_topk_batched) over
    /// the same codes; `Some(budget)` stops each query after `budget`
    /// non-empty buckets (module docs for both contracts).
    ///
    /// # Panics
    ///
    /// Panics if the code widths differ or `k == 0`.
    pub fn topk_batched(
        &self,
        queries: &BinaryCodes,
        k: usize,
        probe_budget: Option<usize>,
    ) -> Vec<Vec<(u32, usize)>> {
        self.topk_batched_range(queries, 0..queries.len(), k, probe_budget)
    }

    /// [`topk_batched`](Self::topk_batched) over a contiguous sub-range of
    /// the query batch — the unit of work a scan worker takes when a machine
    /// splits a batch across cores. Concatenating the per-range outputs over
    /// a partition of `0..queries.len()` equals the whole-batch call.
    ///
    /// # Panics
    ///
    /// Panics if the code widths differ, `k == 0`, or `q_rows` exceeds the
    /// batch.
    pub fn topk_batched_range(
        &self,
        queries: &BinaryCodes,
        q_rows: Range<usize>,
        k: usize,
        probe_budget: Option<usize>,
    ) -> Vec<Vec<(u32, usize)>> {
        assert_eq!(
            self.n_bits,
            queries.n_bits(),
            "database and query codes must have the same width"
        );
        assert!(k > 0, "k must be positive");
        assert!(q_rows.end <= queries.len(), "query range exceeds the batch");
        let k = k.min(self.len());
        let b = self.prefix_bits;
        let wpc = self.codes.words_per_code();
        let query_words = queries.as_words();
        let budget = probe_budget.unwrap_or(usize::MAX);
        let mut scanner = RangeScanner::new();
        let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::with_capacity(k.max(1));
        let mut results = Vec::with_capacity(q_rows.len());
        for q in q_rows {
            if k == 0 {
                results.push(Vec::new());
                continue;
            }
            heap.clear();
            let qw = &query_words[q * wpc..(q + 1) * wpc];
            // The delta region is scanned first and in full: it both keeps
            // the answer exact under pending updates and seeds the bound.
            let mut bound = scanner.scan_range(
                self.delta.as_words(),
                wpc,
                0..self.delta.len(),
                Some(&self.delta_ids),
                qw,
                k,
                &mut heap,
                u32::MAX,
            );
            let query_prefix = queries.prefix_bits(q, b);
            let mut probed = 0usize;
            'probing: for radius in 0..=b {
                for mask in GosperMasks::new(b, radius) {
                    // Provably exact: all unprobed buckets are at prefix
                    // radius ≥ radius, so their codes are at distance
                    // ≥ radius > bound and cannot enter the top-k.
                    if bound < radius as u32 {
                        break 'probing;
                    }
                    let v = (query_prefix ^ mask) as usize;
                    if self.bucket_len[v] == 0 {
                        continue;
                    }
                    if probed == budget {
                        break 'probing;
                    }
                    let start = self.bucket_start[v];
                    bound = scanner.scan_range(
                        self.codes.as_words(),
                        wpc,
                        start..start + self.bucket_len[v],
                        Some(&self.ids),
                        qw,
                        k,
                        &mut heap,
                        bound,
                    );
                    probed += 1;
                }
            }
            results.push(drain_heap(&mut heap));
        }
        results
    }
}

/// Enumerates the `b`-bit masks with exactly `ones` set bits in ascending
/// numeric order (Gosper's hack). The order is deterministic, so the probe
/// sequence — and with it each budget's probed-bucket set — is a fixed
/// function of the query prefix alone.
struct GosperMasks {
    next: Option<u64>,
    last: u64,
}

impl GosperMasks {
    fn new(bits: usize, ones: usize) -> Self {
        debug_assert!(ones <= bits && bits < 64);
        let first = (1u64 << ones) - 1;
        GosperMasks {
            next: Some(first),
            last: first << (bits - ones),
        }
    }
}

impl Iterator for GosperMasks {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let mask = self.next?;
        self.next = if mask == self.last {
            None
        } else {
            let lowest = mask & mask.wrapping_neg();
            let ripple = mask + lowest;
            Some((((ripple ^ mask) >> 2) / lowest) | ripple)
        };
        Some(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::reference;
    use parmac_linalg::Mat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_codes(n: usize, bits: usize, seed: u64) -> BinaryCodes {
        let mut rng = SmallRng::seed_from_u64(seed);
        BinaryCodes::from_matrix(&Mat::random_uniform(n, bits, 0.0, 1.0, &mut rng))
    }

    /// Clustered codes: `centers` random codes, each point a center with a
    /// small per-bit flip probability — the near-duplicate regime learned
    /// hashes produce, where prefix probing pays off.
    fn clustered_codes(n: usize, bits: usize, centers: usize, flip: f64, seed: u64) -> BinaryCodes {
        let mut rng = SmallRng::seed_from_u64(seed);
        let center_rows: Vec<Vec<bool>> = (0..centers)
            .map(|_| (0..bits).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let rows: Vec<Vec<bool>> = (0..n)
            .map(|i| {
                center_rows[i % centers]
                    .iter()
                    .map(|&bit| bit ^ rng.gen_bool(flip))
                    .collect()
            })
            .collect();
        BinaryCodes::from_bools(&rows)
    }

    fn recall(exact: &[(u32, usize)], got: &[(u32, usize)]) -> f64 {
        if exact.is_empty() {
            return 1.0;
        }
        let truth: std::collections::HashSet<usize> = exact.iter().map(|&(_, i)| i).collect();
        got.iter().filter(|&&(_, i)| truth.contains(&i)).count() as f64 / exact.len() as f64
    }

    #[test]
    fn gosper_masks_enumerate_fixed_popcount_ascending() {
        let masks: Vec<u64> = GosperMasks::new(4, 2).collect();
        assert_eq!(masks, vec![0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100]);
        assert_eq!(GosperMasks::new(5, 0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(GosperMasks::new(3, 3).collect::<Vec<_>>(), vec![0b111]);
        // All radii together cover every mask exactly once.
        let mut all: Vec<u64> = (0..=6).flat_map(|r| GosperMasks::new(6, r)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..64u64).collect::<Vec<_>>());
    }

    #[test]
    fn exact_mode_matches_the_reference_scan() {
        for (n, bits, seed) in [(300, 16, 1u64), (500, 64, 2), (220, 130, 3)] {
            let shard = random_codes(n, bits, seed);
            let ids: Vec<usize> = (0..n).map(|i| i * 3 + 7).collect();
            let queries = random_codes(9, bits, seed + 100);
            let index = PrefixIndex::build(&shard, &ids);
            for k in [1usize, 4, 33, n, 2 * n] {
                assert_eq!(
                    index.topk_batched(&queries, k, None),
                    reference::per_query_shard_topk(&shard, &ids, &queries, k),
                    "n={n}, bits={bits}, k={k}"
                );
            }
        }
    }

    #[test]
    fn exact_mode_matches_the_reference_on_clustered_codes() {
        // The sublinear sweet spot: tight clusters terminate at a small
        // probe radius, and the answer must still be bitwise exact.
        let shard = clustered_codes(2000, 64, 200, 0.02, 5);
        let ids: Vec<usize> = (0..2000).collect();
        let queries = clustered_codes(12, 64, 200, 0.02, 6);
        let index = PrefixIndex::build(&shard, &ids);
        for k in [1usize, 10, 50] {
            assert_eq!(
                index.topk_batched(&queries, k, None),
                reference::per_query_shard_topk(&shard, &ids, &queries, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn wide_prefix_request_clamps_to_the_code_width() {
        let shard = random_codes(60, 5, 8);
        let ids: Vec<usize> = (0..60).collect();
        let index = PrefixIndex::with_prefix_bits(&shard, &ids, 40);
        assert_eq!(index.prefix_bits(), 5);
        let queries = random_codes(4, 5, 9);
        assert_eq!(
            index.topk_batched(&queries, 7, None),
            reference::per_query_shard_topk(&shard, &ids, &queries, 7)
        );
    }

    #[test]
    fn budgeted_recall_is_monotone_and_saturates_to_exact() {
        let shard = clustered_codes(1500, 32, 60, 0.03, 11);
        let ids: Vec<usize> = (0..1500).collect();
        let queries = clustered_codes(10, 32, 60, 0.03, 12);
        let index = PrefixIndex::build(&shard, &ids);
        let k = 10;
        let exact = index.topk_batched(&queries, k, None);
        let budgets = [0usize, 1, 2, 8, 32, index.occupied_buckets()];
        let mut mean_recalls = Vec::new();
        for &budget in &budgets {
            let got = index.topk_batched(&queries, k, Some(budget));
            let mean: f64 = exact
                .iter()
                .zip(&got)
                .map(|(e, g)| recall(e, g))
                .sum::<f64>()
                / queries.len() as f64;
            mean_recalls.push(mean);
        }
        for pair in mean_recalls.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-12,
                "recall not monotone: {mean_recalls:?}"
            );
        }
        // A budget covering every occupied bucket IS the exact scan.
        assert_eq!(
            index.topk_batched(&queries, k, Some(index.occupied_buckets())),
            exact
        );
    }

    #[test]
    fn upserts_track_a_fresh_build_through_moves_and_inserts() {
        let initial = random_codes(400, 24, 21);
        let ids: Vec<usize> = (0..400).collect();
        let mut index = PrefixIndex::with_prefix_bits(&initial, &ids, 6);
        let mut current = initial.clone();
        let mut current_ids = ids.clone();
        let mut rng = SmallRng::seed_from_u64(22);
        let queries = random_codes(6, 24, 23);
        for step in 0..3 {
            // Overwrite half the existing points (many of them change
            // prefix and must migrate buckets) and stream in new ones.
            for _ in 0..200 {
                let target = rng.gen_range(0usize..current.len());
                let bits: Vec<f64> = (0..24)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
                    .collect();
                current.set_code(target, &bits);
                index.upsert(current_ids[target], &bits);
            }
            for _ in 0..30 {
                let bits: Vec<f64> = (0..24)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
                    .collect();
                let id = 1000 + step * 100 + current_ids.len();
                current.push_code(&bits);
                current_ids.push(id);
                index.upsert(id, &bits);
            }
            assert_eq!(
                index.topk_batched(&queries, 15, None),
                reference::per_query_shard_topk(&current, &current_ids, &queries, 15),
                "step {step}"
            );
        }
        // The volume of prefix-moving updates must have recompacted at
        // least once, and left the delta region bounded.
        assert!(
            index.rebuilds() >= 1,
            "expected a rebuild, delta={}",
            index.delta_len()
        );
        assert_eq!(index.len(), current.len());
    }

    #[test]
    fn empty_index_returns_empty_hit_lists() {
        let index = PrefixIndex::build(&BinaryCodes::zeros(0, 16), &[]);
        assert!(index.is_empty());
        let queries = random_codes(3, 16, 31);
        assert_eq!(
            index.topk_batched(&queries, 5, None),
            vec![Vec::<(u32, usize)>::new(); 3]
        );
    }

    #[test]
    fn zero_budget_still_answers_from_the_delta_region() {
        let shard = random_codes(50, 16, 41);
        let ids: Vec<usize> = (0..50).collect();
        let mut index = PrefixIndex::with_prefix_bits(&shard, &ids, 8);
        index.upsert(999, &[1.0; 16]);
        let queries = BinaryCodes::from_bools(&[vec![true; 16]]);
        let got = index.topk_batched(&queries, 1, Some(0));
        assert_eq!(got[0], vec![(0, 999)]);
    }

    #[test]
    #[should_panic(expected = "duplicate global id")]
    fn build_rejects_duplicate_ids() {
        let shard = random_codes(3, 8, 51);
        let _ = PrefixIndex::build(&shard, &[5, 6, 5]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn topk_rejects_zero_k() {
        let shard = random_codes(3, 8, 52);
        let index = PrefixIndex::build(&shard, &[0, 1, 2]);
        let _ = index.topk_batched(&shard, 0, None);
    }
}
