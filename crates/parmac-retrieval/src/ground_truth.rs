//! Exact Euclidean nearest-neighbour ground truth (brute force).

use parmac_linalg::vector::squared_distance;
use parmac_linalg::Mat;

/// For each query (row of `queries`), returns the indices of its `k` nearest
/// database points (rows of `database`) by Euclidean distance, closest first.
///
/// Ties are broken by index to keep the output deterministic.
///
/// # Panics
///
/// Panics if the dimensionalities differ or `k == 0`.
pub fn euclidean_knn(database: &Mat, queries: &Mat, k: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        database.cols(),
        queries.cols(),
        "database and queries must share dimensionality"
    );
    assert!(k > 0, "k must be positive");
    let k = k.min(database.rows());
    (0..queries.rows())
        .map(|q| {
            let query = queries.row(q);
            let mut dists: Vec<(f64, usize)> = (0..database.rows())
                .map(|i| (squared_distance(query, database.row(i)), i))
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            dists.into_iter().take(k).map(|(_, i)| i).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_obvious_nearest_neighbour() {
        let db = Mat::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let q = Mat::from_rows(&[vec![9.0, 1.0]]);
        let nn = euclidean_knn(&db, &q, 2);
        assert_eq!(nn[0], vec![1, 0]);
    }

    #[test]
    fn k_is_clamped_to_database_size() {
        let db = Mat::from_rows(&[vec![0.0], vec![1.0]]);
        let q = Mat::from_rows(&[vec![0.4]]);
        let nn = euclidean_knn(&db, &q, 10);
        assert_eq!(nn[0].len(), 2);
        assert_eq!(nn[0], vec![0, 1]);
    }

    #[test]
    fn one_result_per_query() {
        let db = Mat::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let q = Mat::from_rows(&[vec![0.1], vec![1.9]]);
        let nn = euclidean_knn(&db, &q, 1);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0], vec![0]);
        assert_eq!(nn[1], vec![2]);
    }

    #[test]
    fn ties_break_by_index() {
        let db = Mat::from_rows(&[vec![1.0], vec![-1.0]]);
        let q = Mat::from_rows(&[vec![0.0]]);
        let nn = euclidean_knn(&db, &q, 2);
        assert_eq!(nn[0], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        let db = Mat::from_rows(&[vec![0.0]]);
        let _ = euclidean_knn(&db, &db, 0);
    }
}
