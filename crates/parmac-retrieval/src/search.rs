//! Hamming-space k-nearest-neighbour search over binary codes.
//!
//! `hamming_knn` selects the top `k` with a bounded max-heap — `O(N log k)`
//! per query instead of the `O(N log N)` full sort — reusing one heap
//! allocation across queries. The selection is ordered by `(distance, index)`
//! so results are identical to sorting the full distance list.
//!
//! For sharded databases (ParMAC machines each keep their shard), the same
//! selection is *mergeable*: [`shard_hamming_topk`] returns each shard's top
//! `k` as `(distance, global index)` pairs and [`merge_shard_topk`] combines
//! per-shard lists into the global top `k`. Because every per-shard list is
//! the exact `(distance, index)`-minimal prefix of its shard, merging the
//! lists and truncating at `k` is exactly the top `k` of the concatenated
//! shards — the invariant `ServerBackend`'s query fan-out relies on.

use parmac_hash::BinaryCodes;
use std::collections::BinaryHeap;

/// For each query code, returns the indices of the `k` database codes with the
/// smallest Hamming distance, closest first (ties broken by index).
///
/// # Panics
///
/// Panics if the code widths differ or `k == 0`.
pub fn hamming_knn(database: &BinaryCodes, queries: &BinaryCodes, k: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        database.n_bits(),
        queries.n_bits(),
        "database and query codes must have the same width"
    );
    assert!(k > 0, "k must be positive");
    let k = k.min(database.len());
    // The heap keeps the k best (distance, index) pairs with the *worst* on
    // top; it is allocated once and reused as the per-query scratch buffer.
    let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::with_capacity(k);
    (0..queries.len())
        .map(|q| {
            heap.clear();
            for i in 0..database.len() {
                let candidate = (queries.hamming(q, database, i), i);
                if heap.len() < k {
                    heap.push(candidate);
                } else if candidate < *heap.peek().expect("heap is non-empty when full") {
                    heap.pop();
                    heap.push(candidate);
                }
            }
            let mut neighbours = vec![0usize; heap.len()];
            for slot in neighbours.iter_mut().rev() {
                *slot = heap.pop().expect("heap holds one entry per slot").1;
            }
            neighbours
        })
        .collect()
}

/// Per-shard top-`k`: for each query, the `k` codes of `shard` (a database
/// fragment whose row `i` is the code of global point `global_ids[i]`) with
/// the smallest Hamming distance, as `(distance, global index)` pairs sorted
/// ascending. The per-shard lists of several disjoint shards can be combined
/// with [`merge_shard_topk`] into exactly the global top `k`.
///
/// # Panics
///
/// Panics if the code widths differ, `k == 0`, or `global_ids` does not have
/// one entry per shard code.
pub fn shard_hamming_topk(
    shard: &BinaryCodes,
    global_ids: &[usize],
    queries: &BinaryCodes,
    k: usize,
) -> Vec<Vec<(u32, usize)>> {
    assert_eq!(
        shard.n_bits(),
        queries.n_bits(),
        "shard and query codes must have the same width"
    );
    assert!(k > 0, "k must be positive");
    assert_eq!(
        global_ids.len(),
        shard.len(),
        "one global id per shard code"
    );
    let k = k.min(shard.len());
    let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::with_capacity(k);
    (0..queries.len())
        .map(|q| {
            heap.clear();
            for (i, &global) in global_ids.iter().enumerate() {
                let candidate = (queries.hamming(q, shard, i), global);
                if heap.len() < k {
                    heap.push(candidate);
                } else if candidate < *heap.peek().expect("heap is non-empty when full") {
                    heap.pop();
                    heap.push(candidate);
                }
            }
            let mut hits = vec![(0u32, 0usize); heap.len()];
            for slot in hits.iter_mut().rev() {
                *slot = heap.pop().expect("heap holds one entry per slot");
            }
            hits
        })
        .collect()
}

/// Merges per-shard top-`k` lists (each sorted ascending by `(distance,
/// global index)`, as produced by [`shard_hamming_topk`]) into the global top
/// `k` indices for one query. Shards must be disjoint, so `(distance, index)`
/// keys are unique and the merge is deterministic.
pub fn merge_shard_topk(per_shard: &[Vec<(u32, usize)>], k: usize) -> Vec<usize> {
    // k-way merge by a min-heap over (head element, shard, offset); Reverse
    // turns the max-heap into a min-heap.
    use std::cmp::Reverse;
    type MergeHead = Reverse<((u32, usize), usize, usize)>;
    let mut heap: BinaryHeap<MergeHead> = per_shard
        .iter()
        .enumerate()
        .filter(|(_, hits)| !hits.is_empty())
        .map(|(s, hits)| Reverse((hits[0], s, 0)))
        .collect();
    let mut merged = Vec::with_capacity(k);
    while merged.len() < k {
        let Some(Reverse(((_, global), shard, offset))) = heap.pop() else {
            break;
        };
        merged.push(global);
        if let Some(&next) = per_shard[shard].get(offset + 1) {
            heap.push(Reverse((next, shard, offset + 1)));
        }
    }
    merged
}

/// The pre-optimisation k-NN reference: full `O(N log N)` sort per query.
/// Kept as the single baseline implementation for the equivalence tests and
/// the before/after micro-benchmarks; not part of the public API.
#[doc(hidden)]
pub fn full_sort_knn(database: &BinaryCodes, queries: &BinaryCodes, k: usize) -> Vec<Vec<usize>> {
    let k = k.min(database.len());
    (0..queries.len())
        .map(|q| {
            let mut dists: Vec<(u32, usize)> = (0..database.len())
                .map(|i| (queries.hamming(q, database, i), i))
                .collect();
            dists.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            dists.into_iter().take(k).map(|(_, i)| i).collect()
        })
        .collect()
}

/// Returns, for one query code, the database indices ordered by increasing
/// Hamming distance (the full ranking used for recall@R curves).
///
/// # Panics
///
/// Panics if the code widths differ or `query >= queries.len()`.
pub fn hamming_ranking(database: &BinaryCodes, queries: &BinaryCodes, query: usize) -> Vec<usize> {
    assert_eq!(database.n_bits(), queries.n_bits(), "code width mismatch");
    let mut dists: Vec<(u32, usize)> = (0..database.len())
        .map(|i| (queries.hamming(query, database, i), i))
        .collect();
    // The (distance, index) keys are unique, so the unstable sort is
    // deterministic and matches the stable sort exactly.
    dists.sort_unstable();
    dists.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmac_linalg::Mat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn codes(rows: &[Vec<bool>]) -> BinaryCodes {
        BinaryCodes::from_bools(rows)
    }

    #[test]
    fn nearest_code_is_exact_match() {
        let db = codes(&[
            vec![true, true, false, false],
            vec![false, false, true, true],
            vec![true, false, true, false],
        ]);
        let q = codes(&[vec![false, false, true, true]]);
        let nn = hamming_knn(&db, &q, 2);
        assert_eq!(nn[0][0], 1);
    }

    #[test]
    fn ranking_is_sorted_by_distance() {
        let db = codes(&[
            vec![true, true, true, true],
            vec![true, true, true, false],
            vec![false, false, false, false],
        ]);
        let q = codes(&[vec![true, true, true, true]]);
        let rank = hamming_ranking(&db, &q, 0);
        assert_eq!(rank, vec![0, 1, 2]);
    }

    #[test]
    fn k_clamped_and_ties_by_index() {
        let db = codes(&[vec![true, false], vec![true, false], vec![false, true]]);
        let q = codes(&[vec![true, false]]);
        let nn = hamming_knn(&db, &q, 10);
        assert_eq!(nn[0], vec![0, 1, 2]);
    }

    #[test]
    fn heap_selection_matches_full_sort_on_random_codes() {
        // Many duplicate distances (16-bit codes over 400 points) exercise the
        // tie-breaking; the bounded-heap result must equal the full sort for
        // every k.
        let mut rng = SmallRng::seed_from_u64(0);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(400, 16, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(9, 16, 0.0, 1.0, &mut rng));
        for k in [1, 3, 10, 100, 400, 1000] {
            assert_eq!(
                hamming_knn(&db, &q, k),
                full_sort_knn(&db, &q, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn ranking_prefix_matches_knn() {
        let mut rng = SmallRng::seed_from_u64(1);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(120, 12, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(4, 12, 0.0, 1.0, &mut rng));
        let nn = hamming_knn(&db, &q, 25);
        for (query, neighbours) in nn.iter().enumerate() {
            let rank = hamming_ranking(&db, &q, query);
            assert_eq!(neighbours, &rank[..25], "query {query}");
        }
    }

    #[test]
    fn sharded_topk_merge_equals_single_process_knn() {
        // Partition a random database into three uneven shards; the merged
        // per-shard top-k must equal hamming_knn over the whole database for
        // every k, including ties (16-bit codes over 300 points collide a lot).
        let mut rng = SmallRng::seed_from_u64(7);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(300, 16, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(7, 16, 0.0, 1.0, &mut rng));
        let shards: Vec<Vec<usize>> =
            vec![(0..50).collect(), (50..60).collect(), (60..300).collect()];
        let shard_codes: Vec<BinaryCodes> = shards
            .iter()
            .map(|ids| {
                let mut rows = Vec::new();
                for &i in ids {
                    rows.push((0..db.n_bits()).map(|b| db.bit(i, b)).collect::<Vec<_>>());
                }
                BinaryCodes::from_bools(&rows)
            })
            .collect();
        for k in [1usize, 5, 60, 300] {
            let reference = hamming_knn(&db, &q, k);
            let per_shard: Vec<Vec<Vec<(u32, usize)>>> = shard_codes
                .iter()
                .zip(&shards)
                .map(|(codes, ids)| shard_hamming_topk(codes, ids, &q, k))
                .collect();
            for query in 0..q.len() {
                let lists: Vec<Vec<(u32, usize)>> =
                    per_shard.iter().map(|s| s[query].clone()).collect();
                assert_eq!(
                    merge_shard_topk(&lists, k),
                    reference[query],
                    "k={k}, query={query}"
                );
            }
        }
    }

    #[test]
    fn merge_handles_empty_and_short_shards() {
        let lists = vec![vec![], vec![(0u32, 3usize), (2, 5)], vec![(1, 0)]];
        assert_eq!(merge_shard_topk(&lists, 2), vec![3, 0]);
        assert_eq!(merge_shard_topk(&lists, 10), vec![3, 0, 5]);
        assert!(merge_shard_topk(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "one global id per shard code")]
    fn shard_topk_rejects_id_length_mismatch() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false]]);
        let _ = shard_hamming_topk(&db, &[0, 1], &q, 1);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn rejects_width_mismatch() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false, true]]);
        let _ = hamming_knn(&db, &q, 1);
    }
}
