//! Hamming-space k-nearest-neighbour search over binary codes.

use parmac_hash::BinaryCodes;

/// For each query code, returns the indices of the `k` database codes with the
/// smallest Hamming distance, closest first (ties broken by index).
///
/// # Panics
///
/// Panics if the code widths differ or `k == 0`.
pub fn hamming_knn(database: &BinaryCodes, queries: &BinaryCodes, k: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        database.n_bits(),
        queries.n_bits(),
        "database and query codes must have the same width"
    );
    assert!(k > 0, "k must be positive");
    let k = k.min(database.len());
    (0..queries.len())
        .map(|q| {
            let mut dists: Vec<(u32, usize)> = (0..database.len())
                .map(|i| (queries.hamming(q, database, i), i))
                .collect();
            dists.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            dists.into_iter().take(k).map(|(_, i)| i).collect()
        })
        .collect()
}

/// Returns, for one query code, the database indices ordered by increasing
/// Hamming distance (the full ranking used for recall@R curves).
///
/// # Panics
///
/// Panics if the code widths differ or `query >= queries.len()`.
pub fn hamming_ranking(database: &BinaryCodes, queries: &BinaryCodes, query: usize) -> Vec<usize> {
    assert_eq!(database.n_bits(), queries.n_bits(), "code width mismatch");
    let mut dists: Vec<(u32, usize)> = (0..database.len())
        .map(|i| (queries.hamming(query, database, i), i))
        .collect();
    dists.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    dists.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rows: &[Vec<bool>]) -> BinaryCodes {
        BinaryCodes::from_bools(rows)
    }

    #[test]
    fn nearest_code_is_exact_match() {
        let db = codes(&[
            vec![true, true, false, false],
            vec![false, false, true, true],
            vec![true, false, true, false],
        ]);
        let q = codes(&[vec![false, false, true, true]]);
        let nn = hamming_knn(&db, &q, 2);
        assert_eq!(nn[0][0], 1);
    }

    #[test]
    fn ranking_is_sorted_by_distance() {
        let db = codes(&[
            vec![true, true, true, true],
            vec![true, true, true, false],
            vec![false, false, false, false],
        ]);
        let q = codes(&[vec![true, true, true, true]]);
        let rank = hamming_ranking(&db, &q, 0);
        assert_eq!(rank, vec![0, 1, 2]);
    }

    #[test]
    fn k_clamped_and_ties_by_index() {
        let db = codes(&[vec![true, false], vec![true, false], vec![false, true]]);
        let q = codes(&[vec![true, false]]);
        let nn = hamming_knn(&db, &q, 10);
        assert_eq!(nn[0], vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn rejects_width_mismatch() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false, true]]);
        let _ = hamming_knn(&db, &q, 1);
    }
}
