//! Hamming-space k-nearest-neighbour search over binary codes.
//!
//! The workhorse is [`shard_hamming_topk_batched`]: a batched, cache-blocked
//! top-`k` scan. A batch of `B` queries is answered in one walk over the
//! database, processed in *point-blocks* sized so the block's packed words
//! stay L1-resident while every query streams them (blocks outer, queries
//! per block, points within the block; word-level XOR+popcount on the raw
//! [`code_words`](parmac_hash::BinaryCodes::code_words) layout). Each query
//! keeps a bounded max-heap of its `k` best `(distance, index)` pairs and the
//! running k-th distance as an early-skip bound: once a candidate's partial
//! word count exceeds the bound it can neither enter the heap nor change the
//! result, so the scan skips the heap entirely (and, for multi-word codes,
//! stops counting mid-code). Selection is ordered by `(distance, index)`, so
//! results are identical to sorting the full distance list — the single-query
//! entry points [`hamming_knn`] and [`shard_hamming_topk`] are routed through
//! the same implementation.
//!
//! For sharded databases (ParMAC machines each keep their shard), the same
//! selection is *mergeable*: [`shard_hamming_topk`] returns each shard's top
//! `k` as `(distance, global index)` pairs and [`merge_shard_topk`] combines
//! per-shard lists into the global top `k`. Because every per-shard list is
//! the exact `(distance, index)`-minimal prefix of its shard, merging the
//! lists and truncating at `k` is exactly the top `k` of the concatenated
//! shards — the invariant `ServerBackend`'s query fan-out relies on. The same
//! argument applies *within* a shard: [`shard_hamming_topk_chunk`] scans a
//! contiguous row range, so a machine can split its shard over several scan
//! workers and merge the per-chunk lists ([`merge_shard_topk_hits`]) into
//! exactly its shard top-`k`.

use parmac_hash::{popcount, BinaryCodes};
use std::collections::BinaryHeap;
use std::ops::Range;

/// Shard words per point-block of the batched scan: 32 KiB, sized to sit in
/// L1 while a whole query batch revisits the block.
const BLOCK_WORDS: usize = 4096;

/// One query's bounded-heap scan over a contiguous row range: the unit every
/// retrieval path — the blocked full scan below and the multi-probe bucket
/// scans of [`crate::index`] — is built from. Holds the reusable distance
/// buffer of the SIMD path so per-range calls do not allocate.
///
/// Both paths visit rows in ascending order and offer `(distance, id)` pairs
/// through the same bounded max-heap, so the selected top-`k` is bitwise
/// identical regardless of the kernel: the SIMD path computes every distance
/// in the range up front ([`popcount::block_hamming`]) and the scalar path
/// skips popcount work the running bound has already disqualified, but a
/// skipped candidate is by definition one that cannot enter the heap.
pub(crate) struct RangeScanner {
    dists: Vec<u32>,
    simd: bool,
}

impl RangeScanner {
    pub(crate) fn new() -> Self {
        RangeScanner {
            dists: Vec::new(),
            simd: popcount::simd_active(),
        }
    }

    /// Scans rows `rows` of `shard_words` (`wpc` packed words per row) for
    /// one query, offering every candidate within the current bound to
    /// `heap` (bounded at `k`) in ascending row order; returns the updated
    /// bound. `global_ids`, when present, maps absolute row indices to global
    /// point ids.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_range(
        &mut self,
        shard_words: &[u64],
        wpc: usize,
        rows: Range<usize>,
        global_ids: Option<&[usize]>,
        query_words: &[u64],
        k: usize,
        heap: &mut BinaryHeap<(u32, usize)>,
        mut bound: u32,
    ) -> u32 {
        let n = rows.len();
        if n == 0 || k == 0 {
            return bound;
        }
        let range_words = &shard_words[rows.start * wpc..rows.end * wpc];
        if self.simd {
            if self.dists.len() < n {
                self.dists.resize(n, 0);
            }
            popcount::block_hamming(range_words, query_words, &mut self.dists[..n]);
            for (j, &dist) in self.dists[..n].iter().enumerate() {
                if dist > bound {
                    continue;
                }
                let p = rows.start + j;
                let id = global_ids.map_or(p, |ids| ids[p]);
                bound = offer(heap, k, (dist, id), bound);
            }
        } else if let [q_word] = *query_words {
            for (j, &p_word) in range_words.iter().enumerate() {
                let dist = (p_word ^ q_word).count_ones();
                if dist > bound {
                    continue;
                }
                let p = rows.start + j;
                let id = global_ids.map_or(p, |ids| ids[p]);
                bound = offer(heap, k, (dist, id), bound);
            }
        } else {
            for (j, pw) in range_words.chunks_exact(wpc).enumerate() {
                // Word-level distance with an early exit: popcounts only
                // accumulate, so crossing the bound mid-code already
                // disqualifies the candidate.
                let mut dist = 0u32;
                for w in 0..wpc {
                    dist += (pw[w] ^ query_words[w]).count_ones();
                    if dist > bound {
                        break;
                    }
                }
                if dist > bound {
                    continue;
                }
                let p = rows.start + j;
                let id = global_ids.map_or(p, |ids| ids[p]);
                bound = offer(heap, k, (dist, id), bound);
            }
        }
        bound
    }
}

/// Drains a bounded max-heap into an ascending `(distance, id)` list.
pub(crate) fn drain_heap(heap: &mut BinaryHeap<(u32, usize)>) -> Vec<(u32, usize)> {
    let mut hits = vec![(0u32, 0usize); heap.len()];
    for slot in hits.iter_mut().rev() {
        *slot = heap.pop().expect("heap holds one entry per slot");
    }
    hits
}

/// Offers `candidate` to a bounded max-heap holding the `k` best pairs and
/// returns the updated early-skip bound (the k-th best distance once the heap
/// is full, `u32::MAX` before).
#[inline]
pub(crate) fn offer(
    heap: &mut BinaryHeap<(u32, usize)>,
    k: usize,
    candidate: (u32, usize),
    bound: u32,
) -> u32 {
    if heap.len() < k {
        heap.push(candidate);
        if heap.len() == k {
            heap.peek().expect("heap is full").0
        } else {
            bound
        }
    } else if candidate < *heap.peek().expect("heap is non-empty when full") {
        heap.pop();
        heap.push(candidate);
        heap.peek().expect("heap refilled").0
    } else {
        bound
    }
}

/// The batched, cache-blocked top-`k` kernel over one row range of a shard.
/// `global_ids`, when present, maps *absolute* row indices to global point
/// ids; `None` means rows are their own ids (the single-database case).
///
/// Loop structure: the shard rows are walked once in point-blocks of
/// [`BLOCK_WORDS`] packed words; within a block every query streams the
/// block's words with its own code, running bound and heap register-/L1-hot.
/// Per query, rows are visited in ascending order — the exact operation
/// sequence of the per-query reference scan — so the output is bitwise
/// identical to [`reference::per_query_shard_topk`] on the same rows.
fn batched_topk(
    shard: &BinaryCodes,
    rows: Range<usize>,
    global_ids: Option<&[usize]>,
    queries: &BinaryCodes,
    k: usize,
) -> Vec<Vec<(u32, usize)>> {
    let k = k.min(rows.len());
    let b = queries.len();
    if k == 0 || b == 0 {
        return vec![Vec::new(); b];
    }
    let wpc = shard.words_per_code();
    debug_assert_eq!(wpc, queries.words_per_code());
    let shard_words = shard.as_words();
    let query_words = queries.as_words();
    let mut heaps: Vec<BinaryHeap<(u32, usize)>> =
        (0..b).map(|_| BinaryHeap::with_capacity(k)).collect();
    // Per-query early-skip bound: the current k-th (worst kept) distance,
    // `u32::MAX` until the heap has k entries.
    let mut bounds: Vec<u32> = vec![u32::MAX; b];
    let mut scanner = RangeScanner::new();
    let block_points = (BLOCK_WORDS / wpc).max(1);
    let mut block_start = rows.start;
    while block_start < rows.end {
        let block_end = (block_start + block_points).min(rows.end);
        for (q, heap) in heaps.iter_mut().enumerate() {
            let qw = &query_words[q * wpc..(q + 1) * wpc];
            bounds[q] = scanner.scan_range(
                shard_words,
                wpc,
                block_start..block_end,
                global_ids,
                qw,
                k,
                heap,
                bounds[q],
            );
        }
        block_start = block_end;
    }
    heaps
        .into_iter()
        .map(|mut heap| drain_heap(&mut heap))
        .collect()
}

fn assert_query_shapes(shard: &BinaryCodes, queries: &BinaryCodes, k: usize) {
    assert_eq!(
        shard.n_bits(),
        queries.n_bits(),
        "database and query codes must have the same width"
    );
    assert!(k > 0, "k must be positive");
}

/// For each query code, returns the indices of the `k` database codes with the
/// smallest Hamming distance, closest first (ties broken by index). Runs on
/// the batched, cache-blocked kernel ([`shard_hamming_topk_batched`]); a
/// one-query batch is simply `B = 1`.
///
/// # Panics
///
/// Panics if the code widths differ or `k == 0`.
pub fn hamming_knn(database: &BinaryCodes, queries: &BinaryCodes, k: usize) -> Vec<Vec<usize>> {
    assert_query_shapes(database, queries, k);
    batched_topk(database, 0..database.len(), None, queries, k)
        .into_iter()
        .map(|hits| hits.into_iter().map(|(_, i)| i).collect())
        .collect()
}

/// Batched per-shard top-`k`: for each query, the `k` codes of `shard` (a
/// database fragment whose row `i` is the code of global point
/// `global_ids[i]`) with the smallest Hamming distance, as `(distance, global
/// index)` pairs sorted ascending. One cache-blocked walk over the shard
/// answers the whole query batch (see the module docs for the loop
/// structure). The per-shard lists of several disjoint shards can be combined
/// with [`merge_shard_topk`] into exactly the global top `k`.
///
/// # Panics
///
/// Panics if the code widths differ, `k == 0`, or `global_ids` does not have
/// one entry per shard code.
pub fn shard_hamming_topk_batched(
    shard: &BinaryCodes,
    global_ids: &[usize],
    queries: &BinaryCodes,
    k: usize,
) -> Vec<Vec<(u32, usize)>> {
    assert_query_shapes(shard, queries, k);
    assert_eq!(
        global_ids.len(),
        shard.len(),
        "one global id per shard code"
    );
    batched_topk(shard, 0..shard.len(), Some(global_ids), queries, k)
}

/// Per-shard top-`k` (see [`shard_hamming_topk_batched`], which this routes
/// through — kept as the stable name the serving backends call).
///
/// # Panics
///
/// As for [`shard_hamming_topk_batched`].
pub fn shard_hamming_topk(
    shard: &BinaryCodes,
    global_ids: &[usize],
    queries: &BinaryCodes,
    k: usize,
) -> Vec<Vec<(u32, usize)>> {
    shard_hamming_topk_batched(shard, global_ids, queries, k)
}

/// Top-`k` over one contiguous row range of a shard: the unit of work of a
/// per-machine scan worker. `global_ids` is the *whole* shard's id list
/// (indexed by absolute row, like the shard itself); only rows in `rows` are
/// scanned. Per-chunk lists over a partition of the shard's rows merge via
/// [`merge_shard_topk_hits`] into exactly the shard's top-`k`.
///
/// # Panics
///
/// Panics if the code widths differ, `k == 0`, `global_ids` does not have one
/// entry per shard code, or `rows` exceeds the shard.
pub fn shard_hamming_topk_chunk(
    shard: &BinaryCodes,
    rows: Range<usize>,
    global_ids: &[usize],
    queries: &BinaryCodes,
    k: usize,
) -> Vec<Vec<(u32, usize)>> {
    assert_query_shapes(shard, queries, k);
    assert_eq!(
        global_ids.len(),
        shard.len(),
        "one global id per shard code"
    );
    assert!(rows.end <= shard.len(), "row range exceeds the shard");
    batched_topk(shard, rows, Some(global_ids), queries, k)
}

/// Merges per-shard (or per-chunk) top-`k` lists — each sorted ascending by
/// `(distance, global index)`, as produced by [`shard_hamming_topk_batched`]
/// — into the global top `k` for one query, keeping the distances. Shards
/// must be disjoint, so `(distance, index)` keys are unique and the merge is
/// deterministic.
pub fn merge_shard_topk_hits(per_shard: &[Vec<(u32, usize)>], k: usize) -> Vec<(u32, usize)> {
    // k-way merge by a min-heap over (head element, shard, offset); Reverse
    // turns the max-heap into a min-heap.
    use std::cmp::Reverse;
    type MergeHead = Reverse<((u32, usize), usize, usize)>;
    let mut heap: BinaryHeap<MergeHead> = per_shard
        .iter()
        .enumerate()
        .filter(|(_, hits)| !hits.is_empty())
        .map(|(s, hits)| Reverse((hits[0], s, 0)))
        .collect();
    let mut merged = Vec::with_capacity(k);
    while merged.len() < k {
        let Some(Reverse((hit, shard, offset))) = heap.pop() else {
            break;
        };
        merged.push(hit);
        if let Some(&next) = per_shard[shard].get(offset + 1) {
            heap.push(Reverse((next, shard, offset + 1)));
        }
    }
    merged
}

/// Merges per-shard top-`k` lists into the global top `k` *indices* for one
/// query (see [`merge_shard_topk_hits`] for the distance-keeping variant).
pub fn merge_shard_topk(per_shard: &[Vec<(u32, usize)>], k: usize) -> Vec<usize> {
    merge_shard_topk_hits(per_shard, k)
        .into_iter()
        .map(|(_, i)| i)
        .collect()
}

/// The pre-optimisation k-NN reference: full `O(N log N)` sort per query.
/// Kept as the single baseline implementation for the equivalence tests and
/// the before/after micro-benchmarks; not part of the public API.
#[doc(hidden)]
pub fn full_sort_knn(database: &BinaryCodes, queries: &BinaryCodes, k: usize) -> Vec<Vec<usize>> {
    let k = k.min(database.len());
    (0..queries.len())
        .map(|q| {
            let mut dists: Vec<(u32, usize)> = (0..database.len())
                .map(|i| (queries.hamming(q, database, i), i))
                .collect();
            dists.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            dists.into_iter().take(k).map(|(_, i)| i).collect()
        })
        .collect()
}

/// The PR-2 per-query bounded-heap scans, kept verbatim as the pinned
/// baseline: the bitwise-equivalence tests compare the batched blocked kernel
/// against these, and the before/after benches measure both in the same run,
/// so the baseline cannot drift from what the tests verify.
pub mod reference {
    use super::BinaryHeap;
    use parmac_hash::BinaryCodes;

    /// One query at a time, one bounded max-heap, one `hamming` call per
    /// (query, point) pair — `hamming_knn` as shipped by PR 2.
    pub fn per_query_heap_knn(
        database: &BinaryCodes,
        queries: &BinaryCodes,
        k: usize,
    ) -> Vec<Vec<usize>> {
        super::assert_query_shapes(database, queries, k);
        let k = k.min(database.len());
        let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::with_capacity(k);
        (0..queries.len())
            .map(|q| {
                heap.clear();
                for i in 0..database.len() {
                    let candidate = (queries.hamming(q, database, i), i);
                    if heap.len() < k {
                        heap.push(candidate);
                    } else if candidate < *heap.peek().expect("heap is non-empty when full") {
                        heap.pop();
                        heap.push(candidate);
                    }
                }
                let mut neighbours = vec![0usize; heap.len()];
                for slot in neighbours.iter_mut().rev() {
                    *slot = heap.pop().expect("heap holds one entry per slot").1;
                }
                neighbours
            })
            .collect()
    }

    /// Per-shard top-`k` via the per-query heap scan — `shard_hamming_topk`
    /// as shipped by PR 4.
    pub fn per_query_shard_topk(
        shard: &BinaryCodes,
        global_ids: &[usize],
        queries: &BinaryCodes,
        k: usize,
    ) -> Vec<Vec<(u32, usize)>> {
        super::assert_query_shapes(shard, queries, k);
        assert_eq!(
            global_ids.len(),
            shard.len(),
            "one global id per shard code"
        );
        let k = k.min(shard.len());
        let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::with_capacity(k);
        (0..queries.len())
            .map(|q| {
                heap.clear();
                for (i, &global) in global_ids.iter().enumerate() {
                    let candidate = (queries.hamming(q, shard, i), global);
                    if heap.len() < k {
                        heap.push(candidate);
                    } else if candidate < *heap.peek().expect("heap is non-empty when full") {
                        heap.pop();
                        heap.push(candidate);
                    }
                }
                let mut hits = vec![(0u32, 0usize); heap.len()];
                for slot in hits.iter_mut().rev() {
                    *slot = heap.pop().expect("heap holds one entry per slot");
                }
                hits
            })
            .collect()
    }
}

/// Returns, for one query code, the database indices ordered by increasing
/// Hamming distance (the full ranking used for recall@R curves).
///
/// # Panics
///
/// Panics if the code widths differ or `query >= queries.len()`.
pub fn hamming_ranking(database: &BinaryCodes, queries: &BinaryCodes, query: usize) -> Vec<usize> {
    assert_eq!(database.n_bits(), queries.n_bits(), "code width mismatch");
    let mut dists: Vec<(u32, usize)> = (0..database.len())
        .map(|i| (queries.hamming(query, database, i), i))
        .collect();
    // The (distance, index) keys are unique, so the unstable sort is
    // deterministic and matches the stable sort exactly.
    dists.sort_unstable();
    dists.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmac_linalg::Mat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn codes(rows: &[Vec<bool>]) -> BinaryCodes {
        BinaryCodes::from_bools(rows)
    }

    #[test]
    fn nearest_code_is_exact_match() {
        let db = codes(&[
            vec![true, true, false, false],
            vec![false, false, true, true],
            vec![true, false, true, false],
        ]);
        let q = codes(&[vec![false, false, true, true]]);
        let nn = hamming_knn(&db, &q, 2);
        assert_eq!(nn[0][0], 1);
    }

    #[test]
    fn ranking_is_sorted_by_distance() {
        let db = codes(&[
            vec![true, true, true, true],
            vec![true, true, true, false],
            vec![false, false, false, false],
        ]);
        let q = codes(&[vec![true, true, true, true]]);
        let rank = hamming_ranking(&db, &q, 0);
        assert_eq!(rank, vec![0, 1, 2]);
    }

    #[test]
    fn k_clamped_and_ties_by_index() {
        let db = codes(&[vec![true, false], vec![true, false], vec![false, true]]);
        let q = codes(&[vec![true, false]]);
        let nn = hamming_knn(&db, &q, 10);
        assert_eq!(nn[0], vec![0, 1, 2]);
    }

    #[test]
    fn heap_selection_matches_full_sort_on_random_codes() {
        // Many duplicate distances (16-bit codes over 400 points) exercise the
        // tie-breaking; the batched blocked kernel must equal the full sort
        // and the PR-2 per-query heap scan for every k.
        let mut rng = SmallRng::seed_from_u64(0);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(400, 16, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(9, 16, 0.0, 1.0, &mut rng));
        for k in [1, 3, 10, 100, 400, 1000] {
            let batched = hamming_knn(&db, &q, k);
            assert_eq!(batched, full_sort_knn(&db, &q, k), "k = {k}");
            assert_eq!(
                batched,
                reference::per_query_heap_knn(&db, &q, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn batched_kernel_handles_multi_word_codes() {
        // 130-bit codes span three words: the word-level early-exit path must
        // still match the references exactly.
        let mut rng = SmallRng::seed_from_u64(11);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(300, 130, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(8, 130, 0.0, 1.0, &mut rng));
        for k in [1, 7, 64, 300] {
            let batched = hamming_knn(&db, &q, k);
            assert_eq!(batched, full_sort_knn(&db, &q, k), "k = {k}");
            assert_eq!(
                batched,
                reference::per_query_heap_knn(&db, &q, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn batched_kernel_crosses_block_boundaries() {
        // More points than one 32 KiB block holds (4096 single-word rows), so
        // the scan spans several blocks; results must be order-independent of
        // the blocking.
        let mut rng = SmallRng::seed_from_u64(12);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(10_000, 24, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(3, 24, 0.0, 1.0, &mut rng));
        assert_eq!(
            hamming_knn(&db, &q, 50),
            reference::per_query_heap_knn(&db, &q, 50)
        );
    }

    #[test]
    fn ranking_prefix_matches_knn() {
        let mut rng = SmallRng::seed_from_u64(1);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(120, 12, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(4, 12, 0.0, 1.0, &mut rng));
        let nn = hamming_knn(&db, &q, 25);
        for (query, neighbours) in nn.iter().enumerate() {
            let rank = hamming_ranking(&db, &q, query);
            assert_eq!(neighbours, &rank[..25], "query {query}");
        }
    }

    #[test]
    fn sharded_topk_merge_equals_single_process_knn() {
        // Partition a random database into three uneven shards; the merged
        // per-shard top-k must equal hamming_knn over the whole database for
        // every k, including ties (16-bit codes over 300 points collide a lot).
        let mut rng = SmallRng::seed_from_u64(7);
        let db = BinaryCodes::from_matrix(&Mat::random_uniform(300, 16, 0.0, 1.0, &mut rng));
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(7, 16, 0.0, 1.0, &mut rng));
        let shards: Vec<Vec<usize>> =
            vec![(0..50).collect(), (50..60).collect(), (60..300).collect()];
        let shard_codes: Vec<BinaryCodes> = shards
            .iter()
            .map(|ids| {
                let mut rows = Vec::new();
                for &i in ids {
                    rows.push((0..db.n_bits()).map(|b| db.bit(i, b)).collect::<Vec<_>>());
                }
                BinaryCodes::from_bools(&rows)
            })
            .collect();
        for k in [1usize, 5, 60, 300] {
            let reference = hamming_knn(&db, &q, k);
            let per_shard: Vec<Vec<Vec<(u32, usize)>>> = shard_codes
                .iter()
                .zip(&shards)
                .map(|(codes, ids)| shard_hamming_topk(codes, ids, &q, k))
                .collect();
            for query in 0..q.len() {
                let lists: Vec<Vec<(u32, usize)>> =
                    per_shard.iter().map(|s| s[query].clone()).collect();
                assert_eq!(
                    merge_shard_topk(&lists, k),
                    reference[query],
                    "k={k}, query={query}"
                );
            }
        }
    }

    #[test]
    fn chunked_scan_merges_to_the_whole_shard_topk() {
        // Split one shard's rows into uneven chunks (the scan-worker unit of
        // work); merging the per-chunk hits must reproduce the whole-shard
        // scan exactly, distances included.
        let mut rng = SmallRng::seed_from_u64(13);
        let shard = BinaryCodes::from_matrix(&Mat::random_uniform(200, 16, 0.0, 1.0, &mut rng));
        // Shuffled, non-contiguous global ids, as after streaming.
        let ids: Vec<usize> = (0..200).map(|i| (i * 37 + 5) % 1000).collect();
        let q = BinaryCodes::from_matrix(&Mat::random_uniform(6, 16, 0.0, 1.0, &mut rng));
        for k in [1usize, 9, 200, 500] {
            let whole = shard_hamming_topk_batched(&shard, &ids, &q, k);
            let chunks = [0..70, 70..75, 75..200];
            let per_chunk: Vec<Vec<Vec<(u32, usize)>>> = chunks
                .iter()
                .map(|r| shard_hamming_topk_chunk(&shard, r.clone(), &ids, &q, k))
                .collect();
            for query in 0..q.len() {
                let lists: Vec<Vec<(u32, usize)>> =
                    per_chunk.iter().map(|c| c[query].clone()).collect();
                assert_eq!(
                    merge_shard_topk_hits(&lists, k),
                    whole[query],
                    "k={k}, query={query}"
                );
            }
        }
    }

    #[test]
    fn merge_handles_empty_and_short_shards() {
        let lists = vec![vec![], vec![(0u32, 3usize), (2, 5)], vec![(1, 0)]];
        assert_eq!(merge_shard_topk(&lists, 2), vec![3, 0]);
        assert_eq!(merge_shard_topk(&lists, 10), vec![3, 0, 5]);
        assert!(merge_shard_topk(&[], 4).is_empty());
        assert_eq!(
            merge_shard_topk_hits(&lists, 2),
            vec![(0u32, 3usize), (1, 0)]
        );
    }

    #[test]
    fn empty_database_and_empty_query_batch() {
        let db = codes(&[vec![true, false]]);
        let empty_queries = BinaryCodes::zeros(0, 2);
        assert!(hamming_knn(&db, &empty_queries, 3).is_empty());
        let empty_db = BinaryCodes::zeros(0, 2);
        let q = codes(&[vec![true, false]]);
        assert_eq!(hamming_knn(&empty_db, &q, 3), vec![Vec::<usize>::new()]);
    }

    #[test]
    #[should_panic(expected = "one global id per shard code")]
    fn shard_topk_rejects_id_length_mismatch() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false]]);
        let _ = shard_hamming_topk(&db, &[0, 1], &q, 1);
    }

    #[test]
    #[should_panic(expected = "row range exceeds the shard")]
    fn chunk_scan_rejects_out_of_range_rows() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false]]);
        let _ = shard_hamming_topk_chunk(&db, 0..2, &[0], &q, 1);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn rejects_width_mismatch() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false, true]]);
        let _ = hamming_knn(&db, &q, 1);
    }
}
