//! Retrieval evaluation: ground truth, Hamming search and the paper's metrics.
//!
//! The paper measures binary-hashing quality with (§8.1):
//!
//! * **precision**: using the `K` Euclidean nearest neighbours in the original
//!   space as ground truth, retrieve the `k` Hamming nearest neighbours in
//!   code space and report the fraction that are true neighbours;
//! * **recall@R** (SIFT-1B): the fraction of queries whose (single) true
//!   nearest neighbour appears within the top `R` retrieved points, for a
//!   range of `R`.
//!
//! This crate computes the exact Euclidean ground truth by brute force,
//! performs Hamming k-NN searches over [`BinaryCodes`](parmac_hash::BinaryCodes),
//! and evaluates both metrics.

#![warn(missing_docs)]

pub mod ground_truth;
pub mod index;
pub mod metrics;
pub mod search;

pub use ground_truth::euclidean_knn;
pub use index::PrefixIndex;
pub use metrics::{precision, recall_at_r, recall_curve};
pub use search::{
    hamming_knn, merge_shard_topk, merge_shard_topk_hits, shard_hamming_topk,
    shard_hamming_topk_batched, shard_hamming_topk_chunk,
};
