//! Retrieval metrics: precision and recall@R.

use crate::search::{hamming_knn, hamming_ranking};
use parmac_hash::BinaryCodes;

/// Retrieval precision as defined in §8.1 of the paper: with the `K` Euclidean
/// nearest neighbours of each query as ground truth (`ground_truth[q]`),
/// retrieve the `k` Hamming nearest neighbours in code space and report the
/// average fraction of retrieved points that are true neighbours.
///
/// Returns a value in `[0, 1]`; returns 0.0 when there are no queries.
///
/// # Panics
///
/// Panics if `ground_truth.len() != query_codes.len()` or `k == 0`.
pub fn precision(
    database_codes: &BinaryCodes,
    query_codes: &BinaryCodes,
    ground_truth: &[Vec<usize>],
    k: usize,
) -> f64 {
    assert_eq!(
        ground_truth.len(),
        query_codes.len(),
        "one ground-truth list per query required"
    );
    if query_codes.is_empty() {
        return 0.0;
    }
    let retrieved = hamming_knn(database_codes, query_codes, k);
    let mut total = 0.0;
    for (ret, truth) in retrieved.iter().zip(ground_truth) {
        if ret.is_empty() {
            continue;
        }
        let truth_set: std::collections::HashSet<usize> = truth.iter().copied().collect();
        let hits = ret.iter().filter(|i| truth_set.contains(i)).count();
        total += hits as f64 / ret.len() as f64;
    }
    total / query_codes.len() as f64
}

/// recall@R for a single cutoff: the fraction of queries whose first
/// ground-truth neighbour (`ground_truth[q][0]`) is ranked within the top `R`
/// database points by Hamming distance (§8.1, SIFT-1B protocol).
///
/// Returns 0.0 when there are no queries.
///
/// # Panics
///
/// Panics if `ground_truth.len() != query_codes.len()` or any ground-truth
/// list is empty, or `r == 0`.
pub fn recall_at_r(
    database_codes: &BinaryCodes,
    query_codes: &BinaryCodes,
    ground_truth: &[Vec<usize>],
    r: usize,
) -> f64 {
    recall_curve(database_codes, query_codes, ground_truth, &[r])[0]
}

/// recall@R evaluated at several cutoffs at once (one ranking pass per query).
///
/// Returns one value per entry of `rs`, in the same order.
///
/// # Panics
///
/// Panics if `ground_truth.len() != query_codes.len()`, any ground-truth list
/// is empty, or any cutoff is zero.
pub fn recall_curve(
    database_codes: &BinaryCodes,
    query_codes: &BinaryCodes,
    ground_truth: &[Vec<usize>],
    rs: &[usize],
) -> Vec<f64> {
    assert_eq!(
        ground_truth.len(),
        query_codes.len(),
        "one ground-truth list per query required"
    );
    assert!(rs.iter().all(|&r| r > 0), "cutoffs must be positive");
    if query_codes.is_empty() {
        return vec![0.0; rs.len()];
    }
    let mut hits = vec![0usize; rs.len()];
    for (q, truth) in ground_truth.iter().enumerate() {
        assert!(
            !truth.is_empty(),
            "query {q} has an empty ground-truth list"
        );
        let target = truth[0];
        let ranking = hamming_ranking(database_codes, query_codes, q);
        // Position of the true nearest neighbour in the Hamming ranking. The
        // paper places tied distances at top rank; our deterministic
        // index-order tie-break is a slightly pessimistic variant.
        let pos = ranking
            .iter()
            .position(|&i| i == target)
            .expect("target index must be in the database");
        for (h, &r) in hits.iter_mut().zip(rs) {
            if pos < r {
                *h += 1;
            }
        }
    }
    hits.iter()
        .map(|&h| h as f64 / query_codes.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rows: &[Vec<bool>]) -> BinaryCodes {
        BinaryCodes::from_bools(rows)
    }

    #[test]
    fn perfect_codes_give_perfect_precision() {
        // Queries identical to their true neighbours' codes.
        let db = codes(&[
            vec![true, true, false, false],
            vec![false, false, true, true],
        ]);
        let q = db.clone();
        let gt = vec![vec![0], vec![1]];
        let p = precision(&db, &q, &gt, 1);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_codes_give_low_precision() {
        // All database codes identical: retrieval is arbitrary; with k=2 and a
        // single true neighbour, precision is 0.5 at best.
        let db = codes(&[vec![true, true], vec![true, true], vec![true, true]]);
        let q = codes(&[vec![true, true]]);
        let gt = vec![vec![0]];
        let p = precision(&db, &q, &gt, 2);
        assert!(p <= 0.5 + 1e-12);
    }

    #[test]
    fn precision_is_between_zero_and_one() {
        let db = codes(&[vec![true, false], vec![false, true], vec![true, true]]);
        let q = codes(&[vec![false, false], vec![true, true]]);
        let gt = vec![vec![0, 1], vec![2, 0]];
        let p = precision(&db, &q, &gt, 2);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn recall_increases_with_r() {
        let db = codes(&[
            vec![true, true, true, true],
            vec![true, true, true, false],
            vec![true, true, false, false],
            vec![false, false, false, false],
        ]);
        let q = codes(&[vec![false, false, false, true]]);
        // True nearest neighbour is index 3.
        let gt = vec![vec![3]];
        let curve = recall_curve(&db, &q, &gt, &[1, 2, 4]);
        assert!(curve[0] <= curve[1] && curve[1] <= curve[2]);
        assert_eq!(curve[2], 1.0);
    }

    #[test]
    fn recall_at_full_database_is_one() {
        let db = codes(&[vec![true, false], vec![false, true]]);
        let q = codes(&[vec![true, true]]);
        let gt = vec![vec![1]];
        assert_eq!(recall_at_r(&db, &q, &gt, 2), 1.0);
    }

    #[test]
    fn empty_queries_return_zero() {
        let db = codes(&[vec![true, false]]);
        let q = BinaryCodes::zeros(0, 2);
        assert_eq!(precision(&db, &q, &[], 1), 0.0);
        assert_eq!(recall_curve(&db, &q, &[], &[1]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "one ground-truth list per query")]
    fn precision_rejects_mismatched_ground_truth() {
        let db = codes(&[vec![true]]);
        let q = codes(&[vec![true]]);
        let _ = precision(&db, &q, &[], 1);
    }
}
