//! Retrieval metrics: precision and recall@R.

use crate::search::hamming_knn;
use parmac_hash::BinaryCodes;

/// Retrieval precision as defined in §8.1 of the paper: with the `K` Euclidean
/// nearest neighbours of each query as ground truth (`ground_truth[q]`),
/// retrieve the `k` Hamming nearest neighbours in code space and report the
/// average fraction of retrieved points that are true neighbours.
///
/// Returns a value in `[0, 1]`; returns 0.0 when there are no queries.
///
/// # Panics
///
/// Panics if `ground_truth.len() != query_codes.len()` or `k == 0`.
pub fn precision(
    database_codes: &BinaryCodes,
    query_codes: &BinaryCodes,
    ground_truth: &[Vec<usize>],
    k: usize,
) -> f64 {
    assert_eq!(
        ground_truth.len(),
        query_codes.len(),
        "one ground-truth list per query required"
    );
    if query_codes.is_empty() {
        return 0.0;
    }
    let retrieved = hamming_knn(database_codes, query_codes, k);
    let mut total = 0.0;
    for (ret, truth) in retrieved.iter().zip(ground_truth) {
        if ret.is_empty() {
            continue;
        }
        let truth_set: std::collections::HashSet<usize> = truth.iter().copied().collect();
        let hits = ret.iter().filter(|i| truth_set.contains(i)).count();
        total += hits as f64 / ret.len() as f64;
    }
    total / query_codes.len() as f64
}

/// recall@R for a single cutoff: the fraction of queries whose first
/// ground-truth neighbour (`ground_truth[q][0]`) is ranked within the top `R`
/// database points by Hamming distance (§8.1, SIFT-1B protocol; tied
/// distances rank at the top, see [`recall_curve`]).
///
/// Returns 0.0 when there are no queries.
///
/// # Panics
///
/// Panics if `ground_truth.len() != query_codes.len()` or any ground-truth
/// list is empty, or `r == 0`.
pub fn recall_at_r(
    database_codes: &BinaryCodes,
    query_codes: &BinaryCodes,
    ground_truth: &[Vec<usize>],
    r: usize,
) -> f64 {
    recall_curve(database_codes, query_codes, ground_truth, &[r])[0]
}

/// recall@R evaluated at several cutoffs at once (one distance pass per
/// query).
///
/// Hamming distances over short codes tie massively, and §8.1's protocol
/// ranks tied distances at the top: the target's rank is the number of
/// database points *strictly closer* to the query, computed in `O(N)` per
/// query with no ranking materialised (previously a full sort placed ties in
/// index order, under-reporting recall whenever the target tied with
/// lower-indexed points).
///
/// Returns one value per entry of `rs`, in the same order.
///
/// # Panics
///
/// Panics if `ground_truth.len() != query_codes.len()`, any ground-truth list
/// is empty or names a point outside the database, or any cutoff is zero.
pub fn recall_curve(
    database_codes: &BinaryCodes,
    query_codes: &BinaryCodes,
    ground_truth: &[Vec<usize>],
    rs: &[usize],
) -> Vec<f64> {
    assert_eq!(
        ground_truth.len(),
        query_codes.len(),
        "one ground-truth list per query required"
    );
    assert!(rs.iter().all(|&r| r > 0), "cutoffs must be positive");
    if query_codes.is_empty() {
        return vec![0.0; rs.len()];
    }
    let mut hits = vec![0usize; rs.len()];
    for (q, truth) in ground_truth.iter().enumerate() {
        assert!(
            !truth.is_empty(),
            "query {q} has an empty ground-truth list"
        );
        let target = truth[0];
        assert!(
            target < database_codes.len(),
            "target index must be in the database"
        );
        let target_dist = query_codes.hamming(q, database_codes, target);
        let rank = (0..database_codes.len())
            .filter(|&i| query_codes.hamming(q, database_codes, i) < target_dist)
            .count();
        for (h, &r) in hits.iter_mut().zip(rs) {
            if rank < r {
                *h += 1;
            }
        }
    }
    hits.iter()
        .map(|&h| h as f64 / query_codes.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rows: &[Vec<bool>]) -> BinaryCodes {
        BinaryCodes::from_bools(rows)
    }

    #[test]
    fn perfect_codes_give_perfect_precision() {
        // Queries identical to their true neighbours' codes.
        let db = codes(&[
            vec![true, true, false, false],
            vec![false, false, true, true],
        ]);
        let q = db.clone();
        let gt = vec![vec![0], vec![1]];
        let p = precision(&db, &q, &gt, 1);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_codes_give_low_precision() {
        // All database codes identical: retrieval is arbitrary; with k=2 and a
        // single true neighbour, precision is 0.5 at best.
        let db = codes(&[vec![true, true], vec![true, true], vec![true, true]]);
        let q = codes(&[vec![true, true]]);
        let gt = vec![vec![0]];
        let p = precision(&db, &q, &gt, 2);
        assert!(p <= 0.5 + 1e-12);
    }

    #[test]
    fn precision_is_between_zero_and_one() {
        let db = codes(&[vec![true, false], vec![false, true], vec![true, true]]);
        let q = codes(&[vec![false, false], vec![true, true]]);
        let gt = vec![vec![0, 1], vec![2, 0]];
        let p = precision(&db, &q, &gt, 2);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn recall_increases_with_r() {
        let db = codes(&[
            vec![true, true, true, true],
            vec![true, true, true, false],
            vec![true, true, false, false],
            vec![false, false, false, false],
        ]);
        let q = codes(&[vec![false, false, false, true]]);
        // True nearest neighbour is index 3.
        let gt = vec![vec![3]];
        let curve = recall_curve(&db, &q, &gt, &[1, 2, 4]);
        assert!(curve[0] <= curve[1] && curve[1] <= curve[2]);
        assert_eq!(curve[2], 1.0);
    }

    #[test]
    fn tied_distances_rank_at_the_top() {
        // Five of six database codes are identical to the query (distance 0)
        // and the target is the *last* of them. §8.1 places ties at top rank,
        // so recall@1 must be 1 even though four lower-indexed points tie;
        // the old index-order tie-break reported 0 until R > 4.
        let tie = vec![true, false, true, false];
        let db = codes(&[
            tie.clone(),
            tie.clone(),
            tie.clone(),
            tie.clone(),
            vec![false, true, false, true],
            tie.clone(),
        ]);
        let q = codes(&[tie]);
        let gt = vec![vec![5]];
        assert_eq!(recall_curve(&db, &q, &gt, &[1, 2, 5]), vec![1.0, 1.0, 1.0]);
        // A strictly closer point still pushes the target down: with the
        // target at distance 4 and five points at distance 0, its rank is 5.
        let gt_far = vec![vec![4]];
        assert_eq!(recall_curve(&db, &q, &gt_far, &[5, 6]), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "target index must be in the database")]
    fn recall_rejects_out_of_range_target() {
        let db = codes(&[vec![true, false]]);
        let q = codes(&[vec![true, false]]);
        let _ = recall_curve(&db, &q, &[vec![7]], &[1]);
    }

    #[test]
    fn recall_at_full_database_is_one() {
        let db = codes(&[vec![true, false], vec![false, true]]);
        let q = codes(&[vec![true, true]]);
        let gt = vec![vec![1]];
        assert_eq!(recall_at_r(&db, &q, &gt, 2), 1.0);
    }

    #[test]
    fn empty_queries_return_zero() {
        let db = codes(&[vec![true, false]]);
        let q = BinaryCodes::zeros(0, 2);
        assert_eq!(precision(&db, &q, &[], 1), 0.0);
        assert_eq!(recall_curve(&db, &q, &[], &[1]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "one ground-truth list per query")]
    fn precision_rejects_mismatched_ground_truth() {
        let db = codes(&[vec![true]]);
        let q = codes(&[vec![true]]);
        let _ = precision(&db, &q, &[], 1);
    }
}
