//! The linear decoder `f(z) = Wz + c` of the binary autoencoder.

use crate::binary_code::BinaryCodes;
use parmac_linalg::cholesky::solve_ridge;
use parmac_linalg::vector::dot;
use parmac_linalg::Mat;
use parmac_optim::{RidgeRegression, SgdConfig, Submodel};
use serde::{Deserialize, Serialize};

/// A linear decoder mapping `L`-bit codes (as 0/1 vectors) back to `R^D`.
///
/// Each of the `D` output dimensions is an independent linear least-squares
/// problem in the MAC W step (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearDecoder {
    /// `D × L` weight matrix.
    weights: Mat,
    /// Per-output biases, length `D`.
    biases: Vec<f64>,
}

impl LinearDecoder {
    /// Creates a decoder with explicit weights (`D × L`) and biases (length `D`).
    ///
    /// # Panics
    ///
    /// Panics if `biases.len() != weights.rows()`.
    pub fn new(weights: Mat, biases: Vec<f64>) -> Self {
        assert_eq!(weights.rows(), biases.len(), "bias count must equal D");
        LinearDecoder { weights, biases }
    }

    /// Creates an all-zero decoder mapping `n_bits`-bit codes to `R^dim_out`.
    pub fn zeros(dim_out: usize, n_bits: usize) -> Self {
        LinearDecoder {
            weights: Mat::zeros(dim_out, n_bits),
            biases: vec![0.0; dim_out],
        }
    }

    /// Fits the decoder exactly by ridge least squares from codes `z` (as a
    /// 0/1 `N × L` matrix) to targets `x` (`N × D`): the exact W step over `f`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn fit_least_squares(z: &Mat, x: &Mat, lambda: f64) -> Self {
        assert_eq!(z.rows(), x.rows(), "code/target row mismatch");
        let za = z.with_bias_column();
        let w_aug = solve_ridge(&za, x, lambda.max(1e-10))
            .expect("regularised decoder normal equations are SPD");
        // w_aug is (L+1) × D; split into weights (D × L) and biases.
        let l = z.cols();
        let d = x.cols();
        let mut weights = Mat::zeros(d, l);
        let mut biases = vec![0.0; d];
        for out in 0..d {
            for bit in 0..l {
                weights[(out, bit)] = w_aug[(bit, out)];
            }
            biases[out] = w_aug[(l, out)];
        }
        LinearDecoder { weights, biases }
    }

    /// Builds a decoder from `D` trained ridge-regression rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or inconsistent in dimensionality.
    pub fn from_ridge_rows(rows: &[RidgeRegression]) -> Self {
        assert!(!rows.is_empty(), "need at least one output row");
        let l = rows[0].dim();
        let mut weights = Mat::zeros(rows.len(), l);
        let mut biases = Vec::with_capacity(rows.len());
        for (d, r) in rows.iter().enumerate() {
            assert_eq!(r.dim(), l, "row {d} has inconsistent dimensionality");
            weights.set_row(d, r.weight_vector());
            biases.push(r.bias());
        }
        LinearDecoder { weights, biases }
    }

    /// Splits the decoder into `D` ridge-regression rows (to seed a W step).
    pub fn to_ridge_rows(&self, config: SgdConfig) -> Vec<RidgeRegression> {
        (0..self.dim_out())
            .map(|d| {
                let mut r = RidgeRegression::new(self.n_bits(), config);
                let mut w = self.weights.row(d).to_vec();
                w.push(self.biases[d]);
                r.set_weights(&w);
                r
            })
            .collect()
    }

    /// Output dimensionality `D`.
    pub fn dim_out(&self) -> usize {
        self.weights.rows()
    }

    /// Code length `L` the decoder expects.
    pub fn n_bits(&self) -> usize {
        self.weights.cols()
    }

    /// The `D × L` weight matrix.
    pub fn weights(&self) -> &Mat {
        &self.weights
    }

    /// The per-output biases.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Decodes a single 0/1 code vector.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != n_bits()`.
    pub fn decode_one(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n_bits(), "code length mismatch");
        (0..self.dim_out())
            .map(|d| dot(self.weights.row(d), z) + self.biases[d])
            .collect()
    }

    /// Decodes every code in `codes` into an `N × D` matrix.
    pub fn decode(&self, codes: &BinaryCodes) -> Mat {
        let mut out = Mat::zeros(codes.len(), self.dim_out());
        for i in 0..codes.len() {
            let z = codes.to_f64_row(i);
            let x = self.decode_one(&z);
            out.set_row(i, &x);
        }
        out
    }

    /// Squared reconstruction error `Σ‖x_n − f(z_n)‖²` over a dataset — the
    /// binary autoencoder objective E_BA of eq. (1) for fixed codes.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn reconstruction_error(&self, codes: &BinaryCodes, x: &Mat) -> f64 {
        assert_eq!(codes.len(), x.rows(), "code/data count mismatch");
        let mut err = 0.0;
        for i in 0..codes.len() {
            let z = codes.to_f64_row(i);
            let rec = self.decode_one(&z);
            err += rec
                .iter()
                .zip(x.row(i))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn decode_one_matches_manual_computation() {
        let dec = LinearDecoder::new(
            Mat::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]),
            vec![0.0, 1.0],
        );
        let out = dec.decode_one(&[1.0, 0.0]);
        assert_eq!(out, vec![1.0, 1.5]);
    }

    #[test]
    fn least_squares_fit_reconstructs_linear_data() {
        let mut rng = SmallRng::seed_from_u64(0);
        // Ground-truth decoder
        let w = Mat::random_normal(6, 4, &mut rng);
        let b: Vec<f64> = (0..6).map(|i| i as f64 * 0.1).collect();
        let truth = LinearDecoder::new(w, b);
        // Random binary codes and their exact decodings as targets.
        let mut z = Mat::zeros(100, 4);
        for i in 0..100 {
            for j in 0..4 {
                z[(i, j)] = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
            }
        }
        let codes = BinaryCodes::from_matrix(&z);
        let x = truth.decode(&codes);
        let fitted = LinearDecoder::fit_least_squares(&z, &x, 1e-8);
        assert!(fitted.reconstruction_error(&codes, &x) < 1e-6);
    }

    #[test]
    fn ridge_row_round_trip() {
        let mut rng = SmallRng::seed_from_u64(1);
        let dec = LinearDecoder::new(Mat::random_normal(3, 5, &mut rng), vec![0.1, 0.2, 0.3]);
        let rows = dec.to_ridge_rows(SgdConfig::new());
        let back = LinearDecoder::from_ridge_rows(&rows);
        assert_eq!(dec, back);
    }

    #[test]
    fn reconstruction_error_is_zero_for_perfect_model() {
        let dec = LinearDecoder::new(Mat::from_rows(&[vec![2.0]]), vec![0.0]);
        let z = Mat::from_rows(&[vec![1.0], vec![0.0]]);
        let codes = BinaryCodes::from_matrix(&z);
        let x = Mat::from_rows(&[vec![2.0], vec![0.0]]);
        assert_eq!(dec.reconstruction_error(&codes, &x), 0.0);
    }

    #[test]
    fn zeros_decoder_has_zero_output() {
        let dec = LinearDecoder::zeros(4, 8);
        assert_eq!(dec.decode_one(&[1.0; 8]), vec![0.0; 4]);
        assert_eq!(dec.dim_out(), 4);
        assert_eq!(dec.n_bits(), 8);
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn decode_one_rejects_wrong_length() {
        let dec = LinearDecoder::zeros(2, 3);
        let _ = dec.decode_one(&[1.0, 0.0]);
    }
}
