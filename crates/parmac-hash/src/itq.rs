//! Iterative Quantization (ITQ) baseline (Gong et al., 2013).
//!
//! The paper cites ITQ as the established unsupervised binary-hashing approach
//! that binary autoencoders trained with MAC improve over. ITQ projects the
//! data onto its top `L` principal directions and then finds an orthogonal
//! rotation `R` minimising the quantisation error `‖B − V R‖²_F` between the
//! rotated projections `V R` and their signs `B`, by alternating:
//!
//! 1. `B = sign(V R)` (fix `R`, update codes), and
//! 2. the orthogonal-Procrustes solution `R = U Wᵀ` from the SVD
//!    `Vᵀ B = U S Wᵀ` (fix `B`, update `R`).
//!
//! The small `L × L` SVD is computed from the symmetric eigendecomposition of
//! `MᵀM`, which is all the linear-algebra substrate provides — adequate
//! because `L ≤ 64` in all experiments.

use crate::binary_code::BinaryCodes;
use crate::encoder::HashFunction;
use parmac_linalg::{pca, symmetric_eigen, LinalgError, Mat, Pca};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A fitted ITQ model: PCA projection plus learned orthogonal rotation.
#[derive(Debug, Clone)]
pub struct Itq {
    pca: Pca,
    rotation: Mat,
    quantization_error: f64,
}

impl Itq {
    /// Fits ITQ with `n_bits` bits on the rows of `x`, running `n_iterations`
    /// alternations (the original paper uses 50; a handful suffice for the
    /// synthetic data here).
    ///
    /// # Errors
    ///
    /// Propagates PCA/eigendecomposition errors (empty input, more bits than
    /// input dimensions, ...).
    pub fn fit(
        x: &Mat,
        n_bits: usize,
        n_iterations: usize,
        seed: u64,
    ) -> Result<Self, LinalgError> {
        let pca_model = pca(x, n_bits)?;
        let v = pca_model.transform(x)?; // N × L projected data
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rotation = random_orthogonal(n_bits, &mut rng);
        let mut quantization_error = f64::INFINITY;

        for _ in 0..n_iterations.max(1) {
            let vr = v.matmul(&rotation)?;
            // B = sign(VR) as ±1.
            let b = vr.map(|t| if t >= 0.0 { 1.0 } else { -1.0 });
            quantization_error = (&b - &vr).sum_squares();
            // Procrustes: R = U Wᵀ with Vᵀ B = U S Wᵀ.
            let m = v.transpose().matmul(&b)?;
            rotation = procrustes_rotation(&m)?;
        }

        Ok(Itq {
            pca: pca_model,
            rotation,
            quantization_error,
        })
    }

    /// The learned orthogonal rotation `R` (`L × L`).
    pub fn rotation(&self) -> &Mat {
        &self.rotation
    }

    /// Final quantisation error `‖B − VR‖²_F` on the training data.
    pub fn quantization_error(&self) -> f64 {
        self.quantization_error
    }

    /// Encodes every row of `x` (project, rotate, threshold at zero).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` does not match the training dimensionality.
    pub fn try_encode(&self, x: &Mat) -> Result<BinaryCodes, LinalgError> {
        let v = self.pca.transform(x)?;
        let vr = v.matmul(&self.rotation)?;
        Ok(BinaryCodes::from_matrix(&vr.map(|t| {
            if t >= 0.0 {
                1.0
            } else {
                0.0
            }
        })))
    }
}

impl HashFunction for Itq {
    fn n_bits(&self) -> usize {
        self.rotation.rows()
    }

    fn input_dim(&self) -> usize {
        self.pca.mean().len()
    }

    fn encode_one(&self, x: &[f64]) -> Vec<bool> {
        let m = Mat::from_vec(1, x.len(), x.to_vec());
        let codes = self.try_encode(&m).expect("dimension checked by caller");
        (0..codes.n_bits()).map(|b| codes.bit(0, b)).collect()
    }
}

/// Orthogonal-Procrustes rotation maximising `tr(Rᵀ M)`: `R = U Wᵀ` from the
/// SVD `M = U S Wᵀ`, computed via the eigendecomposition of `MᵀM`.
fn procrustes_rotation(m: &Mat) -> Result<Mat, LinalgError> {
    let n = m.rows();
    let mtm = m.transpose().matmul(m)?;
    let eig = symmetric_eigen(&mtm)?;
    // Singular values and right singular vectors.
    let w = &eig.eigenvectors; // columns are right singular vectors
    let mut u = Mat::zeros(n, n);
    for j in 0..n {
        let s = eig.eigenvalues[j].max(0.0).sqrt().max(1e-12);
        let wj = w.col(j);
        let mwj = m.matvec(&wj)?;
        let col: Vec<f64> = mwj.iter().map(|v| v / s).collect();
        u.set_col(j, &col);
    }
    u.matmul(&w.transpose())
}

/// A Haar-ish random orthogonal matrix from Gram–Schmidt on a Gaussian matrix.
fn random_orthogonal(n: usize, rng: &mut SmallRng) -> Mat {
    let g = Mat::random_normal(n, n, rng);
    let mut q = Mat::zeros(n, n);
    for j in 0..n {
        let mut col = g.col(j);
        for k in 0..j {
            let qk = q.col(k);
            let proj: f64 = col.iter().zip(&qk).map(|(a, b)| a * b).sum();
            for (c, qv) in col.iter_mut().zip(&qk) {
                *c -= proj * qv;
            }
        }
        let norm: f64 = col.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        for c in &mut col {
            *c /= norm;
        }
        q.set_col(j, &col);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_data(n: usize, seed: u64) -> Mat {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut x = Mat::random_normal(n, 8, &mut rng);
        for i in 0..n {
            let c = i % 4;
            x[(i, 0)] += (c as f64 - 1.5) * 6.0;
            x[(i, 1)] += if c % 2 == 0 { 5.0 } else { -5.0 };
        }
        x
    }

    #[test]
    fn rotation_is_orthogonal() {
        let x = clustered_data(200, 0);
        let itq = Itq::fit(&x, 4, 20, 7).unwrap();
        let r = itq.rotation();
        let rtr = r.transpose().matmul(r).unwrap();
        assert!((&rtr - &Mat::identity(4)).max_abs() < 1e-6);
    }

    #[test]
    fn quantization_error_not_worse_than_tpca() {
        // ITQ explicitly minimises ‖B − VR‖²; with R = I that is the tPCA
        // quantisation error, so the fitted error must be ≤ the R = I error.
        let x = clustered_data(300, 1);
        let n_bits = 4;
        let pca_model = pca(&x, n_bits).unwrap();
        let v = pca_model.transform(&x).unwrap();
        let b = v.map(|t| if t >= 0.0 { 1.0 } else { -1.0 });
        let tpca_err = (&b - &v).sum_squares();
        let itq = Itq::fit(&x, n_bits, 30, 3).unwrap();
        assert!(
            itq.quantization_error() <= tpca_err * 1.001,
            "itq {} vs tpca {}",
            itq.quantization_error(),
            tpca_err
        );
    }

    #[test]
    fn encode_is_consistent_between_one_and_many() {
        let x = clustered_data(50, 2);
        let itq = Itq::fit(&x, 3, 10, 0).unwrap();
        let codes = itq.try_encode(&x).unwrap();
        let one = itq.encode_one(x.row(7));
        for (b, &bit) in one.iter().enumerate() {
            assert_eq!(bit, codes.bit(7, b));
        }
    }

    #[test]
    fn same_cluster_points_get_similar_codes() {
        let x = clustered_data(200, 3);
        let itq = Itq::fit(&x, 4, 20, 1).unwrap();
        let codes = itq.try_encode(&x).unwrap();
        // Points 0 and 4 are in the same cluster; 0 and 2 are in different ones.
        let same = codes.hamming_within(0, 4);
        let diff = codes.hamming_within(0, 2);
        assert!(same <= diff, "same-cluster {same} vs cross-cluster {diff}");
    }

    #[test]
    fn rejects_more_bits_than_dims() {
        let x = Mat::zeros(10, 2);
        assert!(Itq::fit(&x, 3, 5, 0).is_err());
    }
}
