//! Bit-packed binary codes and Hamming distances.
//!
//! Binary hashing owes its speed and memory footprint to packing each code
//! into `L` bits (the paper's motivating example: 10⁹ points × 64 bits fit in
//! 8 GB instead of 2 TB of floats). [`BinaryCodes`] stores `N` codes of `L`
//! bits each in `⌈L/64⌉` machine words per code and provides constant-time bit
//! access and popcount-based Hamming distances.

use parmac_linalg::Mat;
use serde::{Deserialize, Serialize};

/// A collection of `N` binary codes of `L` bits each, bit-packed into `u64`
/// words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryCodes {
    words_per_code: usize,
    n_bits: usize,
    data: Vec<u64>,
}

impl BinaryCodes {
    /// Creates `n_codes` all-zero codes of `n_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0`.
    pub fn zeros(n_codes: usize, n_bits: usize) -> Self {
        assert!(n_bits > 0, "codes must have at least one bit");
        let words_per_code = n_bits.div_ceil(64);
        BinaryCodes {
            words_per_code,
            n_bits,
            data: vec![0; n_codes * words_per_code],
        }
    }

    /// Builds codes from a matrix whose entries are interpreted as bits
    /// (`> 0.5` ⇒ 1): one row per code.
    pub fn from_matrix(m: &Mat) -> Self {
        let mut codes = BinaryCodes::zeros(m.rows(), m.cols().max(1));
        if m.cols() == 0 {
            return codes;
        }
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                codes.set_bit(i, j, v > 0.5);
            }
        }
        codes
    }

    /// Builds codes from per-code boolean slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the input is empty with no
    /// way to infer the bit count.
    pub fn from_bools(rows: &[Vec<bool>]) -> Self {
        assert!(!rows.is_empty(), "need at least one code");
        let n_bits = rows[0].len();
        let mut codes = BinaryCodes::zeros(rows.len(), n_bits.max(1));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n_bits, "row {i} has inconsistent length");
            for (j, &b) in row.iter().enumerate() {
                codes.set_bit(i, j, b);
            }
        }
        codes
    }

    /// Number of codes `N`.
    pub fn len(&self) -> usize {
        self.data
            .len()
            .checked_div(self.words_per_code)
            .unwrap_or(0)
    }

    /// Returns `true` if there are no codes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of bits per code `L`.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Reads bit `bit` of code `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `bit` is out of range.
    pub fn bit(&self, i: usize, bit: usize) -> bool {
        assert!(bit < self.n_bits, "bit {bit} out of range");
        let word = self.data[i * self.words_per_code + bit / 64];
        (word >> (bit % 64)) & 1 == 1
    }

    /// Sets bit `bit` of code `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `bit` is out of range.
    pub fn set_bit(&mut self, i: usize, bit: usize, value: bool) {
        assert!(bit < self.n_bits, "bit {bit} out of range");
        let word = &mut self.data[i * self.words_per_code + bit / 64];
        if value {
            *word |= 1 << (bit % 64);
        } else {
            *word &= !(1 << (bit % 64));
        }
    }

    /// Number of `u64` words used per code: `⌈L/64⌉`.
    pub fn words_per_code(&self) -> usize {
        self.words_per_code
    }

    /// The packed words of code `i`.
    pub fn code_words(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_code..(i + 1) * self.words_per_code]
    }

    /// All packed words, row-major: code `i` occupies
    /// `words[i * words_per_code() .. (i + 1) * words_per_code()]`. This is
    /// the layout batched scan kernels walk directly instead of calling
    /// [`code_words`](Self::code_words) per pair.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Appends every code of `other`, in order, to this collection — a word
    /// `memcpy`, not a per-bit rebuild. Used to coalesce concurrently
    /// admitted query batches into one fan-out batch.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ.
    pub fn append_codes(&mut self, other: &BinaryCodes) {
        assert_eq!(self.n_bits, other.n_bits, "bit-width mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// Hamming distance between code `i` of `self` and code `j` of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two collections have different bit widths.
    pub fn hamming(&self, i: usize, other: &BinaryCodes, j: usize) -> u32 {
        assert_eq!(self.n_bits, other.n_bits, "bit-width mismatch");
        self.code_words(i)
            .iter()
            .zip(other.code_words(j))
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance between two codes of this collection.
    pub fn hamming_within(&self, i: usize, j: usize) -> u32 {
        self.hamming(i, self, j)
    }

    /// Converts code `i` to a 0/1 `f64` vector (the representation the decoder
    /// consumes).
    pub fn to_f64_row(&self, i: usize) -> Vec<f64> {
        (0..self.n_bits)
            .map(|b| if self.bit(i, b) { 1.0 } else { 0.0 })
            .collect()
    }

    /// Converts all codes to an `N × L` 0/1 matrix.
    pub fn to_matrix(&self) -> Mat {
        let mut m = Mat::zeros(self.len(), self.n_bits);
        for i in 0..self.len() {
            let row = self.to_f64_row(i);
            m.set_row(i, &row);
        }
        m
    }

    /// Returns whether code `i` equals the 0/1 (or boolean-like) slice
    /// `bits`, without materialising the stored code as floats. Used by the
    /// Z-step sweeps to detect unchanged codes without a per-point allocation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_equals(&self, i: usize, bits: &[f64]) -> bool {
        bits.len() == self.n_bits && (0..self.n_bits).all(|b| (bits[b] > 0.5) == self.bit(i, b))
    }

    /// Overwrites code `i` from a 0/1 (or boolean-like) slice.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n_bits()`.
    pub fn set_code(&mut self, i: usize, bits: &[f64]) {
        assert_eq!(bits.len(), self.n_bits, "set_code: length mismatch");
        for (b, &v) in bits.iter().enumerate() {
            self.set_bit(i, b, v > 0.5);
        }
    }

    /// Appends a new code given as a 0/1 (or boolean-like) slice, growing the
    /// collection by one. Used when streaming new data points into a machine
    /// (their codes are initialised from the current encoder, §4.3).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n_bits()`.
    pub fn push_code(&mut self, bits: &[f64]) {
        assert_eq!(bits.len(), self.n_bits, "push_code: length mismatch");
        self.data
            .extend(std::iter::repeat_n(0, self.words_per_code));
        let i = self.len() - 1;
        self.set_code(i, bits);
    }

    /// Number of positions in which the two collections differ, summed over
    /// all codes. Useful to detect whether a Z step changed anything (the
    /// paper's stopping criterion).
    ///
    /// # Panics
    ///
    /// Panics if the collections have different sizes or bit widths.
    pub fn total_differing_bits(&self, other: &BinaryCodes) -> u64 {
        assert_eq!(self.len(), other.len(), "code count mismatch");
        assert_eq!(self.n_bits, other.n_bits, "bit-width mismatch");
        (0..self.len())
            .map(|i| self.hamming(i, other, i) as u64)
            .sum()
    }

    /// Memory used by the packed codes, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }

    /// Overwrites code `dst` of `self` with code `src` of `other` — a word
    /// `memcpy`. Used by the prefix index to place codes into buckets.
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ or either index is out of range.
    pub fn copy_code_from(&mut self, dst: usize, other: &BinaryCodes, src: usize) {
        assert_eq!(self.n_bits, other.n_bits, "bit-width mismatch");
        let w = self.words_per_code;
        self.data[dst * w..(dst + 1) * w].copy_from_slice(&other.data[src * w..(src + 1) * w]);
    }

    /// Overwrites code `dst` with code `src` of the same collection (`src`
    /// and `dst` may be equal). Used for within-bucket swap-removal.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn copy_code_within(&mut self, src: usize, dst: usize) {
        let w = self.words_per_code;
        assert!(
            src < self.len() && dst < self.len(),
            "code index out of range"
        );
        self.data.copy_within(src * w..(src + 1) * w, dst * w);
    }

    /// Appends a copy of code `src` of `other`, growing the collection by
    /// one — a word `memcpy`, unlike the bit-by-bit [`push_code`](Self::push_code).
    ///
    /// # Panics
    ///
    /// Panics if the bit widths differ or `src` is out of range.
    pub fn push_code_from(&mut self, other: &BinaryCodes, src: usize) {
        assert_eq!(self.n_bits, other.n_bits, "bit-width mismatch");
        let w = self.words_per_code;
        self.data
            .extend_from_slice(&other.data[src * w..(src + 1) * w]);
    }

    /// The low `bits` bits of code `i` as an integer: the code's *prefix*,
    /// the bucketing key of the multi-probe index. Bits past `n_bits()` read
    /// as zero (padding bits of the first word are never set), so a prefix
    /// wider than the code simply returns the whole first word's payload.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 64, or `i` is out of range.
    pub fn prefix_bits(&self, i: usize, bits: usize) -> u64 {
        assert!((1..=64).contains(&bits), "prefix must be 1..=64 bits");
        let word = self.data[i * self.words_per_code];
        if bits == 64 {
            word
        } else {
            word & ((1u64 << bits) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_bits() {
        let mut c = BinaryCodes::zeros(3, 70); // spans two words
        c.set_bit(1, 0, true);
        c.set_bit(1, 69, true);
        assert!(c.bit(1, 0));
        assert!(c.bit(1, 69));
        assert!(!c.bit(1, 35));
        assert!(!c.bit(0, 0));
        c.set_bit(1, 0, false);
        assert!(!c.bit(1, 0));
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = BinaryCodes::from_bools(&[vec![true, false, true, true]]);
        let b = BinaryCodes::from_bools(&[vec![true, true, false, true]]);
        assert_eq!(a.hamming(0, &b, 0), 2);
        assert_eq!(a.hamming(0, &a, 0), 0);
    }

    #[test]
    fn hamming_is_symmetric_and_bounded() {
        let a = BinaryCodes::from_bools(&[vec![true; 16], vec![false; 16]]);
        assert_eq!(a.hamming_within(0, 1), 16);
        assert_eq!(a.hamming_within(1, 0), 16);
    }

    #[test]
    fn matrix_round_trip() {
        let m = Mat::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]);
        let c = BinaryCodes::from_matrix(&m);
        assert_eq!(c.to_matrix(), m);
        assert_eq!(c.len(), 2);
        assert_eq!(c.n_bits(), 3);
    }

    #[test]
    fn set_code_and_to_f64_row() {
        let mut c = BinaryCodes::zeros(1, 4);
        c.set_code(0, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(c.to_f64_row(0), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn row_equals_matches_float_comparison() {
        let mut c = BinaryCodes::zeros(1, 4);
        c.set_code(0, &[1.0, 0.0, 0.0, 1.0]);
        assert!(c.row_equals(0, &[1.0, 0.0, 0.0, 1.0]));
        assert!(!c.row_equals(0, &[1.0, 0.0, 1.0, 1.0]));
        assert!(!c.row_equals(0, &[1.0, 0.0, 0.0]));
    }

    #[test]
    fn total_differing_bits_detects_no_change() {
        let a = BinaryCodes::from_bools(&[vec![true, false], vec![false, true]]);
        let mut b = a.clone();
        assert_eq!(a.total_differing_bits(&b), 0);
        b.set_bit(0, 1, true);
        assert_eq!(a.total_differing_bits(&b), 1);
    }

    #[test]
    fn push_code_grows_the_collection() {
        let mut c = BinaryCodes::zeros(2, 70);
        c.push_code(&{
            let mut v = vec![0.0; 70];
            v[0] = 1.0;
            v[69] = 1.0;
            v
        });
        assert_eq!(c.len(), 3);
        assert!(c.bit(2, 0));
        assert!(c.bit(2, 69));
        assert!(!c.bit(2, 35));
        // Existing codes are untouched.
        assert!(!c.bit(0, 0));
    }

    #[test]
    fn memory_is_packed() {
        // 1000 codes of 64 bits = 8000 bytes, versus 512 000 bytes as f64.
        let c = BinaryCodes::zeros(1000, 64);
        assert_eq!(c.memory_bytes(), 8000);
    }

    #[test]
    #[should_panic(expected = "bit-width mismatch")]
    fn hamming_rejects_mismatched_widths() {
        let a = BinaryCodes::zeros(1, 8);
        let b = BinaryCodes::zeros(1, 16);
        let _ = a.hamming(0, &b, 0);
    }

    #[test]
    fn as_words_exposes_the_row_major_packed_layout() {
        let mut c = BinaryCodes::zeros(3, 70); // two words per code
        c.set_bit(1, 0, true);
        c.set_bit(2, 69, true);
        assert_eq!(c.words_per_code(), 2);
        let words = c.as_words();
        assert_eq!(words.len(), 6);
        assert_eq!(&words[2..4], c.code_words(1));
        assert_eq!(words[2], 1);
        assert_eq!(words[5], 1 << 5); // bit 69 = word 1, bit 5
    }

    #[test]
    fn append_codes_concatenates_without_rebuilding() {
        let a0 = BinaryCodes::from_bools(&[vec![true, false, true]]);
        let b = BinaryCodes::from_bools(&[vec![false, true, true], vec![true, true, false]]);
        let mut a = a0.clone();
        a.append_codes(&b);
        assert_eq!(a.len(), 3);
        for bit in 0..3 {
            assert_eq!(a.bit(0, bit), a0.bit(0, bit));
            assert_eq!(a.bit(1, bit), b.bit(0, bit));
            assert_eq!(a.bit(2, bit), b.bit(1, bit));
        }
    }

    #[test]
    #[should_panic(expected = "bit-width mismatch")]
    fn append_codes_rejects_mismatched_widths() {
        let mut a = BinaryCodes::zeros(1, 8);
        a.append_codes(&BinaryCodes::zeros(1, 9));
    }

    #[test]
    fn copy_and_push_codes_move_whole_words() {
        let src = BinaryCodes::from_bools(&[vec![true; 70], vec![false; 70]]);
        let mut dst = BinaryCodes::zeros(2, 70);
        dst.copy_code_from(1, &src, 0);
        assert_eq!(dst.code_words(1), src.code_words(0));
        assert_eq!(dst.code_words(0), &[0, 0]);
        dst.copy_code_within(1, 0);
        assert_eq!(dst.code_words(0), src.code_words(0));
        dst.push_code_from(&src, 1);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.code_words(2), src.code_words(1));
    }

    #[test]
    fn prefix_bits_reads_the_low_bits_and_pads_with_zero() {
        let mut c = BinaryCodes::zeros(1, 6);
        c.set_code(0, &[1.0, 0.0, 1.0, 0.0, 0.0, 1.0]); // word 0 = 0b100101
        assert_eq!(c.prefix_bits(0, 3), 0b101);
        assert_eq!(c.prefix_bits(0, 6), 0b100101);
        // Wider than the code: padding bits read as zero.
        assert_eq!(c.prefix_bits(0, 16), 0b100101);
        assert_eq!(c.prefix_bits(0, 64), 0b100101);
    }

    #[test]
    #[should_panic(expected = "bit-width mismatch")]
    fn copy_code_from_rejects_mismatched_widths() {
        let mut a = BinaryCodes::zeros(1, 8);
        let b = BinaryCodes::zeros(1, 16);
        a.copy_code_from(0, &b, 0);
    }

    #[test]
    fn bit_boundary_at_64_bits() {
        let mut c = BinaryCodes::zeros(1, 128);
        c.set_bit(0, 63, true);
        c.set_bit(0, 64, true);
        assert!(c.bit(0, 63));
        assert!(c.bit(0, 64));
        assert_eq!(c.code_words(0)[0], 1 << 63);
        assert_eq!(c.code_words(0)[1], 1);
    }
}
