//! Word-level XOR + popcount distance kernels with runtime SIMD dispatch.
//!
//! [`block_hamming`] computes the Hamming distance between one query code and
//! a contiguous block of packed point codes — the innermost loop of every
//! batched retrieval scan. On x86-64 with AVX2 available it runs a vectorised
//! kernel (XOR + nibble-LUT popcount via `pshufb`, horizontal sums via
//! `psadbw`, four `u64` lanes per vector); everywhere else, and whenever the
//! [`FORCE_SCALAR_ENV`] environment variable is set, it runs the scalar
//! `count_ones` loop. Both paths produce **bit-identical** distances — popcount
//! is an exact integer computation — so callers may treat the dispatch as
//! invisible; the equivalence tests run the suite under both paths in CI.
//!
//! AVX2 has no vector popcount instruction. The kernel uses the classic
//! Muła nibble-LUT construction: split each byte into two 4-bit nibbles, look
//! both up in a 16-entry bit-count table with `_mm256_shuffle_epi8`, add, and
//! reduce the 32 per-byte counts to four per-`u64`-lane counts with
//! `_mm256_sad_epu8` against zero.

use std::sync::OnceLock;

/// Setting this environment variable to anything but `0` forces the scalar
/// popcount path even when the CPU supports AVX2. The choice is read once and
/// cached for the lifetime of the process (kernels must not flip mid-scan).
pub const FORCE_SCALAR_ENV: &str = "PARMAC_FORCE_SCALAR";

/// Whether the vectorised kernel is active: the CPU reports AVX2 and
/// [`FORCE_SCALAR_ENV`] is not set. Cached after the first call.
pub fn simd_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| v != *"0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The name of the active kernel, for bench records and logs.
pub fn simd_backend() -> &'static str {
    if simd_active() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Hamming distances between the query code `query` (its packed words) and
/// every code in `points` (row-major packed words, `query.len()` words per
/// code), written to `out` (one distance per code). Dispatches to the AVX2
/// kernel when [`simd_active`]; the results are bit-identical either way.
///
/// # Panics
///
/// Panics if `query` is empty or `points.len() != out.len() * query.len()`.
pub fn block_hamming(points: &[u64], query: &[u64], out: &mut [u32]) {
    assert!(!query.is_empty(), "query code must have at least one word");
    assert_eq!(
        points.len(),
        out.len() * query.len(),
        "points must hold exactly one code per output slot"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // Safety: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::block_hamming(points, query, out) };
        return;
    }
    block_hamming_scalar(points, query, out);
}

/// The scalar (`u64::count_ones`) kernel behind [`block_hamming`] — the
/// portable fallback, and the pinned reference the SIMD path is tested
/// against.
///
/// # Panics
///
/// As for [`block_hamming`].
pub fn block_hamming_scalar(points: &[u64], query: &[u64], out: &mut [u32]) {
    assert!(!query.is_empty(), "query code must have at least one word");
    assert_eq!(
        points.len(),
        out.len() * query.len(),
        "points must hold exactly one code per output slot"
    );
    if let [q] = *query {
        for (slot, &p) in out.iter_mut().zip(points) {
            *slot = (p ^ q).count_ones();
        }
    } else {
        for (slot, code) in out.iter_mut().zip(points.chunks_exact(query.len())) {
            *slot = code
                .iter()
                .zip(query)
                .map(|(p, q)| (p ^ q).count_ones())
                .sum();
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_loadu_si256,
        _mm256_sad_epu8, _mm256_set1_epi64x, _mm256_set1_epi8, _mm256_setr_epi64x,
        _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Per-`u64`-lane popcount of a 256-bit vector: Muła's nibble LUT
    /// (`pshufb` twice) reduced with `psadbw` — the four lane counts land in
    /// the low 16 bits of each lane.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn popcnt_u64x4(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_nibble = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_nibble);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_nibble);
        let per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(per_byte, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn store_lanes(v: __m256i) -> [u64; 4] {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes
    }

    /// AVX2 entry point; caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn block_hamming(points: &[u64], query: &[u64], out: &mut [u32]) {
        match *query {
            [q] => one_word(points, q, out),
            [q0, q1] => two_words(points, q0, q1, out),
            _ => many_words(points, query, out),
        }
    }

    /// One word per code: four codes per vector.
    #[target_feature(enable = "avx2")]
    unsafe fn one_word(points: &[u64], q: u64, out: &mut [u32]) {
        let qv = _mm256_set1_epi64x(q as i64);
        let vectors = points.len() / 4;
        for v in 0..vectors {
            let p = _mm256_loadu_si256(points.as_ptr().add(4 * v).cast());
            let lanes = store_lanes(popcnt_u64x4(_mm256_xor_si256(p, qv)));
            for (lane, &count) in lanes.iter().enumerate() {
                out[4 * v + lane] = count as u32;
            }
        }
        for i in 4 * vectors..points.len() {
            out[i] = (points[i] ^ q).count_ones();
        }
    }

    /// Two words per code: two codes per vector, lanes summed pairwise.
    #[target_feature(enable = "avx2")]
    unsafe fn two_words(points: &[u64], q0: u64, q1: u64, out: &mut [u32]) {
        let qv = _mm256_setr_epi64x(q0 as i64, q1 as i64, q0 as i64, q1 as i64);
        let pairs = out.len() / 2;
        for v in 0..pairs {
            let p = _mm256_loadu_si256(points.as_ptr().add(4 * v).cast());
            let lanes = store_lanes(popcnt_u64x4(_mm256_xor_si256(p, qv)));
            out[2 * v] = (lanes[0] + lanes[1]) as u32;
            out[2 * v + 1] = (lanes[2] + lanes[3]) as u32;
        }
        for i in 2 * pairs..out.len() {
            out[i] = (points[2 * i] ^ q0).count_ones() + (points[2 * i + 1] ^ q1).count_ones();
        }
    }

    /// Three or more words per code: accumulate lane counts across the code's
    /// word groups of four, finish the ragged tail scalar.
    #[target_feature(enable = "avx2")]
    unsafe fn many_words(points: &[u64], query: &[u64], out: &mut [u32]) {
        let wpc = query.len();
        let vector_words = wpc & !3;
        for (slot, code) in out.iter_mut().zip(points.chunks_exact(wpc)) {
            let mut acc = _mm256_setzero_si256();
            for w in (0..vector_words).step_by(4) {
                let p = _mm256_loadu_si256(code.as_ptr().add(w).cast());
                let q = _mm256_loadu_si256(query.as_ptr().add(w).cast());
                acc = _mm256_add_epi64(acc, popcnt_u64x4(_mm256_xor_si256(p, q)));
            }
            let lanes = store_lanes(acc);
            let mut dist = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as u32;
            for w in vector_words..wpc {
                dist += (code[w] ^ query[w]).count_ones();
            }
            *slot = dist;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic word pattern dense enough to light up every nibble.
    fn word(seed: u64) -> u64 {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x
    }

    fn case(n_codes: usize, wpc: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let points: Vec<u64> = (0..n_codes * wpc).map(|i| word(seed + i as u64)).collect();
        let query: Vec<u64> = (0..wpc).map(|w| word(seed + 1000 + w as u64)).collect();
        (points, query)
    }

    #[test]
    fn dispatched_kernel_matches_the_scalar_reference() {
        // Covers every specialised width (1, 2, ≥3 words per code) and block
        // lengths that leave a ragged vector tail. On AVX2 hosts this pins
        // the SIMD kernel against the scalar one; elsewhere it is a no-op
        // self-comparison.
        for wpc in [1usize, 2, 3, 4, 5, 8] {
            for n_codes in [0usize, 1, 2, 3, 4, 5, 7, 64, 257] {
                let (points, query) = case(n_codes, wpc, (wpc * 31 + n_codes) as u64);
                let mut fast = vec![0u32; n_codes];
                let mut slow = vec![u32::MAX; n_codes];
                block_hamming(&points, &query, &mut fast);
                block_hamming_scalar(&points, &query, &mut slow);
                assert_eq!(fast, slow, "wpc={wpc}, n={n_codes}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_scalar_when_available() {
        // Direct comparison that does not depend on the env-var dispatch, so
        // it exercises the SIMD kernel even under PARMAC_FORCE_SCALAR=1 (the
        // CI scalar job still verifies the vector path compiles and agrees).
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        for wpc in [1usize, 2, 3, 6] {
            let (points, query) = case(100, wpc, 7 + wpc as u64);
            let mut fast = vec![0u32; 100];
            let mut slow = vec![0u32; 100];
            unsafe { avx2::block_hamming(&points, &query, &mut fast) };
            block_hamming_scalar(&points, &query, &mut slow);
            assert_eq!(fast, slow, "wpc={wpc}");
        }
    }

    #[test]
    fn distances_against_count_ones_ground_truth() {
        let (points, query) = case(33, 2, 99);
        let mut out = vec![0u32; 33];
        block_hamming(&points, &query, &mut out);
        for (i, &dist) in out.iter().enumerate() {
            let expect: u32 = (0..2)
                .map(|w| (points[2 * i + w] ^ query[w]).count_ones())
                .sum();
            assert_eq!(dist, expect, "code {i}");
        }
    }

    #[test]
    #[should_panic(expected = "one code per output slot")]
    fn rejects_mismatched_block_shape() {
        let mut out = vec![0u32; 2];
        block_hamming(&[0, 1, 2], &[7, 8], &mut out);
    }
}
