//! Hash functions (encoders): linear and RBF.
//!
//! The encoder of the binary autoencoder is `h(x) = s(Ax)` where `s` is the
//! elementwise step function and `A` includes a bias (§3.1). Each of the `L`
//! rows of `A` is a single-bit hash function, trained as a linear SVM in the
//! MAC W step. §8.4 also evaluates a nonlinear hash: a fixed Gaussian RBF
//! expansion followed by a linear hash on the kernel values.

use crate::binary_code::BinaryCodes;
use parmac_linalg::vector::dot;
use parmac_linalg::Mat;
use parmac_optim::{LinearSvm, RbfFeatureMap, SgdConfig, Submodel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A hash function mapping real feature vectors to `L`-bit binary codes.
pub trait HashFunction {
    /// Number of output bits `L`.
    fn n_bits(&self) -> usize;

    /// Input dimensionality `D`.
    fn input_dim(&self) -> usize;

    /// Encodes one point into its `L` bits.
    fn encode_one(&self, x: &[f64]) -> Vec<bool>;

    /// Encodes every row of `x`.
    fn encode(&self, x: &Mat) -> BinaryCodes {
        let mut codes = BinaryCodes::zeros(x.rows(), self.n_bits().max(1));
        for i in 0..x.rows() {
            for (b, bit) in self.encode_one(x.row(i)).into_iter().enumerate() {
                codes.set_bit(i, b, bit);
            }
        }
        codes
    }
}

/// The linear hash function `h(x) = step(Ax + b)`.
///
/// Stored as `L` weight vectors of length `D` plus `L` biases, i.e. exactly
/// the parameters of the `L` single-bit linear SVMs of the MAC W step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearHash {
    /// `L × D` weight matrix.
    weights: Mat,
    /// Per-bit biases, length `L`.
    biases: Vec<f64>,
}

impl LinearHash {
    /// Creates a hash with explicit weights (`L × D`) and biases (length `L`).
    ///
    /// # Panics
    ///
    /// Panics if `biases.len() != weights.rows()`.
    pub fn new(weights: Mat, biases: Vec<f64>) -> Self {
        assert_eq!(weights.rows(), biases.len(), "bias count must equal L");
        LinearHash { weights, biases }
    }

    /// Creates a random hash (weights ~ N(0,1)), used as a crude starting
    /// point or for tests.
    pub fn random<R: Rng + ?Sized>(n_bits: usize, dim: usize, rng: &mut R) -> Self {
        LinearHash {
            weights: Mat::random_normal(n_bits, dim, rng),
            biases: vec![0.0; n_bits],
        }
    }

    /// Builds a hash from `L` trained linear SVMs (one per bit).
    ///
    /// # Panics
    ///
    /// Panics if `svms` is empty or the SVMs disagree on dimensionality.
    pub fn from_svms(svms: &[LinearSvm]) -> Self {
        assert!(!svms.is_empty(), "need at least one SVM");
        let dim = svms[0].dim();
        let mut weights = Mat::zeros(svms.len(), dim);
        let mut biases = Vec::with_capacity(svms.len());
        for (l, svm) in svms.iter().enumerate() {
            assert_eq!(svm.dim(), dim, "SVM {l} has inconsistent dimensionality");
            weights.set_row(l, svm.weight_vector());
            biases.push(svm.bias());
        }
        LinearHash { weights, biases }
    }

    /// Splits the hash back into `L` linear SVMs (used to seed the W step from
    /// the current model).
    pub fn to_svms(&self, config: SgdConfig) -> Vec<LinearSvm> {
        (0..self.n_bits())
            .map(|l| {
                let mut svm = LinearSvm::new(self.input_dim(), config);
                let mut w = self.weights.row(l).to_vec();
                w.push(self.biases[l]);
                svm.set_weights(&w);
                svm
            })
            .collect()
    }

    /// The `L × D` weight matrix.
    pub fn weights(&self) -> &Mat {
        &self.weights
    }

    /// The per-bit biases.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Raw (pre-threshold) responses `Ax + b` for one point.
    pub fn decision_values(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n_bits())
            .map(|l| dot(self.weights.row(l), x) + self.biases[l])
            .collect()
    }
}

impl HashFunction for LinearHash {
    fn n_bits(&self) -> usize {
        self.weights.rows()
    }

    fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    fn encode_one(&self, x: &[f64]) -> Vec<bool> {
        self.decision_values(x)
            .into_iter()
            .map(|d| d >= 0.0)
            .collect()
    }
}

/// The kernel (RBF) hash of §8.4: a fixed RBF feature map followed by a linear
/// hash on the kernel values. Only the linear part is trainable, so MAC/ParMAC
/// treat it exactly like a linear hash on `m`-dimensional inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbfHash {
    feature_map: RbfFeatureMap,
    linear: LinearHash,
}

impl RbfHash {
    /// Combines a fixed feature map with a linear hash on kernel values.
    ///
    /// # Panics
    ///
    /// Panics if the linear hash does not accept `feature_map.n_centres()`
    /// inputs.
    pub fn new(feature_map: RbfFeatureMap, linear: LinearHash) -> Self {
        assert_eq!(
            feature_map.n_centres(),
            linear.input_dim(),
            "linear hash must consume one input per RBF centre"
        );
        RbfHash {
            feature_map,
            linear,
        }
    }

    /// The fixed RBF expansion.
    pub fn feature_map(&self) -> &RbfFeatureMap {
        &self.feature_map
    }

    /// The trainable linear hash on kernel values.
    pub fn linear(&self) -> &LinearHash {
        &self.linear
    }

    /// Replaces the trainable linear part (e.g. after a W step).
    pub fn set_linear(&mut self, linear: LinearHash) {
        assert_eq!(self.feature_map.n_centres(), linear.input_dim());
        self.linear = linear;
    }

    /// Expands raw inputs to kernel values (the representation MAC trains on).
    pub fn expand(&self, x: &Mat) -> Mat {
        self.feature_map.transform(x)
    }
}

impl HashFunction for RbfHash {
    fn n_bits(&self) -> usize {
        self.linear.n_bits()
    }

    fn input_dim(&self) -> usize {
        // The *raw* input dimensionality is whatever the centres have.
        self.feature_map.n_centres()
    }

    fn encode_one(&self, x: &[f64]) -> Vec<bool> {
        let k = self.feature_map.transform_one(x);
        self.linear.encode_one(&k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linear_hash_thresholds_at_zero() {
        let h = LinearHash::new(
            Mat::from_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]),
            vec![0.0, 0.5],
        );
        let bits = h.encode_one(&[2.0, 1.0]);
        // bit0: 2.0 >= 0 -> true; bit1: -1.0 + 0.5 = -0.5 < 0 -> false
        assert_eq!(bits, vec![true, false]);
    }

    #[test]
    fn encode_matrix_shape() {
        let mut rng = SmallRng::seed_from_u64(0);
        let h = LinearHash::random(8, 5, &mut rng);
        let x = Mat::random_normal(10, 5, &mut rng);
        let codes = h.encode(&x);
        assert_eq!(codes.len(), 10);
        assert_eq!(codes.n_bits(), 8);
    }

    #[test]
    fn svm_round_trip_preserves_encoding() {
        let mut rng = SmallRng::seed_from_u64(1);
        let h = LinearHash::random(4, 6, &mut rng);
        let svms = h.to_svms(SgdConfig::new());
        let h2 = LinearHash::from_svms(&svms);
        let x = Mat::random_normal(20, 6, &mut rng);
        assert_eq!(h.encode(&x).to_matrix(), h2.encode(&x).to_matrix());
    }

    #[test]
    fn decision_values_match_manual_dot() {
        let h = LinearHash::new(Mat::from_rows(&[vec![2.0, -1.0]]), vec![0.25]);
        let d = h.decision_values(&[1.0, 3.0]);
        assert!((d[0] - (2.0 - 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn rbf_hash_encodes_through_kernel_space() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data = Mat::random_normal(30, 3, &mut rng);
        let map = RbfFeatureMap::from_data(&data, 5, 1.0, &mut rng);
        let linear = LinearHash::random(4, 5, &mut rng);
        let rbf = RbfHash::new(map, linear.clone());
        // Encoding through RbfHash equals expanding then linear-encoding.
        let expanded = rbf.expand(&data);
        let direct = rbf.encode(&data).to_matrix();
        let two_step = linear.encode(&expanded).to_matrix();
        assert_eq!(direct, two_step);
    }

    #[test]
    #[should_panic(expected = "one input per RBF centre")]
    fn rbf_hash_rejects_dimension_mismatch() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data = Mat::random_normal(10, 3, &mut rng);
        let map = RbfFeatureMap::from_data(&data, 5, 1.0, &mut rng);
        let linear = LinearHash::random(4, 3, &mut rng);
        let _ = RbfHash::new(map, linear);
    }

    #[test]
    #[should_panic(expected = "bias count must equal L")]
    fn linear_hash_rejects_bias_mismatch() {
        let _ = LinearHash::new(Mat::zeros(3, 2), vec![0.0; 2]);
    }
}
