//! Binary codes, hash functions and baselines.
//!
//! The binary autoencoder of the paper maps a real vector `x ∈ R^D` to an
//! `L`-bit code `z = h(x) ∈ {0,1}^L` with a hash function `h(x) = s(Ax)` and
//! reconstructs it with a linear decoder `f(z)`. This crate contains the
//! model-side building blocks:
//!
//! * [`BinaryCodes`] — bit-packed storage of `N × L` binary codes and Hamming
//!   distances (the data structure that makes retrieval fast and small, §3.1).
//! * [`LinearHash`] — `h(x) = step(Ax + b)`, the linear hash function used in
//!   all the paper's experiments.
//! * [`RbfHash`] — the kernel-SVM hash of §8.4: a fixed RBF feature expansion
//!   followed by a linear hash in kernel space.
//! * [`LinearDecoder`] — the linear decoder `f(z) = Wz + c`.
//! * [`TpcaHash`] — truncated PCA hashing, the initialisation and the
//!   retrieval baseline.
//! * [`Itq`] — Iterative Quantization (Gong et al., 2013), the established
//!   baseline the paper says BAs improve over.

#![warn(missing_docs)]

pub mod binary_code;
pub mod decoder;
pub mod encoder;
pub mod itq;
pub mod popcount;
pub mod tpca;

pub use binary_code::BinaryCodes;
pub use decoder::LinearDecoder;
pub use encoder::{HashFunction, LinearHash, RbfHash};
pub use itq::Itq;
pub use tpca::TpcaHash;
