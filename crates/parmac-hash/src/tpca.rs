//! Truncated PCA hashing (tPCA).
//!
//! The paper initialises the binary codes "from truncated PCA ran on a subset
//! of the training set" (§8.1) and reports tPCA as the retrieval baseline for
//! SIFT-1B (fig. 12). tPCA projects a point onto the leading `L` principal
//! directions and thresholds each projection at zero (the projections of
//! centred data have zero mean, so this is the natural binarisation).

use crate::binary_code::BinaryCodes;
use crate::encoder::{HashFunction, LinearHash};
use parmac_linalg::{pca, LinalgError, Mat};

/// A truncated-PCA hash function: project on the top `L` principal directions
/// of the training data and take the sign.
#[derive(Debug, Clone)]
pub struct TpcaHash {
    hash: LinearHash,
    explained_variance: Vec<f64>,
}

impl TpcaHash {
    /// Fits tPCA with `n_bits` bits on the rows of `x`.
    ///
    /// # Errors
    ///
    /// Propagates PCA errors (empty input, more bits than dimensions, ...).
    pub fn fit(x: &Mat, n_bits: usize) -> Result<Self, LinalgError> {
        let model = pca(x, n_bits)?;
        // Row l of the hash's weight matrix is the l-th principal direction;
        // the bias is −wᵀmean so that thresholding happens around the data mean.
        let components = model.components(); // D × L
        let mut weights = Mat::zeros(n_bits, x.cols());
        let mut biases = vec![0.0; n_bits];
        for (l, bias) in biases.iter_mut().enumerate() {
            let direction = components.col(l);
            weights.set_row(l, &direction);
            *bias = -direction
                .iter()
                .zip(model.mean())
                .map(|(w, m)| w * m)
                .sum::<f64>();
        }
        Ok(TpcaHash {
            hash: LinearHash::new(weights, biases),
            explained_variance: model.explained_variance().to_vec(),
        })
    }

    /// The equivalent linear hash function (useful to initialise a BA encoder).
    pub fn as_linear_hash(&self) -> &LinearHash {
        &self.hash
    }

    /// Consumes the model and returns the underlying linear hash.
    pub fn into_linear_hash(self) -> LinearHash {
        self.hash
    }

    /// Variance explained by each retained direction.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }
}

impl HashFunction for TpcaHash {
    fn n_bits(&self) -> usize {
        self.hash.n_bits()
    }

    fn input_dim(&self) -> usize {
        self.hash.input_dim()
    }

    fn encode_one(&self, x: &[f64]) -> Vec<bool> {
        self.hash.encode_one(x)
    }
}

/// Convenience: fit tPCA on `x` and immediately encode `x`, returning the
/// binary codes used to initialise MAC (§8.1).
///
/// # Errors
///
/// Propagates PCA errors.
pub fn tpca_codes(x: &Mat, n_bits: usize) -> Result<BinaryCodes, LinalgError> {
    let model = TpcaHash::fit(x, n_bits)?;
    Ok(model.encode(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clustered_data(seed: u64) -> Mat {
        // Two clusters separated along the first axis.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut x = Mat::random_normal(200, 6, &mut rng);
        for i in 0..200 {
            x[(i, 0)] += if i % 2 == 0 { 8.0 } else { -8.0 };
        }
        x
    }

    #[test]
    fn first_bit_separates_the_two_clusters() {
        let x = clustered_data(0);
        let model = TpcaHash::fit(&x, 2).unwrap();
        let codes = model.encode(&x);
        // Points in the same cluster must share their first bit; the two
        // clusters must disagree on it.
        let b_even = codes.bit(0, 0);
        let b_odd = codes.bit(1, 0);
        assert_ne!(b_even, b_odd);
        for i in (0..200).step_by(2) {
            assert_eq!(codes.bit(i, 0), b_even, "point {i}");
        }
        for i in (1..200).step_by(2) {
            assert_eq!(codes.bit(i, 0), b_odd, "point {i}");
        }
    }

    #[test]
    fn codes_are_roughly_balanced_on_centred_data() {
        let x = clustered_data(1);
        let codes = tpca_codes(&x, 4).unwrap();
        for bit in 0..4 {
            let ones: usize = (0..codes.len()).filter(|&i| codes.bit(i, bit)).count();
            let frac = ones as f64 / codes.len() as f64;
            assert!((0.2..=0.8).contains(&frac), "bit {bit} fraction {frac}");
        }
    }

    #[test]
    fn explained_variance_is_descending() {
        let x = clustered_data(2);
        let model = TpcaHash::fit(&x, 3).unwrap();
        let ev = model.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
    }

    #[test]
    fn rejects_more_bits_than_dimensions() {
        let x = Mat::zeros(10, 3);
        assert!(TpcaHash::fit(&x, 4).is_err());
    }

    #[test]
    fn into_linear_hash_preserves_encoding() {
        let x = clustered_data(3);
        let model = TpcaHash::fit(&x, 3).unwrap();
        let codes_a = model.encode(&x).to_matrix();
        let lin = model.clone().into_linear_hash();
        let codes_b = lin.encode(&x).to_matrix();
        assert_eq!(codes_a, codes_b);
    }
}
