//! Property-based tests for the linear-algebra substrate.

use parmac_linalg::{solve_ridge, symmetric_eigen, Mat};
use proptest::prelude::*;

/// Strategy producing a small matrix with bounded entries.
fn small_matrix(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f64..10.0, r * c).prop_map(move |data| Mat::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in small_matrix(6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop(m in small_matrix(6)) {
        let id = Mat::identity(m.cols());
        let prod = m.matmul(&id).unwrap();
        for (a, b) in prod.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(5),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let b = Mat::random_normal(a.cols(), 3, &mut rng);
        let c = Mat::random_normal(a.cols(), 3, &mut rng);
        let left = a.matmul(&(&b + &c)).unwrap();
        let right = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd(m in small_matrix(6)) {
        let g = m.gram();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
        // Diagonal of a Gram matrix is non-negative.
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)] >= -1e-12);
        }
    }

    #[test]
    fn ridge_solution_satisfies_normal_equations(
        rows in 4usize..20,
        cols in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Mat::random_normal(rows, cols, &mut rng);
        let b = Mat::random_normal(rows, 2, &mut rng);
        let lambda = 0.1;
        let w = solve_ridge(&a, &b, lambda).unwrap();
        // (AᵀA + λI) W should equal AᵀB.
        let mut gram = a.gram();
        for i in 0..gram.rows() { gram[(i, i)] += lambda; }
        let lhs = gram.matmul(&w).unwrap();
        let rhs = a.transpose().matmul(&b).unwrap();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-7);
    }

    #[test]
    fn eigen_reconstruction_of_covariance_like_matrices(
        n in 2usize..8,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Mat::random_normal(n + 2, n, &mut rng);
        let g = a.gram();
        let eig = symmetric_eigen(&g).unwrap();
        // Eigenvalues of a Gram matrix are non-negative.
        for &l in &eig.eigenvalues {
            prop_assert!(l >= -1e-8);
        }
        // V diag(λ) Vᵀ reconstructs G.
        let mut lambda = Mat::zeros(n, n);
        for i in 0..n { lambda[(i, i)] = eig.eigenvalues[i]; }
        let v = &eig.eigenvectors;
        let recon = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        prop_assert!((&recon - &g).max_abs() < 1e-7 * (1.0 + g.max_abs()));
    }
}
