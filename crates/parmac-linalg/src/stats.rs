//! Column statistics and centering helpers.

use crate::mat::Mat;

/// Returns the per-column mean of a data matrix (one row per point).
///
/// Returns an all-zero vector if the matrix has no rows.
pub fn column_means(x: &Mat) -> Vec<f64> {
    let mut means = vec![0.0; x.cols()];
    if x.rows() == 0 {
        return means;
    }
    for row in x.iter_rows() {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    let n = x.rows() as f64;
    for m in &mut means {
        *m /= n;
    }
    means
}

/// Returns the per-column (population) variance of a data matrix.
pub fn column_variances(x: &Mat) -> Vec<f64> {
    let means = column_means(x);
    let mut vars = vec![0.0; x.cols()];
    if x.rows() == 0 {
        return vars;
    }
    for row in x.iter_rows() {
        for ((v, m), xi) in vars.iter_mut().zip(&means).zip(row) {
            let d = xi - m;
            *v += d * d;
        }
    }
    let n = x.rows() as f64;
    for v in &mut vars {
        *v /= n;
    }
    vars
}

/// Returns a copy of `x` with the per-column means subtracted, together with
/// the means that were removed.
pub fn center(x: &Mat) -> (Mat, Vec<f64>) {
    let means = column_means(x);
    let mut out = x.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for (v, m) in row.iter_mut().zip(&means) {
            *v -= m;
        }
    }
    (out, means)
}

/// Computes the covariance matrix `(1/N) X_cᵀ X_c` of a data matrix with one
/// row per point, where `X_c` is the column-centered data.
///
/// Returns a `cols × cols` zero matrix when there are no rows.
pub fn covariance(x: &Mat) -> Mat {
    if x.rows() == 0 {
        return Mat::zeros(x.cols(), x.cols());
    }
    let (centered, _) = center(x);
    centered.gram().scale(1.0 / x.rows() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_of_simple_matrix() {
        let x = Mat::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]);
        assert_eq!(column_means(&x), vec![2.0, 15.0]);
    }

    #[test]
    fn variances_of_simple_matrix() {
        let x = Mat::from_rows(&[vec![1.0], vec![3.0]]);
        assert_eq!(column_variances(&x), vec![1.0]);
    }

    #[test]
    fn centered_data_has_zero_mean() {
        let x = Mat::from_rows(&[vec![1.0, 2.0], vec![5.0, -2.0], vec![0.0, 3.0]]);
        let (c, means) = center(&x);
        let new_means = column_means(&c);
        assert!(new_means.iter().all(|m| m.abs() < 1e-12));
        assert_eq!(means.len(), 2);
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal_equals_variance() {
        let x = Mat::from_rows(&[
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![3.0, -1.0],
            vec![4.0, 0.5],
        ]);
        let c = covariance(&x);
        assert_eq!(c.shape(), (2, 2));
        assert!((c[(0, 1)] - c[(1, 0)]).abs() < 1e-12);
        let vars = column_variances(&x);
        assert!((c[(0, 0)] - vars[0]).abs() < 1e-12);
        assert!((c[(1, 1)] - vars[1]).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let x = Mat::zeros(0, 3);
        assert_eq!(column_means(&x), vec![0.0; 3]);
        assert_eq!(covariance(&x).shape(), (3, 3));
    }
}
