//! Principal component analysis.
//!
//! The paper initialises the binary codes of the autoencoder "by running PCA
//! and binarising its result" (§3.1, §8.1), on a subset of the data small
//! enough to fit in one machine. This module provides exactly that: fit PCA on
//! a data matrix (rows = points) and project new points onto the leading
//! components.

use crate::eig::symmetric_eigen;
use crate::error::LinalgError;
use crate::mat::Mat;
use crate::stats::{center, covariance};

/// A fitted PCA model: the data mean and the leading principal directions.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `D × L` matrix whose columns are the leading eigenvectors.
    components: Mat,
    /// Eigenvalues (variances) of the retained components, descending.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Per-feature mean removed before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The `D × L` matrix of principal directions (columns).
    pub fn components(&self) -> &Mat {
        &self.components
    }

    /// Variance captured by each retained component, in descending order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Projects a data matrix (rows = points, `D` columns) onto the retained
    /// components, producing an `N × L` matrix of scores.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.cols()` differs from the
    /// training dimensionality.
    pub fn transform(&self, x: &Mat) -> Result<Mat, LinalgError> {
        if x.cols() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "pca transform",
                lhs: x.shape(),
                rhs: (self.mean.len(), self.n_components()),
            });
        }
        let mut centered = x.clone();
        for i in 0..centered.rows() {
            let row = centered.row_mut(i);
            for (v, m) in row.iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        centered.matmul(&self.components)
    }
}

/// Fits PCA with `n_components` components to a data matrix (rows = points).
///
/// # Errors
///
/// * [`LinalgError::Empty`] if `x` has no rows or columns.
/// * [`LinalgError::ShapeMismatch`] if `n_components` exceeds the feature
///   dimensionality.
/// * Any eigensolver error.
pub fn pca(x: &Mat, n_components: usize) -> Result<Pca, LinalgError> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(LinalgError::Empty);
    }
    if n_components == 0 || n_components > x.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "pca",
            lhs: x.shape(),
            rhs: (n_components, n_components),
        });
    }
    let cov = covariance(x);
    let eig = symmetric_eigen(&cov)?;
    let (_, mean) = center(x);
    let mut components = Mat::zeros(x.cols(), n_components);
    for j in 0..n_components {
        let col = eig.eigenvectors.col(j);
        components.set_col(j, &col);
    }
    Ok(Pca {
        mean,
        components,
        explained_variance: eig.eigenvalues[..n_components].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Data stretched strongly along a known direction.
    fn anisotropic_data(n: usize, seed: u64) -> Mat {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Mat::random_normal(n, 3, &mut rng);
        let mut x = Mat::zeros(n, 3);
        for i in 0..n {
            // dominant direction ~ (1, 1, 0)/sqrt(2), scaled by 10
            let t = g[(i, 0)] * 10.0;
            x[(i, 0)] = t / 2f64.sqrt() + 0.1 * g[(i, 1)];
            x[(i, 1)] = t / 2f64.sqrt() + 0.1 * g[(i, 2)];
            x[(i, 2)] = 0.1 * g[(i, 1)] - 0.1 * g[(i, 2)];
        }
        x
    }

    #[test]
    fn first_component_aligns_with_dominant_direction() {
        let x = anisotropic_data(500, 0);
        let model = pca(&x, 1).unwrap();
        let c = model.components().col(0);
        let expected = [1.0 / 2f64.sqrt(), 1.0 / 2f64.sqrt(), 0.0];
        let dot: f64 = c.iter().zip(&expected).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.99, "alignment {dot}");
    }

    #[test]
    fn explained_variance_descending_and_positive_for_real_data() {
        let x = anisotropic_data(300, 1);
        let model = pca(&x, 3).unwrap();
        let ev = model.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
        assert!(ev[0] > 0.0);
    }

    #[test]
    fn transform_shapes_and_centering() {
        let x = anisotropic_data(100, 2);
        let model = pca(&x, 2).unwrap();
        let scores = model.transform(&x).unwrap();
        assert_eq!(scores.shape(), (100, 2));
        // Scores of centred data have (near) zero mean.
        let mean0: f64 = scores.col(0).iter().sum::<f64>() / 100.0;
        assert!(mean0.abs() < 1e-8);
    }

    #[test]
    fn transform_rejects_wrong_dimension() {
        let x = anisotropic_data(50, 3);
        let model = pca(&x, 2).unwrap();
        let bad = Mat::zeros(10, 5);
        assert!(model.transform(&bad).is_err());
    }

    #[test]
    fn rejects_invalid_component_counts() {
        let x = anisotropic_data(20, 4);
        assert!(pca(&x, 0).is_err());
        assert!(pca(&x, 4).is_err());
        assert!(pca(&Mat::zeros(0, 3), 1).is_err());
    }

    #[test]
    fn projection_variance_matches_eigenvalue() {
        let x = anisotropic_data(400, 5);
        let model = pca(&x, 1).unwrap();
        let scores = model.transform(&x).unwrap();
        let col = scores.col(0);
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
        let ev = model.explained_variance()[0];
        assert!((var - ev).abs() / ev < 0.05, "var {var} vs ev {ev}");
    }
}
