//! Dense, row-major `f64` matrix.

use crate::error::LinalgError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
///
/// `Mat` is deliberately small and predictable: it stores its elements in a
/// single `Vec<f64>` in row-major order and implements just the operations the
/// ParMAC algorithms need (products, transposes, slicing rows/columns, Frobenius
/// norms). Data matrices throughout the workspace follow the paper's
/// convention of one **row per data point** and one **column per feature**.
///
/// # Examples
///
/// ```
/// use parmac_linalg::Mat;
///
/// let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose entries are drawn i.i.d. from `U(lo, hi)`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Mat { rows, cols, data }
    }

    /// Creates a matrix whose entries are drawn i.i.d. from a standard normal
    /// distribution (via the Box–Muller transform, so only `rand`'s uniform
    /// sampler is needed).
    pub fn random_normal<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with `values`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols` or `values.len() != rows`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Overwrites row `i` with `values`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `values.len() != cols`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row: length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Returns a new matrix containing only the rows whose indices appear in
    /// `indices`, in that order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Mat {
        let mut out = Mat::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns an iterator over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &r) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Computes `selfᵀ * self` (the Gram matrix), a common building block for
    /// normal-equation least squares.
    pub fn gram(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    out[(a, b)] += ra * row[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales all entries by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        self.map(|x| x * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of squared entries.
    pub fn sum_squares(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>()
    }

    /// Maximum absolute entry, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Appends a column of ones to the right of the matrix (bias/intercept
    /// augmentation, the paper's `x0 = 1` convention).
    pub fn with_bias_column(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out[(i, self.cols)] = 1.0;
        }
        out
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Mat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Mat> for &Mat {
    type Output = Mat;

    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Mat> for &Mat {
    type Output = Mat;

    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Mat> for Mat {
    fn sub_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;

    fn mul(self, rhs: f64) -> Mat {
        self.scale(rhs)
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for i in 0..show_rows {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:9.4}")).collect();
            let ellipsis = if self.cols > 8 { " ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.0, 3.0, 1.0]]);
        let v = vec![2.0, 1.0, -1.0];
        let out = a.matvec(&v).unwrap();
        assert_eq!(out, vec![-1.0, 2.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SmallRng::seed_from_u64(0);
        let a = Mat::random_normal(4, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Mat::random_normal(5, 3, &mut rng);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bias_column_appends_ones() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = a.with_bias_column();
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b.col(2), vec![1.0, 1.0]);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let a = Mat::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s, Mat::from_rows(&[vec![3.0], vec![1.0]]));
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]);
        let b = Mat::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.vstack(&b).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]);
        let b = Mat::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(&a + &b, Mat::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(&b - &a, Mat::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(&a * 2.0, Mat::from_rows(&[vec![2.0, 4.0]]));
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, Mat::from_rows(&[vec![4.0, 7.0]]));
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn frobenius_norm_and_max_abs() {
        let a = Mat::from_rows(&[vec![3.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum_squares(), 25.0);
    }

    #[test]
    fn random_normal_has_reasonable_moments() {
        let mut rng = SmallRng::seed_from_u64(42);
        let a = Mat::random_normal(200, 50, &mut rng);
        let n = (a.rows() * a.cols()) as f64;
        let mean: f64 = a.as_slice().iter().sum::<f64>() / n;
        let var: f64 = a
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn display_does_not_panic_on_large_matrix() {
        let a = Mat::zeros(100, 100);
        let s = format!("{a}");
        assert!(s.contains("Mat 100x100"));
    }
}
