//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Error returned by fallible linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The operands have incompatible shapes, e.g. multiplying a `3×4` matrix
    /// by a `3×4` matrix.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is not positive definite (Cholesky pivot ≤ 0).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix is singular or numerically rank-deficient.
    Singular,
    /// The iterative algorithm did not converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where a non-empty matrix or vector was required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::Empty => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (3, 4),
            rhs: (3, 4),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("3x4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn not_positive_definite_mentions_pivot() {
        let err = LinalgError::NotPositiveDefinite { pivot: 2 };
        assert!(err.to_string().contains('2'));
    }
}
