//! Dense linear-algebra substrate used throughout the ParMAC reproduction.
//!
//! The paper's reference implementation relies on GSL/BLAS for matrix
//! operations, least-squares fits and PCA initialisation. This crate provides
//! the (small) subset of that functionality that MAC/ParMAC for binary
//! autoencoders actually needs, implemented from scratch in safe Rust:
//!
//! * [`Mat`] — a dense, row-major `f64` matrix with the usual arithmetic.
//! * [`cholesky`] — SPD factorisation and solves, used for exact least-squares
//!   decoder fits and the ridge-regularised normal equations.
//! * [`eig`] — a Jacobi eigensolver for symmetric matrices.
//! * [`pca`] — principal component analysis built on the eigensolver, used to
//!   initialise the binary codes (truncated PCA, §8.1 of the paper).
//! * [`stats`] — means, centering, column norms.
//!
//! Everything is deterministic and has no external native dependencies, so the
//! whole reproduction runs on any machine with `cargo test`.

#![warn(missing_docs)]

pub mod cholesky;
pub mod eig;
pub mod error;
pub mod mat;
pub mod pca;
pub mod stats;
pub mod vector;

pub use cholesky::{solve_ridge, Cholesky};
pub use eig::{symmetric_eigen, SymmetricEigen};
pub use error::LinalgError;
pub use mat::Mat;
pub use pca::{pca, Pca};
