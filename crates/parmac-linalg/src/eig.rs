//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (used to initialise the binary codes, §8.1) needs the leading
//! eigenvectors of a covariance matrix. The cyclic Jacobi rotation method is
//! simple, numerically robust for the small feature dimensions used here
//! (D ≤ a few hundred), and requires no external libraries.

use crate::error::LinalgError;
use crate::mat::Mat;

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order and `eigenvectors` stores the
/// corresponding eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose `j`-th column is the eigenvector for `eigenvalues[j]`.
    pub eigenvectors: Mat,
}

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// Only the lower triangle of `a` is trusted; the matrix is symmetrised
/// internally to guard against tiny asymmetries from floating-point
/// accumulation.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a` is not square.
/// * [`LinalgError::Empty`] if `a` has no elements.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass has not dropped
///   below tolerance after 100 sweeps (does not happen for well-scaled
///   covariance matrices).
pub fn symmetric_eigen(a: &Mat) -> Result<SymmetricEigen, LinalgError> {
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if a.rows() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "symmetric_eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }

    // Work on a symmetrised copy.
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }
    let mut v = Mat::identity(n);

    let max_sweeps = 100;
    let tol = 1e-12 * m.frobenius_norm().max(1.0);
    for sweep in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            return Ok(sort_descending(m, v));
        }
        let _ = sweep;
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: max_sweeps,
    })
}

fn sort_descending(m: Mat, v: Mat) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m[(b, b)].partial_cmp(&m[(a, a)]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut eigenvectors = Mat::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let col = v.col(old_j);
        eigenvectors.set_col(new_j, &col);
    }
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_symmetric(n: usize, seed: u64) -> Mat {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Mat::random_normal(n, n, &mut rng);
        let at = a.transpose();
        (&a + &at).scale(0.5)
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_diagonal() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let eig = symmetric_eigen(&a).unwrap();
        assert_eq!(eig.eigenvalues, vec![3.0, 2.0, -1.0]);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = random_symmetric(8, 0);
        let eig = symmetric_eigen(&a).unwrap();
        let v = &eig.eigenvectors;
        // A ≈ V diag(λ) Vᵀ
        let mut lambda = Mat::zeros(8, 8);
        for i in 0..8 {
            lambda[(i, i)] = eig.eigenvalues[i];
        }
        let recon = v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap();
        assert!((&recon - &a).max_abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(10, 1);
        let eig = symmetric_eigen(&a).unwrap();
        let v = &eig.eigenvectors;
        let vtv = v.transpose().matmul(v).unwrap();
        assert!((&vtv - &Mat::identity(10)).max_abs() < 1e-8);
    }

    #[test]
    fn eigen_equation_holds_per_pair() {
        let a = random_symmetric(6, 2);
        let eig = symmetric_eigen(&a).unwrap();
        for j in 0..6 {
            let v = eig.eigenvectors.col(j);
            let av = a.matvec(&v).unwrap();
            let lambda_v: Vec<f64> = v.iter().map(|x| x * eig.eigenvalues[j]).collect();
            let err: f64 = av
                .iter()
                .zip(&lambda_v)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            assert!(err < 1e-8, "pair {j}: residual {err}");
        }
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_symmetric(12, 3);
        let eig = symmetric_eigen(&a).unwrap();
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(7, 4);
        let eig = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..7).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn rejects_non_square() {
        assert!(symmetric_eigen(&Mat::zeros(2, 3)).is_err());
        assert!(symmetric_eigen(&Mat::zeros(0, 0)).is_err());
    }

    #[test]
    fn distinct_eigenvectors_are_orthogonal() {
        let a = random_symmetric(5, 5);
        let eig = symmetric_eigen(&a).unwrap();
        let v0 = eig.eigenvectors.col(0);
        let v1 = eig.eigenvectors.col(1);
        assert!(dot(&v0, &v1).abs() < 1e-8);
    }
}
