//! Cholesky factorisation and (ridge-regularised) least squares.
//!
//! The W step of MAC for binary autoencoders fits `D` linear decoders by
//! least squares (§3.1 of the paper). We solve the normal equations
//! `(ZᵀZ + λI) w = Zᵀx` with a Cholesky factorisation of the (small) `L×L`
//! Gram matrix, which is exactly what the reference GSL implementation does.

use crate::error::LinalgError;
use crate::mat::Mat;

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// # Examples
///
/// ```
/// use parmac_linalg::{Cholesky, Mat};
///
/// # fn main() -> Result<(), parmac_linalg::LinalgError> {
/// let a = Mat::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&[2.0, 1.0])?;
/// // Verify A x = b.
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely.
    lower: Mat,
}

impl Cholesky {
    /// Factorises the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has no elements.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    ///   positive.
    pub fn new(a: &Mat) -> Result<Self, LinalgError> {
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if a.rows() != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { lower: l })
    }

    /// Returns the lower-triangular factor `L`.
    pub fn lower(&self) -> &Mat {
        &self.lower
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        let mut scratch = vec![0.0; n];
        let mut x = vec![0.0; n];
        self.solve_into(b, &mut scratch, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into caller-provided buffers, performing no heap
    /// allocation: `scratch` holds the intermediate forward-substitution
    /// result and `out` receives the solution. This is the hot-loop entry
    /// point for the per-point Z-step relaxed initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if any buffer length differs
    /// from `self.dim()`.
    pub fn solve_into(
        &self,
        b: &[f64],
        scratch: &mut [f64],
        out: &mut [f64],
    ) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n || scratch.len() != n || out.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward solve L y = b.
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in scratch.iter().enumerate().take(i) {
                sum -= self.lower[(i, k)] * yk;
            }
            scratch[i] = sum / self.lower[(i, i)];
        }
        // Back solve Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = scratch[i];
            for (k, &xk) in out.iter().enumerate().skip(i + 1) {
                sum -= self.lower[(k, i)] * xk;
            }
            out[i] = sum / self.lower[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` for all right-hand sides at once with blocked
    /// forward/back substitution over whole rows, so the multi-RHS solve costs
    /// no per-column allocation and runs over contiguous row-major memory.
    /// Per column the arithmetic is identical (same operations, same order) to
    /// [`Cholesky::solve`], so results are bitwise equal to the per-column
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let k = b.cols();
        let mut out = b.clone();
        let data = out.as_mut_slice();
        // Forward solve L Y = B, one row of Y at a time across all columns.
        for i in 0..n {
            let (above, rest) = data.split_at_mut(i * k);
            let row_i = &mut rest[..k];
            for j in 0..i {
                let lij = self.lower[(i, j)];
                let row_j = &above[j * k..(j + 1) * k];
                for (yi, &yj) in row_i.iter_mut().zip(row_j) {
                    *yi -= lij * yj;
                }
            }
            let lii = self.lower[(i, i)];
            for yi in row_i.iter_mut() {
                *yi /= lii;
            }
        }
        // Back solve Lᵀ X = Y.
        for i in (0..n).rev() {
            let (head, below) = data.split_at_mut((i + 1) * k);
            let row_i = &mut head[i * k..];
            for j in i + 1..n {
                let lji = self.lower[(j, i)];
                let row_j = &below[(j - i - 1) * k..(j - i) * k];
                for (xi, &xj) in row_i.iter_mut().zip(row_j) {
                    *xi -= lji * xj;
                }
            }
            let lii = self.lower[(i, i)];
            for xi in row_i.iter_mut() {
                *xi /= lii;
            }
        }
        Ok(out)
    }
}

/// Solves the ridge-regularised least-squares problem
/// `min_W ‖A W − B‖²_F + λ‖W‖²_F` via the normal equations
/// `(AᵀA + λI) W = AᵀB`, returning `W` of shape `A.cols() × B.cols()`.
///
/// This is the exact decoder fit used by the serial MAC baseline. With
/// `lambda = 0` the Gram matrix can be singular for rank-deficient `A`; a tiny
/// positive `lambda` (e.g. `1e-8`) is recommended and is what the trainers in
/// `parmac-core` pass.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `a.rows() != b.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] if the regularised Gram matrix is not
///   positive definite (happens only for `lambda <= 0` on degenerate inputs).
pub fn solve_ridge(a: &Mat, b: &Mat, lambda: f64) -> Result<Mat, LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_ridge",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let chol = Cholesky::new(&gram)?;
    let atb = a.transpose().matmul(b)?;
    chol.solve_mat(&atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn spd(n: usize, seed: u64) -> Mat {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Mat::random_normal(n + 3, n, &mut rng);
        let mut g = a.gram();
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(5, 0);
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let reconstructed = l.matmul(&l.transpose()).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!((reconstructed[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(6, 1);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            Cholesky::new(&Mat::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Cholesky::new(&Mat::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let chol = Cholesky::new(&spd(3, 2)).unwrap();
        assert!(chol.solve(&[1.0, 2.0]).is_err());
        let mut scratch = vec![0.0; 3];
        let mut out = vec![0.0; 3];
        assert!(chol
            .solve_into(&[1.0, 2.0], &mut scratch, &mut out)
            .is_err());
        assert!(chol
            .solve_into(&[1.0, 2.0, 3.0], &mut scratch[..2], &mut out)
            .is_err());
    }

    #[test]
    fn solve_into_is_bitwise_identical_to_solve() {
        let mut rng = SmallRng::seed_from_u64(7);
        let chol = Cholesky::new(&spd(6, 5)).unwrap();
        let b = Mat::random_normal(1, 6, &mut rng).into_vec();
        let x = chol.solve(&b).unwrap();
        let mut scratch = vec![0.0; 6];
        let mut out = vec![0.0; 6];
        chol.solve_into(&b, &mut scratch, &mut out).unwrap();
        assert_eq!(x, out);
    }

    #[test]
    fn blocked_solve_mat_is_bitwise_identical_to_per_column_solve() {
        let mut rng = SmallRng::seed_from_u64(8);
        let chol = Cholesky::new(&spd(7, 6)).unwrap();
        let b = Mat::random_normal(7, 5, &mut rng);
        let x = chol.solve_mat(&b).unwrap();
        for j in 0..5 {
            let col = chol.solve(&b.col(j)).unwrap();
            assert_eq!(
                x.col(j),
                col,
                "column {j} of the blocked solve differs from the scalar solve"
            );
        }
    }

    #[test]
    fn solve_mat_rejects_row_mismatch() {
        let chol = Cholesky::new(&spd(3, 9)).unwrap();
        assert!(chol.solve_mat(&Mat::zeros(4, 2)).is_err());
    }

    #[test]
    fn ridge_least_squares_fits_exactly_solvable_system() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Mat::random_normal(50, 4, &mut rng);
        let w_true = Mat::random_normal(4, 2, &mut rng);
        let b = a.matmul(&w_true).unwrap();
        let w = solve_ridge(&a, &b, 1e-10).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!((w[(i, j)] - w_true[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn larger_ridge_shrinks_solution_norm() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = Mat::random_normal(30, 5, &mut rng);
        let b = Mat::random_normal(30, 1, &mut rng);
        let w_small = solve_ridge(&a, &b, 1e-6).unwrap();
        let w_big = solve_ridge(&a, &b, 100.0).unwrap();
        assert!(w_big.frobenius_norm() < w_small.frobenius_norm());
    }

    #[test]
    fn ridge_rejects_row_mismatch() {
        let a = Mat::zeros(4, 2);
        let b = Mat::zeros(5, 1);
        assert!(solve_ridge(&a, &b, 1.0).is_err());
    }
}
