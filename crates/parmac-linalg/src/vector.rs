//! Small helpers for `&[f64]` vectors.
//!
//! These free functions avoid pulling in a heavier vector type for the many
//! places in the W/Z steps that operate on weight vectors and data rows.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise sum of two slices into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Returns the index of the largest element (ties broken towards the first),
/// or `None` for an empty slice.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn squared_distance_is_symmetric_and_zero_on_self() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 1.0, 2.0];
        assert_eq!(squared_distance(&a, &a), 0.0);
        assert_eq!(squared_distance(&a, &b), squared_distance(&b, &a));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, 2.0];
        let b = [0.5, -0.5];
        assert_eq!(sub(&add(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn argmax_handles_ties_and_empty() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
