//! Token-level rules, driven by the pass-2 workspace analysis.
//!
//! Every rule reports through [`Reporter::report`], which applies the test
//! exemption and inline `// lint: allow(...)` suppression — and records
//! which allows actually suppressed something, so the stale-suppression
//! check can flag the ones that no longer do.

use std::collections::HashSet;

use crate::graph::{blocking_op_at, WsAnalysis};
use crate::parse::FileModel;
use crate::{
    Finding, RULE_ACTOR_PANIC, RULE_BLOCKING_WHILE_LOCKED, RULE_RAW_SPAWN, RULE_UNBOUNDED_RECV,
    RULE_WALLCLOCK,
};

/// Per-file finding sink.
#[derive(Default)]
pub(crate) struct Reporter {
    pub findings: Vec<Finding>,
    /// Indices into `FileModel::allows` that suppressed at least one finding.
    pub used_allows: HashSet<usize>,
}

impl Reporter {
    /// Pushes a finding unless the line is test code or inline-allowed.
    pub fn report(
        &mut self,
        m: &FileModel,
        rel: &str,
        rule: &'static str,
        line: u32,
        message: String,
    ) {
        if m.in_test(line) {
            return;
        }
        if let Some(i) = allowed_inline(m, rule, line) {
            self.used_allows.insert(i);
            return;
        }
        self.findings.push(Finding {
            rule,
            path: rel.to_string(),
            line,
            message,
        });
    }
}

/// Returns the index of an inline allow covering `(rule, line)`: a trailing
/// `// lint: allow(...)` covers its own line, a standalone one the next code
/// line (attribute and blank lines skipped — so an allow above `#[inline]`
/// reaches the item it annotates).
fn allowed_inline(m: &FileModel, rule: &str, line: u32) -> Option<usize> {
    m.allows.iter().enumerate().find_map(|(i, (_, _, rules))| {
        (m.allow_targets[i] == line && rules.iter().any(|r| r == rule || r == "*")).then_some(i)
    })
}

pub(crate) struct FileCtx<'a> {
    pub rel: &'a str,
    pub krate: Option<&'a str>,
    pub fi: usize,
    pub m: &'a FileModel,
    pub ws: &'a WsAnalysis,
}

pub(crate) fn run_token_rules(ctx: &FileCtx<'_>, files: &[FileModel], r: &mut Reporter) {
    rule_actor_panic(ctx, files, r);
    rule_unbounded_recv(ctx, r);
    rule_raw_spawn(ctx, r);
    rule_wallclock(ctx, r);
    rule_blocking_while_locked(ctx, r);
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Why a line is in actor context: textual region, or inherited via the call
/// graph — the latter gets the provenance spelled out in the message.
fn inheritance_note(ctx: &FileCtx<'_>, files: &[FileModel], line: u32) -> String {
    let m = ctx.m;
    if m.actor.contains(line) || m.fence.contains(line) {
        return String::new();
    }
    let Some(f) = ctx.ws.inherited_fn_at(files, ctx.fi, line) else {
        return String::new();
    };
    let name = &m.fns[f].name;
    let via = ctx.ws.witness[ctx.fi]
        .get(&f)
        .map(|w| format!(" via `{w}`"))
        .unwrap_or_default();
    format!(
        " (`{name}` is reachable only from actor regions{via}; \
         `// lint: non-actor` opts it out if that is wrong)"
    )
}

fn rule_actor_panic(ctx: &FileCtx<'_>, files: &[FileModel], r: &mut Reporter) {
    let m = ctx.m;
    let region = &ctx.ws.effective_actor[ctx.fi];
    for idx in 0..m.tokens.len() {
        let line = m.tokens[idx].line;
        if !region.contains(line) {
            continue;
        }
        if m.is_method_call(idx, "unwrap") || m.is_method_call(idx, "expect") {
            let name = m.ident_at(idx).unwrap_or_default();
            let note = inheritance_note(ctx, files, line);
            r.report(
                m,
                ctx.rel,
                RULE_ACTOR_PANIC,
                line,
                format!(
                    "`.{name}()` inside an actor region: a panic here kills a detached \
                     serving thread silently — return a degraded result or bail instead{note}"
                ),
            );
        } else if PANIC_MACROS.iter().any(|mac| m.is_macro(idx, mac)) {
            let name = m.ident_at(idx).unwrap_or_default();
            let note = inheritance_note(ctx, files, line);
            r.report(
                m,
                ctx.rel,
                RULE_ACTOR_PANIC,
                line,
                format!("`{name}!` inside an actor region: actor threads must not panic{note}"),
            );
        }
    }
}

fn rule_unbounded_recv(ctx: &FileCtx<'_>, r: &mut Reporter) {
    let m = ctx.m;
    let crate_scoped = ctx.krate == Some("parmac-cluster");
    for idx in 0..m.tokens.len() {
        let line = m.tokens[idx].line;
        if !(crate_scoped || ctx.ws.effective_actor[ctx.fi].contains(line)) {
            continue;
        }
        if m.is_method_call(idx, "recv") && m.punct_at(idx + 2) == Some(')') {
            let where_ = if crate_scoped {
                "in parmac-cluster"
            } else {
                "in an actor region"
            };
            r.report(
                m,
                ctx.rel,
                RULE_UNBOUNDED_RECV,
                line,
                format!(
                    "bare `.recv()` {where_}: every blocking wait must be bounded \
                     (`recv_timeout` with a deadline, or the `waits::recv_bounded` heartbeat)"
                ),
            );
        }
    }
}

fn rule_raw_spawn(ctx: &FileCtx<'_>, r: &mut Reporter) {
    let m = ctx.m;
    for idx in 0..m.tokens.len() {
        if m.is_path_pair(idx, "thread", "spawn") {
            r.report(
                m,
                ctx.rel,
                RULE_RAW_SPAWN,
                m.tokens[idx].line,
                "raw `thread::spawn`: long-lived threads must use a sanctioned spawn site \
                 (`thread::Builder` with a name, or scoped `thread::scope`)"
                    .to_string(),
            );
        }
    }
}

fn rule_wallclock(ctx: &FileCtx<'_>, r: &mut Reporter) {
    if !matches!(ctx.krate, Some("parmac-core") | Some("parmac-retrieval")) {
        return;
    }
    let m = ctx.m;
    for idx in 0..m.tokens.len() {
        let line = m.tokens[idx].line;
        if m.is_path_pair(idx, "Instant", "now") {
            r.report(
                m,
                ctx.rel,
                RULE_WALLCLOCK,
                line,
                "`Instant::now` in a bitwise-deterministic training path: wall-clock reads \
                 must not influence training (annotate report-only timing explicitly)"
                    .to_string(),
            );
        } else if m.ident_at(idx) == Some("SystemTime") {
            r.report(
                m,
                ctx.rel,
                RULE_WALLCLOCK,
                line,
                "`SystemTime` in a bitwise-deterministic training path".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// blocking-while-locked
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct GuardBinding {
    name: String,
    depth: usize,
    line: u32,
}

/// Dataflow-ish lexical check: a mutex guard is live from a
/// `let g = ….lock();` binding until its block closes or `drop(g)`, and —
/// edition-2021 temporary extension — from a `.lock()` inside a `match` /
/// `if let` / `while let` / `for` scrutinee until that block closes. While
/// any guard is live, a direct blocking operation or a call to a
/// blocking-classified function fires. Code inside `spawn(...)` arguments
/// runs on another thread: outer guards are suspended there (and guards
/// taken inside the closure are tracked against its own body only).
fn rule_blocking_while_locked(ctx: &FileCtx<'_>, r: &mut Reporter) {
    let m = ctx.m;
    let mut depth = 0usize;
    let mut guards: Vec<GuardBinding> = Vec::new();
    // Saved guard stacks for enclosing code while inside `spawn(...)`.
    let mut suspended: Vec<(usize, Vec<GuardBinding>)> = Vec::new();
    let mut next_range = 0usize;
    // `m.calls` is in token order; `next_call` tracks the cursor.
    let mut next_call = 0usize;

    let mut idx = 0usize;
    while idx < m.tokens.len() {
        while suspended.last().is_some_and(|&(end, _)| idx > end) {
            guards = suspended.pop().expect("checked non-empty").1;
        }
        while next_range < m.spawn_ranges.len() && m.spawn_ranges[next_range].0 == idx {
            suspended.push((m.spawn_ranges[next_range].1, std::mem::take(&mut guards)));
            next_range += 1;
        }
        let line = m.tokens[idx].line;
        match m.ident_at(idx) {
            Some("drop") if m.punct_at(idx + 1) == Some('(') => {
                if let (Some(dropped), Some(')')) = (m.ident_at(idx + 2), m.punct_at(idx + 3)) {
                    let dropped = dropped.to_string();
                    guards.retain(|g| g.name != dropped);
                }
            }
            Some("let")
                if idx == 0 || !matches!(m.ident_at(idx - 1), Some("if") | Some("while")) =>
            {
                if let Some(g) = guard_binding(m, idx, depth) {
                    guards.push(g);
                }
            }
            Some("match") | Some("for") => {
                if let Some(g) = scrutinee_guard(m, idx, depth) {
                    guards.push(g);
                }
            }
            Some("if") | Some("while") if m.ident_at(idx + 1) == Some("let") => {
                if let Some(g) = scrutinee_guard(m, idx, depth) {
                    guards.push(g);
                }
            }
            _ => {}
        }
        match m.punct_at(idx) {
            Some('{') => depth += 1,
            Some('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            _ => {}
        }
        while next_call < m.calls.len() && m.calls[next_call].tok < idx {
            next_call += 1;
        }
        if !guards.is_empty() && !m.in_test(line) {
            if let Some(op) = blocking_op_at(m, idx) {
                let g = guards.last().expect("checked non-empty");
                r.report(
                    m,
                    ctx.rel,
                    RULE_BLOCKING_WHILE_LOCKED,
                    line,
                    format!(
                        "blocking `{op}` while the mutex guard `{}` (taken at line {}) is \
                         still held — release or `drop()` the guard first",
                        g.name, g.line
                    ),
                );
            } else if next_call < m.calls.len() && m.calls[next_call].tok == idx {
                let c = &m.calls[next_call];
                if ctx.ws.call_blocks(c) {
                    let g = guards.last().expect("checked non-empty");
                    r.report(
                        m,
                        ctx.rel,
                        RULE_BLOCKING_WHILE_LOCKED,
                        line,
                        format!(
                            "call to `{}`, which blocks (transitively), while the mutex \
                             guard `{}` (taken at line {}) is still held — move the blocking \
                             work outside the critical section",
                            c.callee, g.name, g.line
                        ),
                    );
                }
            }
        }
        idx += 1;
    }
}

/// Recognises `let [mut] <name> [: T] = <expr ending in .lock()>;` starting
/// at the `let` token. Returns the binding if the statement binds a guard.
fn guard_binding(m: &FileModel, let_idx: usize, depth: usize) -> Option<GuardBinding> {
    let mut j = let_idx + 1;
    if m.ident_at(j) == Some("mut") {
        j += 1;
    }
    let name = m.ident_at(j)?.to_string();
    // Find the `=` of the initialiser (skipping a `: Type` annotation, whose
    // generics may nest `< … >` but never contain a bare `=`).
    let mut eq = j + 1;
    loop {
        match m.punct_at(eq) {
            Some('=') => break,
            Some(';') | None => return None,
            _ => eq += 1,
        }
    }
    // A deref copy (`let x = *m.lock();`) releases the temporary guard at the
    // end of the statement — not a held guard.
    if m.punct_at(eq + 1) == Some('*') {
        return None;
    }
    // Scan to the terminating `;` at bracket level 0 relative to the
    // statement; the binding is a guard iff the initialiser *ends* with
    // `.lock()` (a further method chain consumes the temporary instead).
    let mut k = eq + 1;
    let mut nest = 0usize;
    while k < m.tokens.len() {
        match m.punct_at(k) {
            Some('(') | Some('[') | Some('{') => nest += 1,
            Some(')') | Some(']') | Some('}') => {
                // A closing brace below statement level ends the statement
                // (e.g. a block expression tail without `;`).
                if nest == 0 {
                    return None;
                }
                nest -= 1;
            }
            Some(';') if nest == 0 => {
                // Initialiser ends at k: check for `… . lock ( ) ;`.
                if k >= 4
                    && m.is_method_call(k - 3, "lock")
                    && m.punct_at(k - 1) == Some(')')
                    && m.punct_at(k - 2) == Some('(')
                {
                    return Some(GuardBinding {
                        name,
                        depth,
                        line: m.tokens[let_idx].line,
                    });
                }
                return None;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// A `.lock()` anywhere in the scrutinee of `match` / `if let` / `while let`
/// / `for` keeps its guard alive for the whole block (edition-2021 temporary
/// lifetime extension). Scans from the keyword to the block-opening `{` at
/// nesting level 0; bails at `;` (not a block construct after all).
fn scrutinee_guard(m: &FileModel, kw_idx: usize, depth: usize) -> Option<GuardBinding> {
    let mut j = kw_idx + 1;
    let mut nest = 0usize;
    let mut locked = false;
    while j < m.tokens.len() {
        match m.punct_at(j) {
            Some('(') | Some('[') => nest += 1,
            Some(')') | Some(']') => nest = nest.saturating_sub(1),
            Some('{') if nest == 0 => {
                return locked.then(|| GuardBinding {
                    name: format!("<{} scrutinee>", m.ident_at(kw_idx).unwrap_or("?")),
                    // The body `{` is about to raise depth to depth+1; the
                    // guard dies when that block closes.
                    depth: depth + 1,
                    line: m.tokens[kw_idx].line,
                });
            }
            Some(';') => return None,
            _ => {}
        }
        if m.is_method_call(j, "lock") {
            locked = true;
        }
        j += 1;
    }
    None
}
