//! Pass 1: a lightweight item parser over the token stream.
//!
//! One brace-matching walk turns a file into a [`FileModel`]: `fn` items with
//! body spans, `impl` blocks with their trait/self-type names, `enum`
//! declarations with per-variant payload identifiers, every call site
//! attributed to its enclosing function, `spawn(..)` argument ranges (code
//! that runs on *another* thread), attribute-line bookkeeping, and the
//! classic line-range regions (named actor fns, `#[cfg(test)]` items,
//! `// lint:` fences). Pass 2 ([`crate::graph`]) stitches the per-file call
//! sites into a workspace call graph.

use crate::lexer::{lex, Directive, ItemFlag, Tok, Token, WireAnn};

/// A set of closed line ranges (1-based, inclusive).
#[derive(Debug, Default, Clone)]
pub(crate) struct LineSet {
    pub ranges: Vec<(u32, u32)>,
}

impl LineSet {
    pub fn add(&mut self, start: u32, end: u32) {
        self.ranges.push((start, end));
    }
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

/// A `fn` item (free, impl method, trait default method, or nested).
#[derive(Debug)]
pub(crate) struct FnItem {
    pub name: String,
    /// Token-index range of the body braces, inclusive; `None` for body-less
    /// trait signatures.
    pub body: Option<(usize, usize)>,
    /// Line span of the body (brace line .. closing-brace line).
    pub span: Option<(u32, u32)>,
    /// `*_actor` / `*_loop` naming convention: an actor region root.
    pub actor_name: bool,
    /// Whole item sits in test code (`#[test]` / `#[cfg(test)]`).
    pub in_test: bool,
    /// `// lint: non-actor`: opted out of transitive actor inheritance.
    pub non_actor: bool,
    /// `// lint: blocking` / `// lint: non-blocking` override.
    pub blocking_override: Option<bool>,
    /// Type name of the enclosing `impl` block, if the fn is a method or
    /// associated fn.
    pub owner: Option<String>,
}

/// One `callee(` / `.callee(` site inside (or outside) a function.
#[derive(Debug)]
pub(crate) struct CallSite {
    pub callee: String,
    pub line: u32,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// `Q` of a `Q::callee(` path call. A CamelCase qualifier names a type,
    /// which lets blocking resolution match only that type's impls instead
    /// of every same-named fn in the workspace.
    pub qualifier: Option<String>,
    /// Index into [`FileModel::fns`] of the innermost enclosing fn.
    pub caller: Option<usize>,
    /// The call sits inside a `spawn(...)` argument — it runs on another
    /// thread, so it neither blocks the spawner nor holds its guards.
    pub in_spawn: bool,
}

/// An `impl [Trait for] Type` block.
#[derive(Debug)]
pub(crate) struct ImplBlock {
    pub trait_name: Option<String>,
    /// Last path segment of the self type; `None` for tuples/references the
    /// parser does not name.
    pub type_name: Option<String>,
    pub line: u32,
    /// Names of the `fn` items directly inside this block.
    pub fn_names: Vec<String>,
    pub in_test: bool,
}

/// An `enum` declaration with per-variant payload identifiers.
#[derive(Debug)]
pub(crate) struct EnumItem {
    pub name: String,
    /// Identifiers inside the declaration's `<...>` (generic params and bound
    /// names — over-approximate, used only to skip payload idents).
    pub generics: Vec<String>,
    /// `// lint: wire-protocol` on the declaration.
    pub wire_protocol: bool,
    pub in_test: bool,
    pub variants: Vec<Variant>,
}

#[derive(Debug)]
pub(crate) struct Variant {
    pub name: String,
    pub line: u32,
    /// Every identifier in the payload (field names and types alike; the
    /// wire-symmetry pass only looks at capitalised ones).
    pub idents: Vec<String>,
    pub ann: Option<WireAnn>,
}

/// Everything pass 1 extracts from one file.
pub(crate) struct FileModel {
    pub tokens: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub calls: Vec<CallSite>,
    pub impls: Vec<ImplBlock>,
    pub enums: Vec<EnumItem>,
    /// `struct` / `enum` / `union` names declared outside test code.
    pub type_defs: Vec<String>,
    /// Token-index ranges (inclusive parens) of `spawn(...)` arguments.
    pub spawn_ranges: Vec<(usize, usize)>,
    /// Bodies of `*_actor` / `*_loop` functions.
    pub actor: LineSet,
    /// `// lint: actor-region` fences.
    pub fence: LineSet,
    /// `#[cfg(test)]` / `#[test]` items.
    pub test: LineSet,
    /// `(line, standalone, rules)` inline allows, in directive order.
    pub allows: Vec<(u32, bool, Vec<String>)>,
    /// For each allow in `allows`: the line it covers (standalone allows skip
    /// attribute and blank lines to reach the first code line — the PR-8
    /// `#[inline]` bug).
    pub allow_targets: Vec<u32>,
}

impl FileModel {
    pub fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => Some(name.as_str()),
            _ => None,
        }
    }
    pub fn punct_at(&self, idx: usize) -> Option<char> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }
    /// `.name(` — a method call on something.
    pub fn is_method_call(&self, idx: usize, name: &str) -> bool {
        self.ident_at(idx) == Some(name)
            && idx > 0
            && self.punct_at(idx - 1) == Some('.')
            && self.punct_at(idx + 1) == Some('(')
    }
    /// `name!` — a macro invocation.
    pub fn is_macro(&self, idx: usize, name: &str) -> bool {
        self.ident_at(idx) == Some(name) && self.punct_at(idx + 1) == Some('!')
    }
    /// `a :: b` at `idx` (idx is `a`).
    pub fn is_path_pair(&self, idx: usize, a: &str, b: &str) -> bool {
        self.ident_at(idx) == Some(a)
            && self.punct_at(idx + 1) == Some(':')
            && self.punct_at(idx + 2) == Some(':')
            && self.ident_at(idx + 3) == Some(b)
    }
    pub fn in_test(&self, line: u32) -> bool {
        self.test.contains(line)
    }
    pub fn in_spawn(&self, idx: usize) -> bool {
        self.spawn_ranges.iter().any(|&(s, e)| s <= idx && idx <= e)
    }
}

/// Keywords that look like `ident(` but are never calls.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "fn", "if", "while", "for", "match", "loop", "return", "let", "mut", "in", "as", "move", "ref",
    "box", "where", "dyn",
];

/// Items armed by their header tokens, latched onto the next `{` at the
/// current nesting (a `;` first means a body-less item).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    Fn(usize),
    Impl(usize),
    Enum(usize),
    Trait,
    Test,
}

pub(crate) fn parse_file(source: &str) -> (FileModel, Vec<Directive>) {
    let (tokens, directives) = lex(source);

    // --- attribute mask + code-line map -----------------------------------
    // attr[i] == true for tokens inside `#[...]` groups (including `#`).
    let mut attr = vec![false; tokens.len()];
    {
        let mut i = 0usize;
        while i < tokens.len() {
            if matches!(tokens[i].tok, Tok::Punct('#'))
                && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            {
                attr[i] = true;
                attr[i + 1] = true;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < tokens.len() && depth > 0 {
                    match tokens[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        _ => {}
                    }
                    attr[j] = true;
                    j += 1;
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }
    // Lines holding at least one non-attribute token.
    let code_lines: std::collections::BTreeSet<u32> = tokens
        .iter()
        .zip(&attr)
        .filter(|(_, &a)| !a)
        .map(|(t, _)| t.line)
        .collect();
    let next_code_line = |line: u32| -> u32 {
        code_lines
            .range((line + 1)..)
            .next()
            .copied()
            .unwrap_or(u32::MAX)
    };

    // --- directive → target-line maps -------------------------------------
    let mut fence = LineSet::default();
    let mut fence_start: Option<u32> = None;
    let mut allows = Vec::new();
    let mut allow_targets = Vec::new();
    // Item flags keyed by the line they annotate.
    let mut item_flags: std::collections::HashMap<u32, Vec<ItemFlag>> =
        std::collections::HashMap::new();
    for d in &directives {
        match d {
            Directive::RegionStart(line) => {
                if fence_start.is_none() {
                    fence_start = Some(*line);
                }
            }
            Directive::RegionEnd(line) => {
                if let Some(s) = fence_start.take() {
                    fence.add(s, *line);
                }
            }
            Directive::Allow {
                line,
                rules,
                standalone,
            } => {
                let target = if *standalone {
                    next_code_line(*line)
                } else {
                    *line
                };
                allows.push((*line, *standalone, rules.clone()));
                allow_targets.push(target);
            }
            Directive::Item {
                line,
                standalone,
                flag,
            } => {
                let target = if *standalone {
                    next_code_line(*line)
                } else {
                    *line
                };
                item_flags.entry(target).or_default().push(flag.clone());
            }
        }
    }
    if let Some(s) = fence_start {
        fence.add(s, u32::MAX);
    }
    let flags_at = |line: u32| item_flags.get(&line).map(Vec::as_slice).unwrap_or(&[]);

    // --- spawn ranges (lookahead paren matching) --------------------------
    let mut spawn_ranges: Vec<(usize, usize)> = Vec::new();
    for i in 0..tokens.len() {
        if matches!(&tokens[i].tok, Tok::Ident(n) if n == "spawn")
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
        {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spawn_ranges.push((i + 1, j.min(tokens.len().saturating_sub(1))));
        }
    }

    // --- the main item walk ------------------------------------------------
    let mut fns: Vec<FnItem> = Vec::new();
    let mut impls: Vec<ImplBlock> = Vec::new();
    let mut enums: Vec<EnumItem> = Vec::new();
    let mut type_defs_raw: Vec<(String, u32)> = Vec::new();
    let mut calls: Vec<CallSite> = Vec::new();
    let mut actor = LineSet::default();
    let mut test = LineSet::default();

    let mut depth = 0usize;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    let mut pending: Vec<Pending> = Vec::new();
    // (what, body depth, start line, open-brace token idx)
    let mut open: Vec<(Pending, usize, u32, usize)> = Vec::new();
    let open_floor =
        |open: &[(Pending, usize, u32, usize)]| open.last().map_or(0, |&(_, d, _, _)| d);

    let mut idx = 0usize;
    while idx < tokens.len() {
        let line = tokens[idx].line;
        match &tokens[idx].tok {
            Tok::Punct('#')
                if matches!(tokens.get(idx + 1).map(|t| &t.tok), Some(Tok::Punct('['))) =>
            {
                // Attribute: scan the bracket group for `test`.
                let mut j = idx + 2;
                let mut attr_depth = 1usize;
                let mut saw_test = false;
                while j < tokens.len() && attr_depth > 0 {
                    match &tokens[j].tok {
                        Tok::Punct('[') => attr_depth += 1,
                        Tok::Punct(']') => attr_depth -= 1,
                        Tok::Ident(w) if w == "test" => saw_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if saw_test {
                    pending.push(Pending::Test);
                }
                idx = j;
                continue;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_of(&tokens, idx + 1) {
                    let flags = flags_at(line);
                    let blocking_override = if flags.contains(&ItemFlag::NonBlocking) {
                        Some(false)
                    } else if flags.contains(&ItemFlag::Blocking) {
                        Some(true)
                    } else {
                        None
                    };
                    fns.push(FnItem {
                        actor_name: name.ends_with("_actor") || name.ends_with("_loop"),
                        name: name.to_string(),
                        body: None,
                        span: None,
                        in_test: false, // fixed up when the body closes
                        non_actor: flags.contains(&ItemFlag::NonActor),
                        blocking_override,
                        owner: None, // fixed up when the body closes
                    });
                    pending.push(Pending::Fn(fns.len() - 1));
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                // Only item-position `impl` opens a block; `-> impl Trait` /
                // `&impl Trait` in type position is preceded by operator
                // punctuation, item `impl` by a statement boundary (or
                // `unsafe`).
                let item_position = match idx.checked_sub(1).map(|p| &tokens[p].tok) {
                    None | Some(Tok::Punct('}' | ';' | ']' | '{')) => true,
                    Some(Tok::Ident(prev)) => prev == "unsafe",
                    _ => false,
                };
                if item_position {
                    let (trait_name, type_name) = parse_impl_header(&tokens, idx + 1);
                    impls.push(ImplBlock {
                        trait_name,
                        type_name,
                        line,
                        fn_names: Vec::new(),
                        in_test: false,
                    });
                    pending.push(Pending::Impl(impls.len() - 1));
                }
            }
            Tok::Ident(kw) if kw == "trait" => {
                pending.push(Pending::Trait);
            }
            Tok::Ident(kw) if kw == "enum" => {
                if let Some(name) = ident_of(&tokens, idx + 1) {
                    type_defs_raw.push((name.to_string(), line));
                    let mut generics = Vec::new();
                    if let Some('<') = punct_of(&tokens, idx + 2) {
                        let mut j = idx + 3;
                        let mut angle = 1usize;
                        while j < tokens.len() && angle > 0 {
                            match &tokens[j].tok {
                                Tok::Punct('<') => angle += 1,
                                Tok::Punct('>') => angle -= 1,
                                Tok::Ident(g) => generics.push(g.clone()),
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    enums.push(EnumItem {
                        name: name.to_string(),
                        generics,
                        wire_protocol: flags_at(line).contains(&ItemFlag::WireProtocol),
                        in_test: false,
                        variants: Vec::new(),
                    });
                    pending.push(Pending::Enum(enums.len() - 1));
                }
            }
            Tok::Ident(kw) if kw == "struct" || kw == "union" => {
                if let Some(name) = ident_of(&tokens, idx + 1) {
                    type_defs_raw.push((name.to_string(), line));
                }
            }
            Tok::Ident(name) if punct_of(&tokens, idx + 1) == Some('(') => {
                // A call site — unless it is a keyword or the name in an item
                // header (`fn name(`).
                let prev_is_fn =
                    idx > 0 && matches!(&tokens[idx - 1].tok, Tok::Ident(k) if k == "fn");
                if !prev_is_fn && !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                    let caller = open
                        .iter()
                        .rev()
                        .find_map(|(p, _, _, _)| match p {
                            Pending::Fn(f) => Some(*f),
                            _ => None,
                        })
                        .or_else(|| {
                            pending.iter().rev().find_map(|p| match p {
                                Pending::Fn(f) => Some(*f),
                                _ => None,
                            })
                        });
                    let qualifier = (idx >= 3
                        && matches!(&tokens[idx - 1].tok, Tok::Punct(':'))
                        && matches!(&tokens[idx - 2].tok, Tok::Punct(':')))
                    .then(|| match &tokens[idx - 3].tok {
                        Tok::Ident(q) => Some(q.clone()),
                        _ => None,
                    })
                    .flatten();
                    calls.push(CallSite {
                        callee: name.clone(),
                        line,
                        tok: idx,
                        qualifier,
                        caller,
                        in_spawn: spawn_ranges.iter().any(|&(s, e)| s <= idx && idx <= e),
                    });
                }
                // The '(' itself is handled by the ordinary punct arms on the
                // next iteration.
            }
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren = paren.saturating_sub(1),
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket = bracket.saturating_sub(1),
            Tok::Punct(';') if paren == 0 && bracket == 0 && depth == open_floor(&open) => {
                // A body-less item (trait method, `#[cfg(test)] use ...;`)
                // consumes the armed items.
                pending.clear();
            }
            Tok::Punct('{') => {
                depth += 1;
                for p in pending.drain(..) {
                    open.push((p, depth, line, idx));
                }
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while let Some(&(p, body_depth, start, open_idx)) = open.last() {
                    if body_depth <= depth {
                        break;
                    }
                    open.pop();
                    let in_test_now = test.contains(start)
                        || open.iter().any(|(q, ..)| matches!(q, Pending::Test));
                    match p {
                        Pending::Fn(f) => {
                            fns[f].body = Some((open_idx, idx));
                            fns[f].span = Some((start, line));
                            fns[f].in_test = in_test_now;
                            if fns[f].actor_name {
                                actor.add(start, line);
                            }
                            // Attribute the fn to the innermost still-open
                            // impl block, if it is the direct parent.
                            if let Some((Pending::Impl(ib), d, ..)) = open.last() {
                                if *d == depth {
                                    let name = fns[f].name.clone();
                                    fns[f].owner = impls[*ib].type_name.clone();
                                    impls[*ib].fn_names.push(name);
                                }
                            }
                        }
                        Pending::Impl(ib) => impls[ib].in_test = in_test_now,
                        Pending::Enum(e) => {
                            enums[e].in_test = in_test_now;
                            parse_variants(&tokens, open_idx, idx, &mut enums[e], &item_flags);
                        }
                        Pending::Trait => {}
                        Pending::Test => test.add(start, line),
                    }
                }
            }
            _ => {}
        }
        idx += 1;
    }
    // Unclosed regions (truncated file): extend to the end.
    for (p, _, start, open_idx) in open {
        match p {
            Pending::Test => test.add(start, u32::MAX),
            Pending::Fn(f) => {
                fns[f].body = Some((open_idx, tokens.len().saturating_sub(1)));
                fns[f].span = Some((start, u32::MAX));
                if fns[f].actor_name {
                    actor.add(start, u32::MAX);
                }
            }
            _ => {}
        }
    }

    let type_defs = type_defs_raw
        .into_iter()
        .filter(|(_, line)| !test.contains(*line))
        .map(|(name, _)| name)
        .collect();

    (
        FileModel {
            tokens,
            fns,
            calls,
            impls,
            enums,
            type_defs,
            spawn_ranges,
            actor,
            fence,
            test,
            allows,
            allow_targets,
        },
        directives,
    )
}

fn ident_of(tokens: &[Token], idx: usize) -> Option<&str> {
    match tokens.get(idx).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

fn punct_of(tokens: &[Token], idx: usize) -> Option<char> {
    match tokens.get(idx).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Parses an `impl` header starting just after the `impl` keyword: skips the
/// generic parameter list, then reads path segments up to `for` (trait) and
/// up to the body `{` (self type). Returns `(trait, type)` last segments.
fn parse_impl_header(tokens: &[Token], mut j: usize) -> (Option<String>, Option<String>) {
    if punct_of(tokens, j) == Some('<') {
        let mut angle = 1usize;
        j += 1;
        while j < tokens.len() && angle > 0 {
            match tokens[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    let mut first_path_last: Option<String> = None;
    let mut second_path_last: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0usize;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Punct('{') | Tok::Punct(';') if angle == 0 => break,
            Tok::Ident(w) if w == "for" && angle == 0 => saw_for = true,
            Tok::Ident(w) if w == "where" && angle == 0 => break,
            Tok::Ident(w) if angle == 0 => {
                let slot = if saw_for {
                    &mut second_path_last
                } else {
                    &mut first_path_last
                };
                *slot = Some(w.clone());
            }
            _ => {}
        }
        j += 1;
    }
    if saw_for {
        (first_path_last, second_path_last)
    } else {
        (None, first_path_last)
    }
}

/// Splits an enum body (tokens between the braces, exclusive) into variants
/// at top-level commas; collects each variant's identifiers and any
/// `// lint: wire(...)` / `local-only` annotation on its first line.
fn parse_variants(
    tokens: &[Token],
    open_idx: usize,
    close_idx: usize,
    item: &mut EnumItem,
    item_flags: &std::collections::HashMap<u32, Vec<ItemFlag>>,
) {
    let mut j = open_idx + 1;
    while j < close_idx {
        // Skip attributes (`#[...]`) before the variant name.
        if matches!(tokens[j].tok, Tok::Punct('#'))
            && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let mut d = 1usize;
            j += 2;
            while j < close_idx && d > 0 {
                match tokens[j].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
            continue;
        }
        let Tok::Ident(name) = &tokens[j].tok else {
            j += 1;
            continue;
        };
        let line = tokens[j].line;
        // Scan the payload to the next top-level comma (or the body end).
        let mut nest = 0usize;
        let mut idents = Vec::new();
        let mut k = j + 1;
        while k < close_idx {
            match &tokens[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => nest += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    nest = nest.saturating_sub(1)
                }
                Tok::Punct(',') if nest == 0 => break,
                Tok::Ident(w) => idents.push(w.clone()),
                _ => {}
            }
            k += 1;
        }
        let ann = item_flags.get(&line).and_then(|flags| {
            flags.iter().find_map(|f| match f {
                ItemFlag::Wire(ann) => Some(ann.clone()),
                _ => None,
            })
        });
        item.variants.push(Variant {
            name: name.clone(),
            line,
            idents,
            ann,
        });
        j = k + 1;
    }
}
