//! Pass 0: tokenisation.
//!
//! Rust source is reduced to identifiers and single-char punctuation;
//! string/char/numeric literals, comments and lifetimes are consumed so a
//! `.recv()` inside a string or doc comment never fires. `// lint:`
//! directives are collected on the side, tagged standalone (own line) or
//! trailing (after code), because the two cover different lines.

/// One surviving token: an identifier, a punctuation character, or an inert
/// literal marker. `Lit` keeps call-argument shape visible: `.join()` (a
/// thread join, empty parens) stays distinguishable from `.join("\n")` (a
/// string join) after the literal's text is consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Punct(char),
    Lit,
}

#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A wire-form declaration on a protocol-enum variant (see `// lint: wire`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WireAnn {
    /// `wire(TypeName)`: the variant crosses the wire as `TypeName`, which
    /// must have a `WireCode` impl.
    Form(String),
    /// `wire(tag-only)`: the variant crosses the wire as its discriminant tag
    /// plus primitive fields; reply channels are transport-level routing.
    TagOnly,
    /// `local-only`: the variant never crosses a process boundary.
    LocalOnly,
}

/// Item-level classification directives (standalone above the item, possibly
/// above its attributes, or trailing on the declaration line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ItemFlag {
    /// Opt a function out of transitive actor-region inheritance.
    NonActor,
    /// Force a function into / out of the blocking classification.
    Blocking,
    NonBlocking,
    /// Mark an enum as a wire-protocol surface: every variant must be
    /// codec'd, tag-only, or explicitly local-only.
    WireProtocol,
    /// Declare a variant's wire form (see [`WireAnn`]).
    Wire(WireAnn),
}

#[derive(Debug, Clone)]
pub(crate) enum Directive {
    RegionStart(u32),
    RegionEnd(u32),
    Allow {
        line: u32,
        rules: Vec<String>,
        /// A standalone `// lint: allow(...)` line covers the next *code*
        /// line (attributes skipped); a trailing comment covers its own line.
        standalone: bool,
    },
    Item {
        line: u32,
        standalone: bool,
        flag: ItemFlag,
    },
}

/// Tokenises Rust source, collecting `// lint:` directives on the side.
pub(crate) fn lex(source: &str) -> (Vec<Token>, Vec<Directive>) {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    fn is_ident_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_'
    }
    fn is_ident_cont(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            // Line comment. Plain `//` comments may carry lint directives;
            // doc comments (`///`, `//!`) never do, so examples in docs
            // cannot open phantom regions.
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            let is_doc = start < bytes.len() && (bytes[start] == b'/' || bytes[start] == b'!');
            if !is_doc {
                let text = source[start..j].trim();
                if let Some(rest) = text.strip_prefix("lint:") {
                    let standalone = tokens.last().is_none_or(|t: &Token| t.line != line);
                    parse_directive(rest.trim(), line, standalone, &mut directives);
                }
            }
            i = j;
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            // Block comment, nesting handled.
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if is_ident_start(b) {
            let start = i;
            while i < bytes.len() && is_ident_cont(bytes[i]) {
                i += 1;
            }
            let ident = &source[start..i];
            // String-literal prefixes: r"", r#""#, b"", br"", b'c'.
            let next = bytes.get(i).copied();
            match (ident, next) {
                ("r" | "br" | "b" | "rb", Some(b'"')) | ("r" | "br" | "rb", Some(b'#')) => {
                    let start_line = line;
                    skip_string_literal(bytes, &mut i, &mut line, ident.contains('r'));
                    tokens.push(Token {
                        tok: Tok::Lit,
                        line: start_line,
                    });
                }
                ("b", Some(b'\'')) => {
                    i += 1; // consume the quote; skip_char expects to be past it
                    skip_char_literal(bytes, &mut i, &mut line);
                    tokens.push(Token {
                        tok: Tok::Lit,
                        line,
                    });
                }
                _ => tokens.push(Token {
                    tok: Tok::Ident(ident.to_string()),
                    line,
                }),
            }
        } else if b.is_ascii_digit() {
            // Numeric literal (coarse: digits, underscores, type suffixes,
            // hex/oct/bin digits, an optional fraction).
            i += 1;
            while i < bytes.len() && (is_ident_cont(bytes[i])) {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
            }
            tokens.push(Token {
                tok: Tok::Lit,
                line,
            });
        } else if b == b'"' {
            let start_line = line;
            skip_string_literal(bytes, &mut i, &mut line, false);
            tokens.push(Token {
                tok: Tok::Lit,
                line: start_line,
            });
        } else if b == b'\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            if i + 1 < bytes.len()
                && bytes[i + 1] != b'\\'
                && is_ident_start(bytes[i + 1])
                && bytes.get(i + 2).copied() != Some(b'\'')
            {
                // Lifetime: consume the quote and the identifier.
                i += 1;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
            } else {
                i += 1;
                skip_char_literal(bytes, &mut i, &mut line);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
        } else {
            tokens.push(Token {
                tok: Tok::Punct(b as char),
                line,
            });
            i += 1;
        }
    }
    (tokens, directives)
}

fn parse_directive(text: &str, line: u32, standalone: bool, directives: &mut Vec<Directive>) {
    // First word, clipped at whitespace or '(' — the directive name; the
    // remainder (reason text after an em-dash, arguments) is free-form.
    let word_end = text
        .find(|c: char| c.is_whitespace() || c == '(')
        .unwrap_or(text.len());
    let word = &text[..word_end];
    let item = |flag| Directive::Item {
        line,
        standalone,
        flag,
    };
    match word {
        "actor-region" => directives.push(Directive::RegionStart(line)),
        "end-actor-region" => directives.push(Directive::RegionEnd(line)),
        "allow" => {
            if let Some(rest) = text[word_end..].strip_prefix('(') {
                if let Some(close) = rest.find(')') {
                    let rules = rest[..close]
                        .split(',')
                        .map(|r| r.trim().to_string())
                        .filter(|r| !r.is_empty())
                        .collect();
                    directives.push(Directive::Allow {
                        line,
                        rules,
                        standalone,
                    });
                }
            }
        }
        "non-actor" => directives.push(item(ItemFlag::NonActor)),
        "blocking" => directives.push(item(ItemFlag::Blocking)),
        "non-blocking" => directives.push(item(ItemFlag::NonBlocking)),
        "wire-protocol" => directives.push(item(ItemFlag::WireProtocol)),
        "local-only" => directives.push(item(ItemFlag::Wire(WireAnn::LocalOnly))),
        "wire" => {
            if let Some(rest) = text[word_end..].strip_prefix('(') {
                if let Some(close) = rest.find(')') {
                    let arg = rest[..close].trim();
                    let ann = if arg == "tag-only" {
                        WireAnn::TagOnly
                    } else {
                        WireAnn::Form(arg.to_string())
                    };
                    directives.push(item(ItemFlag::Wire(ann)));
                }
            }
        }
        _ => {}
    }
}

/// Consumes a (possibly raw) string literal starting at `*i` (which points at
/// the opening `"` or the first `#` of a raw string).
fn skip_string_literal(bytes: &[u8], i: &mut usize, line: &mut u32, raw: bool) {
    let mut hashes = 0usize;
    while raw && *i < bytes.len() && bytes[*i] == b'#' {
        hashes += 1;
        *i += 1;
    }
    if *i < bytes.len() && bytes[*i] == b'"' {
        *i += 1;
    }
    while *i < bytes.len() {
        let b = bytes[*i];
        if b == b'\n' {
            *line += 1;
            *i += 1;
        } else if !raw && b == b'\\' {
            *i = (*i + 2).min(bytes.len());
        } else if b == b'"' {
            *i += 1;
            if !raw || hashes == 0 {
                return;
            }
            let mut seen = 0usize;
            while seen < hashes && *i < bytes.len() && bytes[*i] == b'#' {
                seen += 1;
                *i += 1;
            }
            if seen == hashes {
                return;
            }
        } else {
            *i += 1;
        }
    }
}

/// Consumes a char literal body; `*i` points at the first byte after the
/// opening `'`.
fn skip_char_literal(bytes: &[u8], i: &mut usize, line: &mut u32) {
    while *i < bytes.len() {
        let b = bytes[*i];
        if b == b'\\' {
            *i = (*i + 2).min(bytes.len());
        } else if b == b'\'' {
            *i += 1;
            return;
        } else {
            if b == b'\n' {
                *line += 1;
            }
            *i += 1;
        }
    }
}
