//! Pass 3: wire-codec symmetry.
//!
//! The ProcessBackend will live on `wire.rs`: every message that crosses a
//! process boundary must encode, decode, and be proven to round-trip. Three
//! checks, all workspace-level:
//!
//! 1. **Pairing** — an impl block defining `encode_wire` must define
//!    `decode_wire` (and vice versa); a one-sided codec cannot round-trip.
//! 2. **Protocol coverage** — every variant of an enum marked
//!    `// lint: wire-protocol` must be accounted for: its capitalised
//!    payload types are either generically codec'd primitives, workspace
//!    types with a `WireCode` impl, or the variant carries an explicit
//!    mapping — `// lint: wire(T)` (crosses as codec'd type `T`),
//!    `// lint: wire(tag-only)` (discriminant + primitive fields only;
//!    reply channels are transport-level routing), or
//!    `// lint: local-only — reason` (never crosses the wire). A variant
//!    smuggling a `Sender` / `JoinHandle` / `Duration` with no mapping is
//!    exactly the thing that hangs a fleet once the boundary is real.
//! 3. **Round-trip coverage** — every workspace-defined type with a
//!    `WireCode` impl must be named in at least one round-trip test (a test
//!    region that mentions `round_trip` / `to_wire` / `from_wire` /
//!    `encode_wire` / `decode_wire`).

use std::collections::HashSet;

use crate::lexer::WireAnn;
use crate::parse::FileModel;
use crate::rules::Reporter;
use crate::RULE_WIRE_SYMMETRY;

/// Process-local handle types that can never cross a process boundary.
const HANDLE_TYPES: [&str; 12] = [
    "Sender",
    "Receiver",
    "SyncSender",
    "JoinHandle",
    "Thread",
    "Arc",
    "Rc",
    "Weak",
    "Mutex",
    "RwLock",
    "Duration",
    "Instant",
];

const ROUND_TRIP_MARKERS: [&str; 5] = [
    "round_trip",
    "to_wire",
    "from_wire",
    "encode_wire",
    "decode_wire",
];

pub(crate) fn run(files: &[FileModel], rels: &[String], reporters: &mut [Reporter]) {
    // Workspace-defined (non-test) type names and codec'd type names.
    let mut defined: HashSet<&str> = HashSet::new();
    for m in files {
        defined.extend(m.type_defs.iter().map(String::as_str));
    }
    let mut codec: HashSet<&str> = HashSet::new();
    for m in files {
        for imp in &m.impls {
            if imp.in_test {
                continue;
            }
            let has_enc = imp.fn_names.iter().any(|f| f == "encode_wire");
            let has_dec = imp.fn_names.iter().any(|f| f == "decode_wire");
            let is_codec = imp.trait_name.as_deref() == Some("WireCode") || (has_enc && has_dec);
            if is_codec {
                if let Some(t) = imp.type_name.as_deref() {
                    codec.insert(t);
                }
            }
        }
    }
    // Names mentioned inside test regions that exercise the wire format.
    let mut round_tripped: HashSet<&str> = HashSet::new();
    for m in files {
        for &(s, e) in &m.test.ranges {
            let idents: Vec<&str> = m
                .tokens
                .iter()
                .filter(|t| s <= t.line && t.line <= e)
                .filter_map(|t| match &t.tok {
                    crate::lexer::Tok::Ident(w) => Some(w.as_str()),
                    _ => None,
                })
                .collect();
            if idents.iter().any(|w| ROUND_TRIP_MARKERS.contains(w)) {
                round_tripped.extend(idents);
            }
        }
    }

    for (fi, m) in files.iter().enumerate() {
        let rel = rels[fi].as_str();
        let r = &mut reporters[fi];

        // 1. encode/decode pairing, and 3. round-trip coverage, per impl.
        for imp in &m.impls {
            if imp.in_test {
                continue;
            }
            let has_enc = imp.fn_names.iter().any(|f| f == "encode_wire");
            let has_dec = imp.fn_names.iter().any(|f| f == "decode_wire");
            let ty = imp.type_name.as_deref().unwrap_or("<type>");
            if has_enc != has_dec {
                let (got, missing) = if has_enc {
                    ("encode_wire", "decode_wire")
                } else {
                    ("decode_wire", "encode_wire")
                };
                r.report(
                    m,
                    rel,
                    RULE_WIRE_SYMMETRY,
                    imp.line,
                    format!(
                        "`{ty}` defines `{got}` without `{missing}`: a one-sided codec \
                         cannot round-trip across the process boundary"
                    ),
                );
            }
            let is_codec = imp.trait_name.as_deref() == Some("WireCode") || (has_enc && has_dec);
            if is_codec {
                if let Some(t) = imp.type_name.as_deref() {
                    if defined.contains(t) && !round_tripped.contains(t) {
                        r.report(
                            m,
                            rel,
                            RULE_WIRE_SYMMETRY,
                            imp.line,
                            format!(
                                "codec'd type `{t}` is never named in a round-trip test: \
                                 add it to the `round_trip` coverage in wire tests"
                            ),
                        );
                    }
                }
            }
        }

        // 2. protocol-enum variant coverage.
        for en in &m.enums {
            if !en.wire_protocol || en.in_test {
                continue;
            }
            for v in &en.variants {
                match &v.ann {
                    Some(WireAnn::LocalOnly) | Some(WireAnn::TagOnly) => continue,
                    Some(WireAnn::Form(t)) => {
                        if !codec.contains(t.as_str()) {
                            r.report(
                                m,
                                rel,
                                RULE_WIRE_SYMMETRY,
                                v.line,
                                format!(
                                    "variant `{}::{}` declares wire form `{t}` but no \
                                     `WireCode` impl for `{t}` exists",
                                    en.name, v.name
                                ),
                            );
                        }
                        continue;
                    }
                    None => {}
                }
                for w in &v.idents {
                    if !w.chars().next().is_some_and(char::is_uppercase) || en.generics.contains(w)
                    {
                        continue;
                    }
                    if HANDLE_TYPES.contains(&w.as_str()) {
                        r.report(
                            m,
                            rel,
                            RULE_WIRE_SYMMETRY,
                            v.line,
                            format!(
                                "variant `{}::{}` carries process-local `{w}` with no wire \
                                 mapping — annotate `// lint: wire(T)`, `// lint: \
                                 wire(tag-only)`, or `// lint: local-only — reason`",
                                en.name, v.name
                            ),
                        );
                        break;
                    }
                    if defined.contains(w.as_str()) && !codec.contains(w.as_str()) {
                        r.report(
                            m,
                            rel,
                            RULE_WIRE_SYMMETRY,
                            v.line,
                            format!(
                                "variant `{}::{}` payload `{w}` has no `WireCode` impl — \
                                 codec it or declare the variant's wire form",
                                en.name, v.name
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
}
