//! CLI for the workspace analyzer.
//!
//! ```text
//! parmac-lint [--format text|json|github] [--diff <git-ref>] [root]
//! ```
//!
//! * `--format text` (default) — `path:line: [rule] message` per finding.
//! * `--format json` — a JSON array of finding objects, for tooling.
//! * `--format github` — GitHub Actions `::error` annotations, so CI
//!   failures land on the offending lines in the PR diff.
//! * `--diff <ref>` — report only findings in files changed since `<ref>`
//!   (per `git diff --name-only`); workspace-level findings against the
//!   allowlist itself are kept, since any change can make an entry stale.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

use parmac_lint::{find_workspace_root, lint_workspace, render_github, render_json, Finding};

enum Format {
    Text,
    Json,
    Github,
}

fn usage() -> ExitCode {
    eprintln!("usage: parmac-lint [--format text|json|github] [--diff <git-ref>] [workspace-root]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut diff_ref: Option<String> = None;
    let mut root_arg: Option<PathBuf> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                _ => return usage(),
            },
            "--diff" => match args.next() {
                Some(r) => diff_ref = Some(r),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!(
                    "parmac-lint: workspace concurrency-invariant analyzer\n\n\
                     usage: parmac-lint [--format text|json|github] [--diff <git-ref>] [root]"
                );
                return ExitCode::SUCCESS;
            }
            _ if root_arg.is_none() && !arg.starts_with('-') => {
                root_arg = Some(PathBuf::from(arg));
            }
            _ => return usage(),
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().expect("cwd");
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "parmac-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("parmac-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(base) = &diff_ref {
        match changed_paths(&root, base) {
            Ok(changed) => {
                findings.retain(|f: &Finding| {
                    f.path == "parmac-lint.allow" || changed.iter().any(|c| c == &f.path)
                });
            }
            Err(e) => {
                eprintln!("parmac-lint: --diff {base}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match format {
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("parmac-lint: workspace clean ({})", root.display());
            } else {
                eprintln!("parmac-lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", render_json(&findings)),
        Format::Github => {
            print!("{}", render_github(&findings));
            if !findings.is_empty() {
                eprintln!("parmac-lint: {} finding(s)", findings.len());
            }
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace-relative paths changed since `base`, per `git diff`.
fn changed_paths(root: &std::path::Path, base: &str) -> Result<Vec<String>, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", base])
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(String::from_utf8_lossy(&out.stderr).trim().to_string());
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect())
}
