//! CLI entry point: `cargo run -p parmac-lint [workspace-root]`.
//!
//! Prints one `path:line: [rule] message` diagnostic per finding and exits
//! non-zero if any survive the allowlist — suitable as a named CI step.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match parmac_lint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "parmac-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match parmac_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("parmac-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("parmac-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("parmac-lint: error walking {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
