//! Pass 2: workspace call-graph propagation.
//!
//! Two fixpoints over the per-file models from pass 1:
//!
//! * **Actor inheritance** (greatest fixpoint, by demotion): a function is
//!   *reachable only from actor regions* iff it has at least one non-test
//!   call site and every non-test call site sits in actor context — a named
//!   `*_actor` / `*_loop` body, a `// lint: actor-region` fence, or another
//!   inherited function. Starting from "every candidate inherits" and
//!   demoting on each non-actor call site handles recursion and cycles: a
//!   mutually-recursive helper pair reachable only from an actor loop stays
//!   inherited, one plain call site anywhere demotes the whole component.
//!   `// lint: non-actor` opts a function out.
//!
//! * **Blocking classification** (least fixpoint): a function blocks if its
//!   body contains a blocking operation (`.recv()` / `.recv_timeout(..)` /
//!   `.send(..)` / `.join()` / `.wait(..)` / `thread::sleep`) outside test
//!   code and outside `spawn(...)` arguments, or if it calls a function
//!   classified as blocking. Call resolution is by name across the
//!   workspace (deliberately over-approximate; `// lint: non-blocking`
//!   corrects a misclassification, `// lint: blocking` declares a wrapper
//!   the scanner cannot see through).

use std::collections::{HashMap, HashSet};

use crate::parse::{FileModel, LineSet};

/// The outcome of the propagation pass, consumed by the token rules.
pub(crate) struct WsAnalysis {
    /// Per file: fn indices that inherit actor membership transitively.
    pub inherited: Vec<HashSet<usize>>,
    /// Per file: witness caller name for each inherited fn (for messages).
    pub witness: Vec<HashMap<usize, String>>,
    /// Per file: full actor region (named bodies + fences + inherited fns).
    pub effective_actor: Vec<LineSet>,
    /// Bare names of every workspace fn classified as blocking (used for
    /// method calls and module-path calls, which carry no type).
    pub blocking_bare: HashSet<String>,
    /// Owner type → blocking fn names, for type-qualified calls.
    pub blocking_qualified: HashMap<String, HashSet<String>>,
    /// Owner type → every fn name defined on it in the workspace.
    pub qualified_known: HashMap<String, HashSet<String>>,
}

impl WsAnalysis {
    /// The inherited fn (if any) whose body span contains `line` in `file`.
    pub fn inherited_fn_at(&self, files: &[FileModel], file: usize, line: u32) -> Option<usize> {
        self.inherited[file].iter().copied().find(|&f| {
            files[file].fns[f]
                .span
                .is_some_and(|(s, e)| s <= line && line <= e)
        })
    }

    /// Does this call site resolve to a blocking-classified function? Same
    /// resolution the propagation fixpoint uses: type-qualified calls match
    /// only that type's workspace impls, everything else matches by name;
    /// `drop(x)` never matches (guard-release idiom).
    pub fn call_blocks(&self, c: &crate::parse::CallSite) -> bool {
        if c.callee == "drop" {
            return false;
        }
        match &c.qualifier {
            Some(q) if q != "Self" && q.starts_with(char::is_uppercase) => {
                match self.qualified_known.get(q) {
                    Some(defined) if defined.contains(&c.callee) => self
                        .blocking_qualified
                        .get(q)
                        .is_some_and(|s| s.contains(&c.callee)),
                    _ => false,
                }
            }
            _ => self.blocking_bare.contains(&c.callee),
        }
    }
}

/// Blocking-operation tokens: `(method name, requires empty parens)`.
/// `try_send` / `try_recv` are deliberately absent — they cannot block.
const BLOCKING_METHODS: [(&str, bool); 6] = [
    ("recv", true),
    ("recv_timeout", false),
    ("recv_deadline", false),
    ("send", false),
    ("join", true),
    ("wait", false),
];

/// Does this token index hit a direct blocking operation? Returns a short
/// operation name for diagnostics.
pub(crate) fn blocking_op_at(m: &FileModel, idx: usize) -> Option<&'static str> {
    for (name, empty) in BLOCKING_METHODS {
        if m.is_method_call(idx, name) && (!empty || m.punct_at(idx + 2) == Some(')')) {
            return Some(name);
        }
    }
    if m.is_path_pair(idx, "thread", "sleep") || m.is_method_call(idx, "sleep") {
        return Some("sleep");
    }
    None
}

pub(crate) fn analyze(files: &[FileModel]) -> WsAnalysis {
    // name -> every (file, fn) with that name.
    let mut by_name: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, m) in files.iter().enumerate() {
        for (i, f) in m.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((fi, i));
        }
    }

    // ----- actor inheritance (demotion to fixpoint) ------------------------
    // Candidates: non-root, non-test, not opted out, and actually called
    // from somewhere outside test code.
    let mut called: HashSet<&str> = HashSet::new();
    for m in files {
        for c in &m.calls {
            if !m.in_test(c.line) {
                called.insert(c.callee.as_str());
            }
        }
    }
    let mut inherited: Vec<HashSet<usize>> = files
        .iter()
        .map(|m| {
            m.fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    !f.actor_name
                        && !f.in_test
                        && !f.non_actor
                        && f.body.is_some()
                        && called.contains(f.name.as_str())
                })
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    loop {
        let mut demote: HashSet<&str> = HashSet::new();
        for (fi, m) in files.iter().enumerate() {
            for c in &m.calls {
                if m.in_test(c.line) {
                    continue;
                }
                let in_actor_ctx = m.fence.contains(c.line)
                    || m.actor.contains(c.line)
                    || c.caller
                        .is_some_and(|caller| inherited[fi].contains(&caller));
                if !in_actor_ctx {
                    demote.insert(c.callee.as_str());
                }
            }
        }
        let mut changed = false;
        for (fi, m) in files.iter().enumerate() {
            let before = inherited[fi].len();
            inherited[fi].retain(|&i| !demote.contains(m.fns[i].name.as_str()));
            changed |= inherited[fi].len() != before;
        }
        if !changed {
            break;
        }
    }

    // Witnesses: one actor-context caller per inherited fn, for diagnostics.
    let mut inherited_names: HashSet<&str> = HashSet::new();
    for (fi, m) in files.iter().enumerate() {
        for &i in &inherited[fi] {
            inherited_names.insert(m.fns[i].name.as_str());
        }
    }
    let mut witness_by_name: HashMap<&str, String> = HashMap::new();
    for (fi, m) in files.iter().enumerate() {
        for c in &m.calls {
            if m.in_test(c.line) || !inherited_names.contains(c.callee.as_str()) {
                continue;
            }
            let from = match c.caller {
                Some(caller) if m.fns[caller].actor_name || inherited[fi].contains(&caller) => {
                    m.fns[caller].name.clone()
                }
                _ if m.fence.contains(c.line) || m.actor.contains(c.line) => {
                    "a fenced actor region".to_string()
                }
                _ => continue,
            };
            witness_by_name.entry(c.callee.as_str()).or_insert(from);
        }
    }
    let witness: Vec<HashMap<usize, String>> = files
        .iter()
        .enumerate()
        .map(|(fi, m)| {
            inherited[fi]
                .iter()
                .filter_map(|&i| {
                    witness_by_name
                        .get(m.fns[i].name.as_str())
                        .map(|w| (i, w.clone()))
                })
                .collect()
        })
        .collect();

    let effective_actor: Vec<LineSet> = files
        .iter()
        .enumerate()
        .map(|(fi, m)| {
            let mut set = LineSet {
                ranges: m.actor.ranges.clone(),
            };
            for &(s, e) in &m.fence.ranges {
                set.add(s, e);
            }
            for &i in &inherited[fi] {
                if let Some((s, e)) = m.fns[i].span {
                    set.add(s, e);
                }
            }
            set
        })
        .collect();

    // ----- blocking classification (least fixpoint) ------------------------
    let mut blocking: Vec<HashSet<usize>> = files
        .iter()
        .map(|m| {
            m.fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.blocking_override != Some(false))
                .filter(|(_, f)| {
                    f.blocking_override == Some(true) || {
                        let Some((s, e)) = f.body else { return false };
                        (s..=e).any(|idx| {
                            blocking_op_at(m, idx).is_some()
                                && !m.in_spawn(idx)
                                && !m.in_test(m.tokens[idx].line)
                        })
                    }
                })
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    // Every (owner type, fn name) pair the workspace defines: a call
    // qualified by a workspace type resolves against exactly these, so
    // `Builder::new(...)` (std) never matches a workspace `fn new`.
    let mut qualified_known: HashMap<String, HashSet<String>> = HashMap::new();
    for m in files {
        for f in &m.fns {
            if let Some(owner) = &f.owner {
                qualified_known
                    .entry(owner.clone())
                    .or_default()
                    .insert(f.name.clone());
            }
        }
    }

    loop {
        let mut bare: HashSet<&str> = HashSet::new();
        let mut qual: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (fi, m) in files.iter().enumerate() {
            for &i in &blocking[fi] {
                let f = &m.fns[i];
                bare.insert(f.name.as_str());
                if let Some(owner) = &f.owner {
                    qual.entry(owner.as_str())
                        .or_default()
                        .insert(f.name.as_str());
                }
            }
        }
        let call_blocks = |c: &crate::parse::CallSite| -> bool {
            // `drop(x)` is the guard-release idiom; which `Drop::drop` runs
            // is type-dependent, so name resolution on `drop` would poison
            // every explicit drop with the blocking Drop impls (thread
            // joins). Excluded from transitive matching.
            if c.callee == "drop" {
                return false;
            }
            match &c.qualifier {
                // A CamelCase qualifier names a type: match only that type's
                // workspace impls; an unknown type (std, vendored) cannot be
                // seen blocking. `Self::f` and module paths (`waits::f`)
                // fall back to bare-name matching.
                Some(q) if q != "Self" && q.starts_with(char::is_uppercase) => {
                    match qualified_known.get(q.as_str()) {
                        Some(defined) if defined.contains(c.callee.as_str()) => qual
                            .get(q.as_str())
                            .is_some_and(|s| s.contains(c.callee.as_str())),
                        _ => false,
                    }
                }
                _ => bare.contains(c.callee.as_str()),
            }
        };
        let mut grow: Vec<(usize, usize)> = Vec::new();
        for (fi, m) in files.iter().enumerate() {
            for c in &m.calls {
                if c.in_spawn || m.in_test(c.line) {
                    continue;
                }
                let Some(caller) = c.caller else { continue };
                if blocking[fi].contains(&caller) || m.fns[caller].blocking_override == Some(false)
                {
                    continue;
                }
                if call_blocks(c) {
                    grow.push((fi, caller));
                }
            }
        }
        if grow.is_empty() {
            break;
        }
        for (fi, caller) in grow {
            blocking[fi].insert(caller);
        }
    }

    let mut blocking_bare: HashSet<String> = HashSet::new();
    let mut blocking_qualified: HashMap<String, HashSet<String>> = HashMap::new();
    for (fi, m) in files.iter().enumerate() {
        for &i in &blocking[fi] {
            let f = &m.fns[i];
            blocking_bare.insert(f.name.clone());
            if let Some(owner) = &f.owner {
                blocking_qualified
                    .entry(owner.clone())
                    .or_default()
                    .insert(f.name.clone());
            }
        }
    }

    WsAnalysis {
        inherited,
        witness,
        effective_actor,
        blocking_bare,
        blocking_qualified,
        qualified_known,
    }
}
