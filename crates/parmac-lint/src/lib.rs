//! `parmac-lint`: a multi-pass workspace concurrency-invariant analyzer.
//!
//! `clippy` cannot see the invariants the serving substrate
//! (`crates/parmac-cluster/src/server.rs`) rests on: detached actor threads
//! must never panic, every blocking wait must be deadline- or
//! heartbeat-bounded, long-lived threads must come from the sanctioned named
//! spawn sites, bitwise-deterministic training paths must not read wall
//! clocks, mutex guards must not be held across blocking work, and the wire
//! codecs the ProcessBackend will live on must be complete and round-trip
//! tested. This crate is a hand-rolled Rust analyzer (offline — no syn, no
//! crates.io) that enforces those rules with `file:line` diagnostics.
//!
//! # Passes
//!
//! 1. **Lex + parse** ([`lexer`], [`parse`]): tokenise each file, then one
//!    brace-matching walk extracts `fn` / `impl` / `enum` items with spans,
//!    call sites, `spawn(...)` ranges, and the region line-sets.
//! 2. **Propagate** ([`graph`]): actor-region membership propagates
//!    transitively through the workspace call graph (a helper reachable only
//!    from actor regions inherits the actor rules), and functions are
//!    classified *blocking* via summaries (direct blocking ops, propagated
//!    caller-ward to a fixpoint).
//! 3. **Check** ([`rules`], [`wiresym`]): token rules driven by the
//!    propagated regions, the `blocking-while-locked` guard dataflow, and
//!    the wire-codec symmetry pass.
//!
//! # Rules
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | `actor-panic` | actor regions (named, fenced, or inherited), all crates | no `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` — a panic kills a detached serving thread silently |
//! | `unbounded-recv` | `parmac-cluster`, plus inherited actor regions anywhere | no bare `.recv()`: every blocking wait must be deadline- or heartbeat-bounded |
//! | `raw-spawn` | all crates | no raw `thread::spawn`: named `thread::Builder` or scoped `thread::scope` only |
//! | `wallclock-determinism` | `parmac-core`, `parmac-retrieval` | no `Instant::now` / `SystemTime` in the bitwise-deterministic paths |
//! | `blocking-while-locked` | all crates | no blocking operation — direct (`recv` / `recv_timeout` / `send` / `join` / `wait` / `sleep`) or a call to a blocking-classified function — while a mutex guard is live, including `match` / `if let` / `for` scrutinee guards (edition-2021 temporary extension) |
//! | `wire-symmetry` | all crates | every `encode_wire` has `decode_wire`, every `// lint: wire-protocol` enum variant is codec'd / tag-only / local-only, every codec'd workspace type is named in a round-trip test |
//! | `stale-suppression` | all crates | an allowlist entry or inline `// lint: allow(...)` that suppresses nothing is itself reported |
//!
//! # Regions and escape hatches
//!
//! Actor regions are the bodies of functions named `*_actor` / `*_loop`,
//! spans fenced by `// lint: actor-region` … `// lint: end-actor-region`,
//! and — new in the transitive pass — bodies of functions whose every
//! non-test call site is in actor context. `// lint: non-actor` opts a
//! function out of inheritance; `// lint: blocking` / `// lint:
//! non-blocking` override the blocking classification; `// lint: wire(T)` /
//! `// lint: wire(tag-only)` / `// lint: local-only` declare a protocol
//! variant's wire form.
//!
//! # Exemptions
//!
//! * Test code — `#[cfg(test)]` items and `#[test]` functions — is exempt
//!   from every rule, as are `tests/`, `benches/`, `examples/` and `src/bin/`
//!   targets (only library sources are swept).
//! * An inline annotation `// lint: allow(rule-a, rule-b) — reason` covers
//!   its own line (trailing) or the next code line (standalone — attribute
//!   lines are skipped, so an allow above `#[inline]` reaches the item).
//! * The allowlist file (`parmac-lint.allow` at the workspace root) holds
//!   path-prefix suppressions: one `rule path-prefix` pair per line. An
//!   entry or inline allow that suppresses nothing is reported stale.

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

mod graph;
mod lexer;
mod parse;
mod rules;
mod wiresym;

pub(crate) const RULE_ACTOR_PANIC: &str = "actor-panic";
pub(crate) const RULE_UNBOUNDED_RECV: &str = "unbounded-recv";
pub(crate) const RULE_RAW_SPAWN: &str = "raw-spawn";
pub(crate) const RULE_WALLCLOCK: &str = "wallclock-determinism";
pub(crate) const RULE_BLOCKING_WHILE_LOCKED: &str = "blocking-while-locked";
pub(crate) const RULE_WIRE_SYMMETRY: &str = "wire-symmetry";
pub(crate) const RULE_STALE: &str = "stale-suppression";

/// Every rule the analyzer knows, by stable kebab-case id.
pub const RULES: [&str; 7] = [
    RULE_ACTOR_PANIC,
    RULE_UNBOUNDED_RECV,
    RULE_RAW_SPAWN,
    RULE_WALLCLOCK,
    RULE_BLOCKING_WHILE_LOCKED,
    RULE_WIRE_SYMMETRY,
    RULE_STALE,
];

/// One diagnostic: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct AllowEntry {
    rule: String,
    prefix: String,
    /// 1-based line in `parmac-lint.allow`, for stale-entry diagnostics.
    line: u32,
}

/// Path-prefix suppressions loaded from the workspace allowlist file.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `rule path-prefix` line format (`#` comments, blank lines
    /// ignored). Unknown rule names are kept verbatim so a stale entry is
    /// visible in review rather than silently dead.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(prefix)) = (parts.next(), parts.next()) {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    prefix: prefix.to_string(),
                    line: i as u32 + 1,
                });
            }
        }
        Allowlist { entries }
    }

    /// Loads `parmac-lint.allow` from `root`, or an empty list if absent.
    pub fn load(root: &Path) -> Allowlist {
        match fs::read_to_string(root.join("parmac-lint.allow")) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// Index of the first entry suppressing `(rule, rel_path)`, if any.
    fn match_entry(&self, rule: &str, rel_path: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            (e.rule == "*" || e.rule == rule) && rel_path.starts_with(e.prefix.as_str())
        })
    }
}

// ---------------------------------------------------------------------------
// Analysis driver
// ---------------------------------------------------------------------------

/// Lints one file's source. `rel_path` must be workspace-relative with
/// forward slashes — it decides which crate-scoped rules apply. The file is
/// treated as a one-file workspace, so the transitive passes see only its
/// own call graph (exactly what the fixture tests want).
pub fn lint_source(rel_path: &str, source: &str, allowlist: &Allowlist) -> Vec<Finding> {
    let files = vec![(rel_path.to_string(), source.to_string())];
    lint_files(&files, allowlist)
}

/// Lints a set of in-memory files as one workspace: all passes, allowlist
/// applied, inline stale-suppression reported. Findings sorted by path then
/// line.
pub fn lint_files(files: &[(String, String)], allowlist: &Allowlist) -> Vec<Finding> {
    lint_files_inner(files, allowlist).0
}

fn lint_files_inner(
    files: &[(String, String)],
    allowlist: &Allowlist,
) -> (Vec<Finding>, HashSet<usize>) {
    let models: Vec<parse::FileModel> = files
        .iter()
        .map(|(_, src)| parse::parse_file(src).0)
        .collect();
    let ws = graph::analyze(&models);
    let rels: Vec<String> = files.iter().map(|(r, _)| r.clone()).collect();

    let mut reporters: Vec<rules::Reporter> =
        models.iter().map(|_| rules::Reporter::default()).collect();
    for (fi, m) in models.iter().enumerate() {
        let ctx = rules::FileCtx {
            rel: &rels[fi],
            krate: crate_of(&rels[fi]),
            fi,
            m,
            ws: &ws,
        };
        rules::run_token_rules(&ctx, &models, &mut reporters[fi]);
    }
    wiresym::run(&models, &rels, &mut reporters);

    // Inline allows that suppressed nothing are themselves findings.
    let mut findings = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        let r = &mut reporters[fi];
        for (i, (line, _, rule_names)) in m.allows.iter().enumerate() {
            if !r.used_allows.contains(&i) {
                r.findings.push(Finding {
                    rule: RULE_STALE,
                    path: rels[fi].clone(),
                    line: *line,
                    message: format!(
                        "inline `lint: allow({})` suppresses nothing — the code it covered \
                         moved or was fixed; remove the annotation",
                        rule_names.join(", ")
                    ),
                });
            }
        }
        findings.append(&mut r.findings);
    }

    let mut used_entries = HashSet::new();
    findings.retain(|f| match allowlist.match_entry(f.rule, &f.path) {
        Some(i) => {
            used_entries.insert(i);
            false
        }
        None => true,
    });
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    (findings, used_entries)
}

/// `crates/<name>/...` → `<name>`; the facade's own `src/` → `parmac`.
fn crate_of(rel_path: &str) -> Option<&str> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next()
    } else if rel_path.starts_with("src/") {
        Some("parmac")
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable output: a JSON array of
/// `{"rule": …, "path": …, "line": …, "message": …}` objects.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// GitHub Actions workflow-command rendering of the same diagnostics: one
/// `::error file=…,line=…,title=…::message` annotation per finding.
pub fn render_github(findings: &[Finding]) -> String {
    let escape = |s: &str| {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    };
    findings
        .iter()
        .map(|f| {
            format!(
                "::error file={},line={},title=parmac-lint/{}::{}\n",
                f.path,
                f.line,
                f.rule,
                escape(&f.message)
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

/// Library sources the sweep covers: `crates/*/src/**.rs` (excluding
/// `src/bin/`) plus the facade's own `src/`. Tests, benches, examples and
/// binaries are exempt by construction; `vendor/` and `target/` are never
/// visited.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `src/bin/` targets are runnable tools, not library code.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`, loading `parmac-lint.allow`
/// from there. All passes run over the full file set (the call graph is
/// workspace-wide), allowlist entries that suppress nothing are reported
/// stale, and findings are sorted by path then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let allowlist = Allowlist::load(root);
    let mut files = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        files.push((rel, source));
    }
    let (mut findings, used_entries) = lint_files_inner(&files, &allowlist);
    for (i, entry) in allowlist.entries.iter().enumerate() {
        if !used_entries.contains(&i) {
            findings.push(Finding {
                rule: RULE_STALE,
                path: "parmac-lint.allow".to_string(),
                line: entry.line,
                message: format!(
                    "allowlist entry `{} {}` suppresses nothing — the findings it covered \
                     were fixed or the path moved; delete the entry",
                    entry.rule, entry.prefix
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]` — how the CLI finds the root when run via `cargo run`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_cluster(src: &str) -> Vec<Finding> {
        lint_source("crates/parmac-cluster/src/x.rs", src, &Allowlist::default())
    }

    #[test]
    fn literals_and_comments_never_fire() {
        let src = r###"
fn f() {
    let s = "rx.recv() // not code";
    let r = r#"rx.recv()"#;
    // rx.recv() in a comment
    /* rx.recv() in /* a nested */ block comment */
    let c = 'r';
    let lifetime: &'static str = s;
    let _ = (s, r, c, lifetime);
}
"###;
        assert!(lint_cluster(src).is_empty(), "{:?}", lint_cluster(src));
    }

    #[test]
    fn recv_fires_and_recv_timeout_does_not() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); let _ = rx.recv_timeout(t); }";
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unbounded-recv");
        // Same source outside parmac-cluster: clean.
        assert!(lint_source("crates/parmac-hash/src/x.rs", src, &Allowlist::default()).is_empty());
    }

    #[test]
    fn actor_region_by_name_fence_and_test_exemption() {
        let src = r#"
fn serving_actor(x: Option<u32>) {
    let _ = x.unwrap();
}
fn helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn fenced(x: Option<u32>) {
    // lint: actor-region
    let _ = x.unwrap();
    // lint: end-actor-region
    let _ = x.unwrap();
}
#[cfg(test)]
mod tests {
    fn in_test_actor(x: Option<u32>) {
        let _ = x.unwrap();
    }
}
"#;
        let findings = lint_cluster(src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 10], "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "actor-panic"));
    }

    #[test]
    fn transitive_actor_inheritance_fires_and_mixed_callers_do_not() {
        let src = r#"
fn serving_actor(x: Option<u32>) {
    deep_helper(x);
    shared(x);
    opted_out(x);
}
fn deep_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn shared(x: Option<u32>) -> u32 {
    x.unwrap()
}
// lint: non-actor
fn opted_out(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn plain_entry(x: Option<u32>) {
    shared(x);
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 8);
        assert!(findings[0].message.contains("deep_helper"));
        assert!(findings[0].message.contains("serving_actor"));
    }

    #[test]
    fn transitive_inheritance_survives_recursion() {
        // A mutually-recursive pair reachable only from the actor loop stays
        // inherited; one plain call site demotes the whole component.
        let src = r#"
fn pump_loop(x: Option<u32>) {
    ping(x, 0);
}
fn ping(x: Option<u32>, n: u32) -> u32 {
    if n > 0 { pong(x, n - 1) } else { x.unwrap() }
}
fn pong(x: Option<u32>, n: u32) -> u32 {
    ping(x, n)
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn inline_allow_suppresses_on_same_or_previous_line() {
        let src = r#"
fn serving_actor(x: Option<u32>) {
    // lint: allow(actor-panic) — invariant: always Some here
    let _ = x.unwrap();
    let _ = x.unwrap(); // lint: allow(actor-panic)
    let _ = x.unwrap();
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn standalone_allow_skips_attribute_lines() {
        // The PR-8 bug: a standalone allow above `#[inline]` must reach the
        // item it annotates, not the attribute line.
        let src = r#"
fn serving_actor(x: Option<u32>) {
    go(x);
}
// lint: allow(actor-panic) — measured: the caller guarantees Some
#[inline]
fn go(x: Option<u32>) -> u32 { x.unwrap() }
"#;
        let findings = lint_cluster(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_inline_allow_is_reported() {
        let src = r#"
fn quiet(x: u32) -> u32 {
    // lint: allow(actor-panic) — nothing here fires any more
    x + 1
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "stale-suppression");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn allowlist_file_suppresses_by_path_prefix() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }";
        let allow = Allowlist::parse("unbounded-recv crates/parmac-cluster/src/x");
        assert!(lint_source("crates/parmac-cluster/src/x.rs", src, &allow).is_empty());
        let other = Allowlist::parse("unbounded-recv crates/parmac-cluster/src/y");
        assert_eq!(
            lint_source("crates/parmac-cluster/src/x.rs", src, &other).len(),
            1
        );
    }

    #[test]
    fn guard_across_send_fires_and_scoped_guard_does_not() {
        let src = r#"
fn bad(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let _ = tx.send(*guard);
}
fn scoped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let guard = m.lock();
        *guard
    };
    let _ = tx.send(v);
}
fn dropped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let v = *guard;
    drop(guard);
    let _ = tx.send(v);
}
fn chained(m: &Mutex<Vec<u32>>, tx: &Sender<usize>) {
    let n = m.lock().len();
    let _ = tx.send(n);
}
fn deref_copy(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = *m.lock();
    let _ = tx.send(v);
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "blocking-while-locked");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn scrutinee_guard_and_transitive_blocking_fire() {
        let src = r#"
fn waits(rx: &Receiver<u32>) -> u32 {
    rx.recv_timeout(TICK).unwrap_or(0)
}
fn if_let_scrutinee(m: &Mutex<Option<u32>>, rx: &Receiver<u32>) {
    if let Some(v) = m.lock().take() {
        let _ = waits(rx) + v;
    }
}
fn through_helper(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = m.lock();
    let _ = waits(rx) + *g;
}
fn spawn_is_another_thread(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = m.lock();
    scope.spawn(move || {
        let _ = waits(rx);
    });
    let _ = *g;
}
"#;
        let findings = lint_cluster(src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![7, 12], "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "blocking-while-locked"));
    }

    #[test]
    fn non_blocking_override_silences_transitive_call() {
        let src = r#"
// lint: non-blocking
fn logs_only(rx: &Receiver<u32>) -> u32 {
    rx.recv_timeout(TICK).unwrap_or(0)
}
fn fine(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = m.lock();
    let _ = logs_only(rx) + *g;
}
"#;
        let findings = lint_cluster(src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn raw_spawn_fires_but_builder_and_scope_do_not() {
        let src = r#"
fn f() {
    std::thread::spawn(|| {});
    thread::spawn(worker);
    let _ = thread::Builder::new();
    thread::scope(|s| { s.spawn(|| {}); });
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "raw-spawn"));
    }

    #[test]
    fn wallclock_fires_only_in_deterministic_crates() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let core = lint_source("crates/parmac-core/src/x.rs", src, &Allowlist::default());
        assert_eq!(core.len(), 2, "{core:?}");
        assert!(
            lint_source("crates/parmac-cluster/src/x.rs", src, &Allowlist::default()).is_empty()
        );
    }

    #[test]
    fn render_json_escapes_and_shapes() {
        let findings = vec![Finding {
            rule: "actor-panic",
            path: "crates/x/src/a.rs".to_string(),
            line: 7,
            message: "say \"no\" to\npanics\\".to_string(),
        }];
        let json = render_json(&findings);
        assert_eq!(
            json,
            "[\n  {\"rule\":\"actor-panic\",\"path\":\"crates/x/src/a.rs\",\"line\":7,\
             \"message\":\"say \\\"no\\\" to\\npanics\\\\\"}\n]"
        );
        assert_eq!(render_json(&[]), "[]");
        let gh = render_github(&findings);
        assert!(
            gh.starts_with("::error file=crates/x/src/a.rs,line=7,title=parmac-lint/actor-panic::")
        );
        assert!(gh.contains("%0A"), "{gh}");
    }
}
