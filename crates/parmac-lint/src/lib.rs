//! `parmac-lint`: a workspace concurrency-invariant analyzer.
//!
//! `clippy` cannot see the invariants the serving substrate
//! (`crates/parmac-cluster/src/server.rs`) rests on: detached actor threads
//! must never panic, every blocking wait must be deadline- or
//! heartbeat-bounded, long-lived threads must come from the sanctioned named
//! spawn sites, bitwise-deterministic training paths must not read wall
//! clocks, and mutex guards must not be held across channel sends. This crate
//! is a hand-rolled Rust *token* scanner (offline — no syn, no crates.io)
//! that walks every non-vendor crate's library sources and enforces those
//! rules with `file:line` diagnostics.
//!
//! # Rules
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | `actor-panic` | actor regions, all crates | no `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` inside actor-loop or scan-worker regions — a panic there kills a detached serving thread silently |
//! | `unbounded-recv` | `parmac-cluster` | no bare `.recv()`: every blocking wait must use `recv_timeout` (deadline- or heartbeat-bounded), per the PR-7 bounded-shutdown contract |
//! | `raw-spawn` | all crates | no raw `thread::spawn`: long-lived threads come from the sanctioned sites (`thread::Builder` with a name, or scoped `thread::scope`), so every thread is identifiable in a hang dump |
//! | `wallclock-determinism` | `parmac-core`, `parmac-retrieval` | no `Instant::now` / `SystemTime` in the bitwise-deterministic training/retrieval paths |
//! | `lock-across-send` | all crates | no mutex guard held across a channel `send`/`try_send` (coarse lexical scope check) — holding a lock while handing work to another thread is the classic priority-inversion/deadlock shape |
//!
//! # Regions
//!
//! `actor-panic` only applies inside *actor regions*: the body of any
//! function whose name ends in `_actor` or `_loop`, plus any span fenced by
//! `// lint: actor-region` … `// lint: end-actor-region` comments.
//!
//! # Exemptions
//!
//! * Test code — `#[cfg(test)]` items and `#[test]` functions — is exempt
//!   from every rule, as are `tests/`, `benches/`, `examples/` and `src/bin/`
//!   targets (only library sources are swept).
//! * An inline annotation `// lint: allow(rule-a, rule-b) — reason` on the
//!   offending line, or on the line directly above it, suppresses those
//!   rules for that line. Always state the reason.
//! * The allowlist file (`parmac-lint.allow` at the workspace root) holds
//!   path-prefix suppressions: one `rule path-prefix` pair per line, `#`
//!   comments allowed. Use it for whole files that are out of a rule's
//!   jurisdiction; prefer inline annotations for single sites.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule the analyzer knows, by stable kebab-case id.
pub const RULES: [&str; 5] = [
    "actor-panic",
    "unbounded-recv",
    "raw-spawn",
    "wallclock-determinism",
    "lock-across-send",
];

/// One diagnostic: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// Path-prefix suppressions loaded from the workspace allowlist file.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: Vec<(String, String)>, // (rule or "*", path prefix)
}

impl Allowlist {
    /// Parses the `rule path-prefix` line format (`#` comments, blank lines
    /// ignored). Unknown rule names are kept verbatim so a stale entry is
    /// visible in review rather than silently dead.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(prefix)) = (parts.next(), parts.next()) {
                entries.push((rule.to_string(), prefix.to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Loads `parmac-lint.allow` from `root`, or an empty list if absent.
    pub fn load(root: &Path) -> Allowlist {
        match fs::read_to_string(root.join("parmac-lint.allow")) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    fn suppresses(&self, rule: &str, rel_path: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, prefix)| (r == "*" || r == rule) && rel_path.starts_with(prefix.as_str()))
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
}

#[derive(Debug, Clone)]
enum Directive {
    RegionStart(u32),
    RegionEnd(u32),
    Allow {
        line: u32,
        rules: Vec<String>,
        /// A standalone `// lint: allow(...)` line covers the *next* line; a
        /// trailing comment after code covers only its own line.
        standalone: bool,
    },
}

/// Tokenises Rust source: identifiers and punctuation survive; string/char/
/// numeric literals, comments and lifetimes are consumed (so a `.recv()`
/// inside a string or doc comment never fires), and `// lint:` directives are
/// collected on the side.
fn lex(source: &str) -> (Vec<Token>, Vec<Directive>) {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    fn is_ident_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_'
    }
    fn is_ident_cont(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            // Line comment. Plain `//` comments may carry lint directives;
            // doc comments (`///`, `//!`) never do, so examples in docs
            // cannot open phantom regions.
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            let is_doc = start < bytes.len() && (bytes[start] == b'/' || bytes[start] == b'!');
            if !is_doc {
                let text = source[start..j].trim();
                if let Some(rest) = text.strip_prefix("lint:") {
                    let standalone = tokens.last().is_none_or(|t: &Token| t.line != line);
                    parse_directive(rest.trim(), line, standalone, &mut directives);
                }
            }
            i = j;
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            // Block comment, nesting handled.
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if is_ident_start(b) {
            let start = i;
            while i < bytes.len() && is_ident_cont(bytes[i]) {
                i += 1;
            }
            let ident = &source[start..i];
            // String-literal prefixes: r"", r#""#, b"", br"", b'c'.
            let next = bytes.get(i).copied();
            match (ident, next) {
                ("r" | "br" | "b" | "rb", Some(b'"')) | ("r" | "br" | "rb", Some(b'#')) => {
                    skip_string_literal(bytes, &mut i, &mut line, ident.contains('r'));
                }
                ("b", Some(b'\'')) => {
                    i += 1; // consume the quote; skip_char expects to be past it
                    skip_char_literal(bytes, &mut i, &mut line);
                }
                _ => tokens.push(Token {
                    tok: Tok::Ident(ident.to_string()),
                    line,
                }),
            }
        } else if b.is_ascii_digit() {
            // Numeric literal (coarse: digits, underscores, type suffixes,
            // hex/oct/bin digits, an optional fraction).
            i += 1;
            while i < bytes.len() && (is_ident_cont(bytes[i])) {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
            }
        } else if b == b'"' {
            skip_string_literal(bytes, &mut i, &mut line, false);
        } else if b == b'\'' {
            // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
            if i + 1 < bytes.len()
                && bytes[i + 1] != b'\\'
                && is_ident_start(bytes[i + 1])
                && bytes.get(i + 2).copied() != Some(b'\'')
            {
                // Lifetime: consume the quote and the identifier.
                i += 1;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
            } else {
                i += 1;
                skip_char_literal(bytes, &mut i, &mut line);
            }
        } else {
            tokens.push(Token {
                tok: Tok::Punct(b as char),
                line,
            });
            i += 1;
        }
    }
    (tokens, directives)
}

fn parse_directive(text: &str, line: u32, standalone: bool, directives: &mut Vec<Directive>) {
    if text.starts_with("actor-region") {
        directives.push(Directive::RegionStart(line));
    } else if text.starts_with("end-actor-region") {
        directives.push(Directive::RegionEnd(line));
    } else if let Some(rest) = text.strip_prefix("allow(") {
        if let Some(close) = rest.find(')') {
            let rules = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            directives.push(Directive::Allow {
                line,
                rules,
                standalone,
            });
        }
    }
}

/// Consumes a (possibly raw) string literal starting at `*i` (which points at
/// the opening `"` or the first `#` of a raw string).
fn skip_string_literal(bytes: &[u8], i: &mut usize, line: &mut u32, raw: bool) {
    let mut hashes = 0usize;
    while raw && *i < bytes.len() && bytes[*i] == b'#' {
        hashes += 1;
        *i += 1;
    }
    if *i < bytes.len() && bytes[*i] == b'"' {
        *i += 1;
    }
    while *i < bytes.len() {
        let b = bytes[*i];
        if b == b'\n' {
            *line += 1;
            *i += 1;
        } else if !raw && b == b'\\' {
            *i = (*i + 2).min(bytes.len());
        } else if b == b'"' {
            *i += 1;
            if !raw || hashes == 0 {
                return;
            }
            let mut seen = 0usize;
            while seen < hashes && *i < bytes.len() && bytes[*i] == b'#' {
                seen += 1;
                *i += 1;
            }
            if seen == hashes {
                return;
            }
        } else {
            *i += 1;
        }
    }
}

/// Consumes a char literal body; `*i` points at the first byte after the
/// opening `'`.
fn skip_char_literal(bytes: &[u8], i: &mut usize, line: &mut u32) {
    while *i < bytes.len() {
        let b = bytes[*i];
        if b == b'\\' {
            *i = (*i + 2).min(bytes.len());
        } else if b == b'\'' {
            *i += 1;
            return;
        } else {
            if b == b'\n' {
                *line += 1;
            }
            *i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Regions (actor fences, named-fn bodies, test items)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct LineSet {
    ranges: Vec<(u32, u32)>,
}

impl LineSet {
    fn add(&mut self, start: u32, end: u32) {
        self.ranges.push((start, end));
    }
    fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RegionKind {
    ActorFn,
    TestItem,
}

/// Walks the token stream matching braces to turn "the body of this item"
/// into line ranges: functions named `*_actor` / `*_loop` become actor
/// regions, items behind `#[cfg(test)]` / `#[test]` become test regions.
fn item_regions(tokens: &[Token]) -> (LineSet, LineSet) {
    let mut actor = LineSet::default();
    let mut test = LineSet::default();
    let mut depth = 0usize;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    // Regions armed by a preceding attribute / fn name, latched onto the next
    // `{` at the current nesting (a `;` first means a body-less item).
    let mut pending: Vec<RegionKind> = Vec::new();
    let mut open: Vec<(RegionKind, usize, u32)> = Vec::new(); // (kind, body depth, start line)

    let mut idx = 0usize;
    while idx < tokens.len() {
        match &tokens[idx].tok {
            Tok::Ident(name) if name == "fn" => {
                if let Some(Token {
                    tok: Tok::Ident(fn_name),
                    ..
                }) = tokens.get(idx + 1)
                {
                    if fn_name.ends_with("_actor") || fn_name.ends_with("_loop") {
                        pending.push(RegionKind::ActorFn);
                    }
                }
            }
            Tok::Punct('#') => {
                // Attribute: `#[...]` — scan the bracket group for `test`.
                if let Some(Token {
                    tok: Tok::Punct('['),
                    ..
                }) = tokens.get(idx + 1)
                {
                    let mut j = idx + 2;
                    let mut attr_depth = 1usize;
                    let mut saw_test = false;
                    while j < tokens.len() && attr_depth > 0 {
                        match &tokens[j].tok {
                            Tok::Punct('[') => attr_depth += 1,
                            Tok::Punct(']') => attr_depth -= 1,
                            Tok::Ident(w) if w == "test" => saw_test = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if saw_test {
                        pending.push(RegionKind::TestItem);
                    }
                    idx = j;
                    continue;
                }
            }
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren = paren.saturating_sub(1),
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket = bracket.saturating_sub(1),
            Tok::Punct(';') if paren == 0 && bracket == 0 && depth == open_floor(&open) => {
                // A body-less item (trait method, `#[cfg(test)] use ...;`)
                // consumes the armed regions.
                pending.clear();
            }
            Tok::Punct('{') => {
                depth += 1;
                for kind in pending.drain(..) {
                    open.push((kind, depth, tokens[idx].line));
                }
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while let Some(&(kind, body_depth, start)) = open.last() {
                    if body_depth > depth {
                        open.pop();
                        let set = match kind {
                            RegionKind::ActorFn => &mut actor,
                            RegionKind::TestItem => &mut test,
                        };
                        set.add(start, tokens[idx].line);
                    } else {
                        break;
                    }
                }
            }
            _ => {}
        }
        idx += 1;
    }
    // Unclosed regions (truncated file): extend to the end.
    for (kind, _, start) in open {
        let set = match kind {
            RegionKind::ActorFn => &mut actor,
            RegionKind::TestItem => &mut test,
        };
        set.add(start, u32::MAX);
    }
    (actor, test)
}

/// The brace depth at which the innermost open region's body sits — armed
/// regions are only disarmed by a `;` at their own item level, not by
/// semicolons inside a deeper body.
fn open_floor(open: &[(RegionKind, usize, u32)]) -> usize {
    open.last().map_or(0, |&(_, d, _)| d)
}

fn fence_regions(directives: &[Directive]) -> LineSet {
    let mut set = LineSet::default();
    let mut start: Option<u32> = None;
    for d in directives {
        match d {
            Directive::RegionStart(line) => {
                if start.is_none() {
                    start = Some(*line);
                }
            }
            Directive::RegionEnd(line) => {
                if let Some(s) = start.take() {
                    set.add(s, *line);
                }
            }
            Directive::Allow { .. } => {}
        }
    }
    if let Some(s) = start {
        set.add(s, u32::MAX);
    }
    set
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    rel: &'a str,
    krate: Option<&'a str>,
    tokens: Vec<Token>,
    actor: LineSet,
    fence: LineSet,
    test: LineSet,
    allows: Vec<(u32, bool, Vec<String>)>,
}

impl FileCtx<'_> {
    fn in_actor_region(&self, line: u32) -> bool {
        self.actor.contains(line) || self.fence.contains(line)
    }
    fn in_test(&self, line: u32) -> bool {
        self.test.contains(line)
    }
    /// Inline allow: a trailing `// lint: allow(...)` covers its own line, a
    /// standalone one covers the line directly below it.
    fn allowed_inline(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|(l, standalone, rules)| {
            let covers = if *standalone {
                *l + 1 == line
            } else {
                *l == line
            };
            covers && rules.iter().any(|r| r == rule || r == "*")
        })
    }

    fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => Some(name.as_str()),
            _ => None,
        }
    }
    fn punct_at(&self, idx: usize) -> Option<char> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }
    /// `.name(` — a method call on something.
    fn is_method_call(&self, idx: usize, name: &str) -> bool {
        self.ident_at(idx) == Some(name)
            && idx > 0
            && self.punct_at(idx - 1) == Some('.')
            && self.punct_at(idx + 1) == Some('(')
    }
    /// `name!` — a macro invocation.
    fn is_macro(&self, idx: usize, name: &str) -> bool {
        self.ident_at(idx) == Some(name) && self.punct_at(idx + 1) == Some('!')
    }
    /// `a :: b` at `idx` (idx is `a`).
    fn is_path_pair(&self, idx: usize, a: &str, b: &str) -> bool {
        self.ident_at(idx) == Some(a)
            && self.punct_at(idx + 1) == Some(':')
            && self.punct_at(idx + 2) == Some(':')
            && self.ident_at(idx + 3) == Some(b)
    }
}

/// Lints one file's source. `rel_path` must be workspace-relative with
/// forward slashes — it decides which crate-scoped rules apply.
pub fn lint_source(rel_path: &str, source: &str, allowlist: &Allowlist) -> Vec<Finding> {
    let (tokens, directives) = lex(source);
    let (actor, test) = item_regions(&tokens);
    let fence = fence_regions(&directives);
    let allows = directives
        .iter()
        .filter_map(|d| match d {
            Directive::Allow {
                line,
                rules,
                standalone,
            } => Some((*line, *standalone, rules.clone())),
            _ => None,
        })
        .collect();
    let ctx = FileCtx {
        rel: rel_path,
        krate: crate_of(rel_path),
        tokens,
        actor,
        fence,
        test,
        allows,
    };

    let mut findings = Vec::new();
    rule_actor_panic(&ctx, &mut findings);
    rule_unbounded_recv(&ctx, &mut findings);
    rule_raw_spawn(&ctx, &mut findings);
    rule_wallclock(&ctx, &mut findings);
    rule_lock_across_send(&ctx, &mut findings);
    findings.retain(|f| !allowlist.suppresses(f.rule, rel_path));
    findings.sort_by_key(|f| f.line);
    findings
}

/// `crates/<name>/...` → `<name>`; the facade's own `src/` → `parmac`.
fn crate_of(rel_path: &str) -> Option<&str> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        rest.split('/').next()
    } else if rel_path.starts_with("src/") {
        Some("parmac")
    } else {
        None
    }
}

fn push(
    ctx: &FileCtx<'_>,
    findings: &mut Vec<Finding>,
    rule: &'static str,
    line: u32,
    msg: String,
) {
    if ctx.in_test(line) || ctx.allowed_inline(rule, line) {
        return;
    }
    findings.push(Finding {
        rule,
        path: ctx.rel.to_string(),
        line,
        message: msg,
    });
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn rule_actor_panic(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for idx in 0..ctx.tokens.len() {
        let line = ctx.tokens[idx].line;
        if !ctx.in_actor_region(line) {
            continue;
        }
        if ctx.is_method_call(idx, "unwrap") || ctx.is_method_call(idx, "expect") {
            let name = ctx.ident_at(idx).unwrap_or_default();
            push(
                ctx,
                findings,
                "actor-panic",
                line,
                format!(
                    "`.{name}()` inside an actor region: a panic here kills a detached \
                     serving thread silently — return a degraded result or bail instead"
                ),
            );
        } else if PANIC_MACROS.iter().any(|m| ctx.is_macro(idx, m)) {
            let name = ctx.ident_at(idx).unwrap_or_default();
            push(
                ctx,
                findings,
                "actor-panic",
                line,
                format!("`{name}!` inside an actor region: actor threads must not panic"),
            );
        }
    }
}

fn rule_unbounded_recv(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.krate != Some("parmac-cluster") {
        return;
    }
    for idx in 0..ctx.tokens.len() {
        if ctx.is_method_call(idx, "recv") && ctx.punct_at(idx + 2) == Some(')') {
            push(
                ctx,
                findings,
                "unbounded-recv",
                ctx.tokens[idx].line,
                "bare `.recv()` in parmac-cluster: every blocking wait must be bounded \
                 (`recv_timeout` with a deadline, or the `waits::recv_bounded` heartbeat)"
                    .to_string(),
            );
        }
    }
}

fn rule_raw_spawn(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for idx in 0..ctx.tokens.len() {
        if ctx.is_path_pair(idx, "thread", "spawn") {
            push(
                ctx,
                findings,
                "raw-spawn",
                ctx.tokens[idx].line,
                "raw `thread::spawn`: long-lived threads must use a sanctioned spawn site \
                 (`thread::Builder` with a name, or scoped `thread::scope`)"
                    .to_string(),
            );
        }
    }
}

fn rule_wallclock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !matches!(ctx.krate, Some("parmac-core") | Some("parmac-retrieval")) {
        return;
    }
    for idx in 0..ctx.tokens.len() {
        let line = ctx.tokens[idx].line;
        if ctx.is_path_pair(idx, "Instant", "now") {
            push(
                ctx,
                findings,
                "wallclock-determinism",
                line,
                "`Instant::now` in a bitwise-deterministic training path: wall-clock reads \
                 must not influence training (annotate report-only timing explicitly)"
                    .to_string(),
            );
        } else if ctx.ident_at(idx) == Some("SystemTime") {
            push(
                ctx,
                findings,
                "wallclock-determinism",
                line,
                "`SystemTime` in a bitwise-deterministic training path".to_string(),
            );
        }
    }
}

#[derive(Debug)]
struct GuardBinding {
    name: String,
    depth: usize,
    line: u32,
}

/// Coarse lexical check: a `let <name> = …​.lock();` binding is treated as a
/// live mutex guard until its block closes or an explicit `drop(<name>)`;
/// any `.send(` / `.try_send(` while one is live is flagged. Chained
/// temporaries (`m.lock().len()`) and deref copies (`let x = *m.lock();`)
/// are not guards and are ignored.
fn rule_lock_across_send(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let mut depth = 0usize;
    let mut guards: Vec<GuardBinding> = Vec::new();
    let mut idx = 0usize;
    while idx < ctx.tokens.len() {
        let line = ctx.tokens[idx].line;
        match &ctx.tokens[idx].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(name) if name == "drop" && ctx.punct_at(idx + 1) == Some('(') => {
                if let (Some(dropped), Some(')')) = (ctx.ident_at(idx + 2), ctx.punct_at(idx + 3)) {
                    guards.retain(|g| g.name != dropped);
                }
            }
            Tok::Ident(name) if name == "let" => {
                if let Some(binding) = guard_binding(ctx, idx, depth) {
                    guards.push(binding);
                }
            }
            Tok::Ident(name)
                if (name == "send" || name == "try_send") && ctx.is_method_call(idx, name) =>
            {
                if let Some(guard) = guards.last() {
                    push(
                        ctx,
                        findings,
                        "lock-across-send",
                        line,
                        format!(
                            "channel `{name}` while the mutex guard `{}` (taken at line {}) \
                             is still held — release or `drop()` the guard before sending",
                            guard.name, guard.line
                        ),
                    );
                }
            }
            _ => {}
        }
        idx += 1;
    }
}

/// Recognises `let [mut] <name> [: T] = <expr ending in .lock()>;` starting
/// at the `let` token. Returns the binding if the statement binds a guard.
fn guard_binding(ctx: &FileCtx<'_>, let_idx: usize, depth: usize) -> Option<GuardBinding> {
    let mut j = let_idx + 1;
    if ctx.ident_at(j) == Some("mut") {
        j += 1;
    }
    let name = ctx.ident_at(j)?.to_string();
    // Find the `=` of the initialiser (skipping a `: Type` annotation, whose
    // generics may nest `< … >` but never contain a bare `=`).
    let mut eq = j + 1;
    loop {
        match ctx.punct_at(eq) {
            Some('=') => break,
            Some(';') | None => return None,
            _ => eq += 1,
        }
    }
    // A deref copy (`let x = *m.lock();`) releases the temporary guard at the
    // end of the statement — not a held guard.
    if ctx.punct_at(eq + 1) == Some('*') {
        return None;
    }
    // Scan to the terminating `;` at bracket level 0 relative to the
    // statement; the binding is a guard iff the initialiser *ends* with
    // `.lock()` (a further method chain consumes the temporary instead).
    let mut k = eq + 1;
    let mut nest = 0usize;
    while k < ctx.tokens.len() {
        match ctx.punct_at(k) {
            Some('(') | Some('[') | Some('{') => nest += 1,
            Some(')') | Some(']') | Some('}') => {
                // A closing brace below statement level ends the statement
                // (e.g. a block expression tail without `;`).
                if nest == 0 {
                    return None;
                }
                nest -= 1;
            }
            Some(';') if nest == 0 => {
                // Initialiser ends at k: check for `… . lock ( ) ;`.
                if k >= 4
                    && ctx.is_method_call(k - 3, "lock")
                    && ctx.punct_at(k - 1) == Some(')')
                    && ctx.punct_at(k - 2) == Some('(')
                {
                    return Some(GuardBinding {
                        name,
                        depth,
                        line: ctx.tokens[let_idx].line,
                    });
                }
                return None;
            }
            _ => {}
        }
        k += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

/// Library sources the sweep covers: `crates/*/src/**.rs` (excluding
/// `src/bin/`) plus the facade's own `src/`. Tests, benches, examples and
/// binaries are exempt by construction; `vendor/` and `target/` are never
/// visited.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `src/bin/` targets are runnable tools, not library code.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`, loading `parmac-lint.allow`
/// from there. Findings are sorted by path then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let allowlist = Allowlist::load(root);
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source, &allowlist));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]` — how the CLI finds the root when run via `cargo run`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_cluster(src: &str) -> Vec<Finding> {
        lint_source("crates/parmac-cluster/src/x.rs", src, &Allowlist::default())
    }

    #[test]
    fn literals_and_comments_never_fire() {
        let src = r###"
fn f() {
    let s = "rx.recv() // not code";
    let r = r#"rx.recv()"#;
    // rx.recv() in a comment
    /* rx.recv() in /* a nested */ block comment */
    let c = 'r';
    let lifetime: &'static str = s;
    let _ = (s, r, c, lifetime);
}
"###;
        assert!(lint_cluster(src).is_empty(), "{:?}", lint_cluster(src));
    }

    #[test]
    fn recv_fires_and_recv_timeout_does_not() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); let _ = rx.recv_timeout(t); }";
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unbounded-recv");
        // Same source outside parmac-cluster: clean.
        assert!(lint_source("crates/parmac-hash/src/x.rs", src, &Allowlist::default()).is_empty());
    }

    #[test]
    fn actor_region_by_name_fence_and_test_exemption() {
        let src = r#"
fn serving_actor(x: Option<u32>) {
    let _ = x.unwrap();
}
fn helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn fenced(x: Option<u32>) {
    // lint: actor-region
    let _ = x.unwrap();
    // lint: end-actor-region
    let _ = x.unwrap();
}
#[cfg(test)]
mod tests {
    fn in_test_actor(x: Option<u32>) {
        let _ = x.unwrap();
    }
}
"#;
        let findings = lint_cluster(src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 10], "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "actor-panic"));
    }

    #[test]
    fn inline_allow_suppresses_on_same_or_previous_line() {
        let src = r#"
fn serving_actor(x: Option<u32>) {
    // lint: allow(actor-panic) — invariant: always Some here
    let _ = x.unwrap();
    let _ = x.unwrap(); // lint: allow(actor-panic)
    let _ = x.unwrap();
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn allowlist_file_suppresses_by_path_prefix() {
        let src = "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }";
        let allow = Allowlist::parse("unbounded-recv crates/parmac-cluster/src/x");
        assert!(lint_source("crates/parmac-cluster/src/x.rs", src, &allow).is_empty());
        let other = Allowlist::parse("unbounded-recv crates/parmac-cluster/src/y");
        assert_eq!(
            lint_source("crates/parmac-cluster/src/x.rs", src, &other).len(),
            1
        );
    }

    #[test]
    fn guard_across_send_fires_and_scoped_guard_does_not() {
        let src = r#"
fn bad(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let _ = tx.send(*guard);
}
fn scoped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let guard = m.lock();
        *guard
    };
    let _ = tx.send(v);
}
fn dropped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let v = *guard;
    drop(guard);
    let _ = tx.send(v);
}
fn chained(m: &Mutex<Vec<u32>>, tx: &Sender<usize>) {
    let n = m.lock().len();
    let _ = tx.send(n);
}
fn deref_copy(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = *m.lock();
    let _ = tx.send(v);
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock-across-send");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn raw_spawn_fires_but_builder_and_scope_do_not() {
        let src = r#"
fn f() {
    std::thread::spawn(|| {});
    thread::spawn(worker);
    let _ = thread::Builder::new();
    thread::scope(|s| { s.spawn(|| {}); });
}
"#;
        let findings = lint_cluster(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "raw-spawn"));
    }

    #[test]
    fn wallclock_fires_only_in_deterministic_crates() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let core = lint_source("crates/parmac-core/src/x.rs", src, &Allowlist::default());
        assert_eq!(core.len(), 2, "{core:?}");
        assert!(
            lint_source("crates/parmac-cluster/src/x.rs", src, &Allowlist::default()).is_empty()
        );
    }
}
