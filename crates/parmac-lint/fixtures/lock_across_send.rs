// Fixture for the `lock-across-send` rule: a bound mutex guard still live at
// a channel `send`/`try_send` is flagged; scoped, dropped, chained-temporary
// and deref-copy patterns are all clean.

fn bad_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let _ = tx.send(*guard); // FIRE: lock-across-send
}

fn bad_try_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let mut guard = m.lock();
    *guard += 1;
    let _ = tx.try_send(*guard); // FIRE: lock-across-send
}

fn scoped_guard(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let guard = m.lock();
        *guard
    };
    let _ = tx.send(v);
}

fn dropped_guard(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let v = *guard;
    drop(guard);
    let _ = tx.send(v);
}

fn chained_temporary(m: &Mutex<Vec<u32>>, tx: &Sender<usize>) {
    // The temporary guard dies at the end of this statement.
    let n = m.lock().len();
    let _ = tx.send(n);
}

fn deref_copy(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = *m.lock();
    let _ = tx.send(v);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_exempt(m: &Mutex<u32>, tx: &Sender<u32>) {
        let guard = m.lock();
        let _ = tx.send(*guard);
    }
}
