// Fixture for the `wire-symmetry` rule, all three checks:
//   1. pairing — `encode_wire` without `decode_wire` (or vice versa);
//   2. protocol coverage — every variant of a `// lint: wire-protocol`
//      enum is codec'd, declared `wire(T)` / `wire(tag-only)`, or
//      `local-only`;
//   3. round-trip coverage — every codec'd workspace type is named in a
//      round-trip test.

struct Good(u32);

struct Untested(u32);

struct NotCodecd(u32);

struct OneSided(u32);

impl WireCode for Good {
    fn encode_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn decode_wire(buf: &[u8]) -> Option<Good> {
        Some(Good(0))
    }
}

impl WireCode for Untested { // FIRE: wire-symmetry
    fn encode_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn decode_wire(buf: &[u8]) -> Option<Untested> {
        Some(Untested(0))
    }
}

impl OneSided { // FIRE: wire-symmetry
    fn encode_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
}

// lint: wire-protocol
enum FixtureMsg {
    Payload(Good),
    Carry(Sender<u32>), // FIRE: wire-symmetry
    Named(NotCodecd), // FIRE: wire-symmetry
    Declared(Sender<u32>), // lint: wire(Good)
    // lint: wire(Missing)
    Phantom(Receiver<u32>), // FIRE: wire-symmetry
    Ping, // lint: wire(tag-only)
    Wedge(Duration), // lint: local-only — chaos injection, never crosses
    Shutdown,
}

#[cfg(test)]
mod tests {
    #[test]
    fn good_round_trips() {
        let mut buf = Vec::new();
        Good(7).encode_wire(&mut buf);
        let back = Good::decode_wire(&buf);
        assert!(back.is_some());
    }
}
