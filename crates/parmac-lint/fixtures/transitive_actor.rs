// Fixture for transitive actor-region inheritance: a helper reachable ONLY
// from actor regions inherits the actor rules through the call graph —
// including through recursion — while one non-actor call site anywhere
// demotes it, `// lint: non-actor` opts it out, and test-only callers do
// not count as call sites.

fn pump_actor(x: Option<u32>, v: Vec<u32>) {
    let _ = step_one(x);
    let _ = shared_helper(x);
    let _ = opted_out(x);
    descend(v, 0);
}

fn step_one(x: Option<u32>) -> u32 {
    step_two(x)
}

fn step_two(x: Option<u32>) -> u32 {
    x.unwrap() // FIRE: actor-panic
}

fn descend(v: Vec<u32>, depth: usize) -> usize {
    if depth < v.len() {
        descend(v, depth + 1)
    } else {
        v.first().copied().expect("nonempty") as usize // FIRE: actor-panic
    }
}

fn shared_helper(x: Option<u32>) -> u32 {
    // Also called from `plain_entry`, so it does NOT inherit.
    x.unwrap()
}

// lint: non-actor
fn opted_out(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn plain_entry(x: Option<u32>) -> u32 {
    shared_helper(x)
}

fn test_only_helper(x: Option<u32>) -> u32 {
    // Only called from test code below: no non-test call site, no
    // inheritance.
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exercises_helpers() {
        let _ = super::test_only_helper(Some(1));
        let _ = super::step_one(Some(1));
    }
}
