// Fixture for the `raw-spawn` rule: raw `thread::spawn` is flagged in any
// crate; named builders and scoped threads are the sanctioned spawn sites.

fn raw() {
    std::thread::spawn(|| {}); // FIRE: raw-spawn
    let handle = thread::spawn(worker); // FIRE: raw-spawn
    let _ = handle;
}

fn sanctioned() {
    let _ = std::thread::Builder::new()
        .name("parmac-scan-0".into())
        .spawn(|| {});
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}

fn worker() {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_spawns_freely() {
        let h = std::thread::spawn(|| 1);
        assert_eq!(h.join().unwrap(), 1);
    }
}
