// Fixture for the `unbounded-recv` rule. Linted as if it lived at
// `crates/parmac-cluster/src/fixture.rs` — the rule only applies there.

fn mailbox(rx: &Receiver<u32>) {
    let _ = rx.recv(); // FIRE: unbounded-recv
    while let Ok(msg) = rx.recv() { // FIRE: unbounded-recv
        let _ = msg;
    }
}

fn bounded(rx: &Receiver<u32>, tick: Duration) {
    // Deadline-bounded waits are the sanctioned form.
    let _ = rx.recv_timeout(tick);
    let _ = rx.try_recv();
}

// A method *named* recv but taking arguments is not the blocking mpsc wait.
fn custom(sock: &Socket, buf: &mut [u8]) {
    let _ = sock.recv(buf);
}

// Mentions in strings and comments never fire: rx.recv()
fn in_literals() {
    let s = "rx.recv()";
    let r = r#"rx.recv()"#;
    let _ = (s, r);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_block_forever() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
