// Fixture for the `blocking-while-locked` rule: no blocking operation —
// direct, or a call to a blocking-classified function — while a mutex guard
// is live. Guards come from `let` bindings AND from `match` / `if let` /
// `while let` / `for` scrutinees (edition-2021 temporaries live for the
// whole block). `try_send` is not blocking and is clean; work handed to
// `spawn(...)` runs on another thread and neither blocks nor holds guards.

fn bad_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let _ = tx.send(*guard); // FIRE: blocking-while-locked
}

fn waits(rx: &Receiver<u32>) -> u32 {
    rx.recv_timeout(TICK).unwrap_or(0)
}

fn bad_through_helper(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let guard = m.lock();
    let _ = waits(rx) + *guard; // FIRE: blocking-while-locked
}

fn bad_scrutinee_join(handle: &Mutex<Option<JoinHandle<()>>>) {
    if let Some(h) = handle.lock().take() {
        let _ = h.join(); // FIRE: blocking-while-locked
    }
}

fn ok_try_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let mut guard = m.lock();
    *guard += 1;
    let _ = tx.try_send(*guard);
}

fn scoped_guard(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let guard = m.lock();
        *guard
    };
    let _ = tx.send(v);
}

fn dropped_guard(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    let v = *guard;
    drop(guard);
    let _ = tx.send(v);
}

fn chained_temporary(m: &Mutex<Vec<u32>>, tx: &Sender<usize>) {
    // The temporary guard dies at the end of this statement.
    let n = m.lock().len();
    let _ = tx.send(n);
}

fn scrutinee_body_only_returns(m: &Mutex<VecDeque<u32>>) -> Option<u32> {
    if let Some(v) = m.lock().pop_front() {
        return Some(v);
    }
    None
}

fn spawned_work_is_another_thread(m: &Mutex<u32>, rx: &Receiver<u32>, s: &Scope) {
    let guard = m.lock();
    s.spawn(move || {
        let _ = waits(rx);
    });
    let _ = *guard;
}

// lint: non-blocking
fn best_effort_notify(tx: &Sender<u32>) {
    let _ = tx.send(1);
}

fn override_respected(m: &Mutex<u32>, tx: &Sender<u32>) {
    let guard = m.lock();
    best_effort_notify(tx);
    let _ = *guard;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_exempt(m: &Mutex<u32>, tx: &Sender<u32>) {
        let guard = m.lock();
        let _ = tx.send(*guard);
    }
}
