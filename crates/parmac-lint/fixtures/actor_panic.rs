// Fixture for the `actor-panic` rule. Lines carrying a FIRE marker must be
// flagged; everything else must stay clean. Linted as if it lived at
// `crates/parmac-cluster/src/fixture.rs`.

fn serving_actor(x: Option<u32>) {
    let _ = x.unwrap(); // FIRE: actor-panic
    let _ = x.expect("present"); // FIRE: actor-panic
    if x.is_none() {
        panic!("boom"); // FIRE: actor-panic
    }
    match x {
        Some(_) => {}
        None => unreachable!(), // FIRE: actor-panic
    }
}

fn admission_loop(x: Option<u32>) {
    let _ = x.unwrap(); // FIRE: actor-panic
    let _ = x.unwrap_or_default(); // `unwrap_or_default` is not `unwrap`
}

// A helper outside any actor region: panicking is legal (caller's problem).
fn plain_helper(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn fenced_scan_worker(x: Option<u32>) {
    // lint: actor-region
    let _ = x.unwrap(); // FIRE: actor-panic
    todo!() // FIRE: actor-panic
    // lint: end-actor-region
}

fn after_fence(x: Option<u32>) {
    let _ = x.unwrap(); // outside the fence again
}

#[cfg(test)]
mod tests {
    // Test code is exempt even when the fn name matches the actor pattern.
    fn in_test_actor(x: Option<u32>) {
        let _ = x.unwrap();
    }

    #[test]
    fn asserts_freely() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
