// Fixture for the `wallclock-determinism` rule. Linted as if it lived at
// `crates/parmac-core/src/fixture.rs` — the rule covers the
// bitwise-deterministic crates (`parmac-core`, `parmac-retrieval`) only.

fn timed_step() {
    let t0 = Instant::now(); // FIRE: wallclock-determinism
    let wall = SystemTime::now(); // FIRE: wallclock-determinism
    let _ = (t0, wall);
}

fn deterministic_step(seed: u64) -> u64 {
    // Durations that arrive as *data* are fine; only clock reads are banned.
    let budget = Duration::from_millis(seed);
    budget.as_millis() as u64
}

fn annotated_report_timing() -> Duration {
    // lint: allow(wallclock-determinism) — report-only timing, never feeds training
    let t0 = Instant::now();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
