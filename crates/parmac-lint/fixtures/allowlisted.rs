// Fixture exercising both suppression mechanisms: every violation below is
// covered either by an inline `// lint: allow(...)` annotation or by the
// allowlist file entry the test supplies — so the expected finding count is
// exactly zero.

fn serving_actor(x: Option<u32>) {
    // lint: allow(actor-panic) — fixture: invariant guarantees Some
    let _ = x.unwrap();
    let _ = x.expect("covered inline"); // lint: allow(actor-panic)
}

fn mailbox(rx: &Receiver<u32>) {
    // Suppressed by the allowlist-file entry `unbounded-recv <this path>`.
    let _ = rx.recv();
}

fn raw_but_annotated() {
    // lint: allow(raw-spawn) — fixture: demonstrating the annotation
    std::thread::spawn(|| {});
}
