//! Fixture-driven rule tests plus the live-workspace self-check.
//!
//! Each fixture under `fixtures/` carries `// FIRE: rule-id` markers on the
//! exact lines a rule must flag. The test lexes those markers out of the raw
//! text and demands the engine's findings match them 1:1 — both directions:
//! a finding without a marker is a false positive, a marker without a
//! finding is a false negative.

use std::path::{Path, PathBuf};

use parmac_lint::{lint_source, lint_workspace, Allowlist, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Extracts `(line, rule)` expectations from `// FIRE: rule-id` markers.
fn fire_markers(source: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(pos) = line.find("// FIRE:") {
            let rule = line[pos + "// FIRE:".len()..].trim().to_string();
            out.push((i as u32 + 1, rule));
        }
    }
    out
}

fn check_fixture(name: &str, rel_path: &str, allowlist: &Allowlist) {
    let source = fixture(name);
    let expected = fire_markers(&source);
    let got: Vec<(u32, String)> = lint_source(rel_path, &source, allowlist)
        .into_iter()
        .map(|f: Finding| (f.line, f.rule.to_string()))
        .collect();
    assert_eq!(
        got, expected,
        "fixture {name}: findings (left) diverge from FIRE markers (right)"
    );
}

#[test]
fn actor_panic_fixture() {
    check_fixture(
        "actor_panic.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn unbounded_recv_fixture() {
    check_fixture(
        "unbounded_recv.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn raw_spawn_fixture() {
    check_fixture(
        "raw_spawn.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn wallclock_fixture() {
    check_fixture(
        "wallclock.rs",
        "crates/parmac-core/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn lock_across_send_fixture() {
    check_fixture(
        "lock_across_send.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn allowlisted_fixture_is_silent() {
    // Inline annotations cover the panics and the spawn; the file entry
    // covers the bare recv. Nothing may survive.
    let allow = Allowlist::parse(
        "# fixture allowlist\nunbounded-recv crates/parmac-cluster/src/fixture.rs\n",
    );
    check_fixture(
        "allowlisted.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &allow,
    );
}

#[test]
fn allowlisted_fixture_fires_without_the_file_entry() {
    // Sanity: with only inline annotations the bare recv DOES fire — the
    // file entry is load-bearing, not decorative.
    let source = fixture("allowlisted.rs");
    let findings = lint_source(
        "crates/parmac-cluster/src/fixture.rs",
        &source,
        &Allowlist::default(),
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "unbounded-recv");
}

/// The live workspace must be lint-clean: this is the same sweep the CI step
/// runs, executed as a test so `cargo test` alone catches regressions.
#[test]
fn workspace_self_check() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = parmac_lint::find_workspace_root(&manifest).expect("workspace root");
    let findings = lint_workspace(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
