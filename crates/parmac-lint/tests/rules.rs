//! Fixture-driven rule tests plus the live-workspace self-check.
//!
//! Each fixture under `fixtures/` carries `// FIRE: rule-id` markers on the
//! exact lines a rule must flag. The test lexes those markers out of the raw
//! text and demands the engine's findings match them 1:1 — both directions:
//! a finding without a marker is a false positive, a marker without a
//! finding is a false negative.

use std::path::{Path, PathBuf};

use parmac_lint::{lint_source, lint_workspace, Allowlist, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Extracts `(line, rule)` expectations from `// FIRE: rule-id` markers.
fn fire_markers(source: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(pos) = line.find("// FIRE:") {
            let rule = line[pos + "// FIRE:".len()..].trim().to_string();
            out.push((i as u32 + 1, rule));
        }
    }
    out
}

fn check_fixture(name: &str, rel_path: &str, allowlist: &Allowlist) {
    let source = fixture(name);
    let expected = fire_markers(&source);
    let got: Vec<(u32, String)> = lint_source(rel_path, &source, allowlist)
        .into_iter()
        .map(|f: Finding| (f.line, f.rule.to_string()))
        .collect();
    assert_eq!(
        got, expected,
        "fixture {name}: findings (left) diverge from FIRE markers (right)"
    );
}

#[test]
fn actor_panic_fixture() {
    check_fixture(
        "actor_panic.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn unbounded_recv_fixture() {
    check_fixture(
        "unbounded_recv.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn raw_spawn_fixture() {
    check_fixture(
        "raw_spawn.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn wallclock_fixture() {
    check_fixture(
        "wallclock.rs",
        "crates/parmac-core/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn blocking_while_locked_fixture() {
    check_fixture(
        "blocking_while_locked.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn transitive_actor_fixture() {
    check_fixture(
        "transitive_actor.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn wire_symmetry_fixture() {
    check_fixture(
        "wire_symmetry.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &Allowlist::default(),
    );
}

#[test]
fn allowlisted_fixture_is_silent() {
    // Inline annotations cover the panics and the spawn; the file entry
    // covers the bare recv. Nothing may survive.
    let allow = Allowlist::parse(
        "# fixture allowlist\nunbounded-recv crates/parmac-cluster/src/fixture.rs\n",
    );
    check_fixture(
        "allowlisted.rs",
        "crates/parmac-cluster/src/fixture.rs",
        &allow,
    );
}

#[test]
fn allowlisted_fixture_fires_without_the_file_entry() {
    // Sanity: with only inline annotations the bare recv DOES fire — the
    // file entry is load-bearing, not decorative.
    let source = fixture("allowlisted.rs");
    let findings = lint_source(
        "crates/parmac-cluster/src/fixture.rs",
        &source,
        &Allowlist::default(),
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "unbounded-recv");
}

/// End-to-end through the binary: a throwaway mini-workspace with one
/// violation must produce well-formed `--format json` output and exit 1;
/// `--format github` must produce an `::error` annotation on the same line.
#[test]
fn cli_json_and_github_formats() {
    let dir = std::env::temp_dir().join(format!("parmac-lint-e2e-{}", std::process::id()));
    let src_dir = dir.join("crates/parmac-cluster/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f(rx: &Receiver<u32>) {\n    let _ = rx.recv();\n}\n",
    )
    .expect("source");

    let run = |fmt: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_parmac-lint"))
            .args(["--format", fmt])
            .arg(&dir)
            .output()
            .expect("run parmac-lint")
    };

    let json = run("json");
    assert_eq!(json.status.code(), Some(1), "{json:?}");
    let stdout = String::from_utf8(json.stdout).expect("utf8");
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "{stdout}"
    );
    assert!(
        trimmed.contains(
            "\"rule\":\"unbounded-recv\",\"path\":\"crates/parmac-cluster/src/bad.rs\",\"line\":2"
        ),
        "{stdout}"
    );

    let gh = run("github");
    assert_eq!(gh.status.code(), Some(1), "{gh:?}");
    let stdout = String::from_utf8(gh.stdout).expect("utf8");
    assert!(
        stdout.starts_with(
            "::error file=crates/parmac-cluster/src/bad.rs,line=2,title=parmac-lint/unbounded-recv::"
        ),
        "{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The live workspace must be lint-clean: this is the same sweep the CI step
/// runs, executed as a test so `cargo test` alone catches regressions.
#[test]
fn workspace_self_check() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = parmac_lint::find_workspace_root(&manifest).expect("workspace root");
    let findings = lint_workspace(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
