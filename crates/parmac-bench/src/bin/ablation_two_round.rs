//! Ablation (§4.2): running `e` epochs with one communication round per epoch
//! vs the two-round scheme that performs all `e` passes within each machine.
//!
//! Expected shape: the two-round scheme sends roughly `(e+1)/2` times fewer
//! messages per W step with only a small effect on the final objective
//! (shuffling across machines is reduced, §4.2).

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{ParMacTrainer, SimBackend};

fn main() {
    let n = 1000;
    let bits = 16;
    let iterations = 6;
    let epochs = 4;
    let exp = build_experiment(Suite::Sift10k, n, 41);
    println!("# Ablation — communication rounds per W step (e = {epochs}, P = 8)");

    let mut rows = Vec::new();
    for &(two_round, label) in &[
        (false, "one round per epoch"),
        (true, "two rounds total (§4.2)"),
    ] {
        let ba = scaled_ba_config(Suite::Sift10k, bits, iterations, 41).with_epochs(epochs);
        let cfg = scaled_parmac_config(ba, 8).with_two_round_communication(two_round);
        let mut trainer =
            ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
        let messages: usize = report.w_steps.iter().map(|w| w.messages_sent).sum();
        let comm_time: f64 = report
            .w_steps
            .iter()
            .map(|w| w.timings.simulated_comm)
            .sum();
        rows.push(vec![
            label.to_string(),
            messages.to_string(),
            cell(comm_time, 0),
            cell(report.mac.final_ba_error, 1),
            cell(report.mac.curve.best_precision().unwrap_or(0.0), 4),
        ]);
    }
    print_table(
        "messages, simulated communication time and quality",
        &[
            "scheme",
            "messages",
            "sim comm time",
            "final E_BA",
            "best precision",
        ],
        &rows,
    );
}
