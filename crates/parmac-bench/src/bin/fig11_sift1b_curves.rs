//! Figure 11 and the §8.4 table: SIFT-1B learning curves with linear vs RBF
//! (kernel) hash functions, on the distributed and shared-memory cost models.
//!
//! The RBF hash expands the inputs with a fixed Gaussian RBF feature map
//! (random centres from the training set, median-heuristic bandwidth) and
//! trains the ordinary binary autoencoder on the kernel values, exactly as
//! §8.4 describes ("the MAC algorithm does not change except that it operates
//! on an m-dimensional input vector of kernel values"). Recall@R is computed
//! against the Euclidean ground truth in the *original* feature space.

use parmac_bench::{cell, print_table, scaled_parmac_config, Suite};
use parmac_cluster::CostModel;
use parmac_core::{BaConfig, MuSchedule, ParMacTrainer, SimBackend};
use parmac_linalg::Mat;
use parmac_optim::RbfFeatureMap;
use parmac_retrieval::{euclidean_knn, recall_at_r};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Setup {
    train: Mat,
    queries: Mat,
    ground_truth: Vec<Vec<usize>>,
}

fn setup(n: usize, seed: u64) -> Setup {
    let data = Suite::Sift1b.generate(n, seed);
    let train = data.train_features();
    let queries = data.query_features();
    let ground_truth = euclidean_knn(&train, &queries, 1);
    Setup {
        train,
        queries,
        ground_truth,
    }
}

fn run(
    s: &Setup,
    features_train: &Mat,
    features_queries: &Mat,
    bits: usize,
    machines: usize,
    cost: CostModel,
    recall_r: usize,
) -> (Vec<f64>, f64, f64) {
    let ba = BaConfig::new(bits)
        .with_mu_schedule(MuSchedule::sift1b().value(0).max(0.005), 2.0, 6)
        .with_epochs(2)
        .with_seed(19);
    let cfg = scaled_parmac_config(ba, machines);
    let mut trainer = ParMacTrainer::new(cfg, features_train, SimBackend::new(cost));
    let mut recalls = Vec::new();
    // Record recall after every MAC iteration by stepping manually through the
    // µ schedule (mirrors the learning curves of fig. 11).
    let schedule: Vec<f64> = ba.mu_schedule.iter().collect();
    let mut simulated = 0.0;
    for (i, &mu) in schedule.iter().enumerate() {
        let w = trainer.w_step(features_train, i);
        let (_, z) = trainer.z_step(features_train, mu);
        simulated += w.timings.simulated + z.timings.simulated;
        let db_codes = trainer.model().encode(features_train);
        let q_codes = trainer.model().encode(features_queries);
        recalls.push(recall_at_r(&db_codes, &q_codes, &s.ground_truth, recall_r));
    }
    let final_recall = *recalls.last().unwrap_or(&0.0);
    (recalls, final_recall, simulated)
}

fn main() {
    let n = 1500;
    let bits = 32; // scaled down from the paper's 64 bits
    let recall_r = 20; // scaled from the paper's R = 100
    let s = setup(n, 19);
    println!("# Figure 11 / §8.4 table — SIFT-1B-like, linear vs RBF hash (N = {n}, L = {bits})");

    // RBF expansion (scaled from the paper's m = 2000 centres).
    let mut rng = SmallRng::seed_from_u64(19);
    let m_centres = 200;
    let bandwidth = RbfFeatureMap::median_bandwidth(&s.train, 200, &mut rng);
    let map = RbfFeatureMap::from_data(&s.train, m_centres, bandwidth, &mut rng);
    let train_rbf = map.transform(&s.train);
    let queries_rbf = map.transform(&s.queries);

    let mut table_rows = Vec::new();
    for &(cost, system) in &[
        (CostModel::distributed(), "distributed"),
        (CostModel::shared_memory(), "shared-memory"),
    ] {
        for &(label, tr, qu) in &[
            ("linear", &s.train, &s.queries),
            ("RBF", &train_rbf, &queries_rbf),
        ] {
            let (recalls, final_recall, sim_time) = run(&s, tr, qu, bits, 8, cost, recall_r);
            let curve: Vec<Vec<String>> = recalls
                .iter()
                .enumerate()
                .map(|(i, r)| vec![(i + 1).to_string(), cell(*r, 4)])
                .collect();
            print_table(
                &format!("{label} hash, {system} cost model — recall@R={recall_r} per iteration"),
                &["iter", "recall"],
                &curve,
            );
            table_rows.push(vec![
                label.to_string(),
                system.to_string(),
                cell(final_recall, 4),
                cell(sim_time, 0),
            ]);
        }
    }
    print_table(
        "§8.4 summary table (scaled)",
        &["hash function", "system", "recall@R", "simulated time"],
        &table_rows,
    );
}
