//! The §8.4 table: SIFT-1B recall@R and training time for the linear and
//! kernel (RBF) hash functions on the distributed and shared-memory systems.
//!
//! Expected shape (paper, scaled): the RBF hash reaches higher recall than the
//! linear one on both systems; the shared-memory cost model finishes ~3–4×
//! faster than the distributed one; recall is unaffected by the system (only
//! the runtime changes).

use parmac_bench::{cell, print_table, scaled_parmac_config, Suite};
use parmac_cluster::CostModel;
use parmac_core::{BaConfig, ParMacTrainer, SimBackend};
use parmac_linalg::Mat;
use parmac_optim::RbfFeatureMap;
use parmac_retrieval::{euclidean_knn, recall_at_r};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn train_and_eval(
    train: &Mat,
    queries: &Mat,
    ground_truth: &[Vec<usize>],
    bits: usize,
    cost: CostModel,
    recall_r: usize,
) -> (f64, f64) {
    let ba = BaConfig::new(bits)
        .with_mu_schedule(0.005, 2.0, 6)
        .with_epochs(2)
        .with_seed(29);
    let cfg = scaled_parmac_config(ba, 8);
    let mut trainer = ParMacTrainer::new(cfg, train, SimBackend::new(cost));
    let report = trainer.run(train);
    let recall = recall_at_r(
        &trainer.model().encode(train),
        &trainer.model().encode(queries),
        ground_truth,
        recall_r,
    );
    (recall, report.total_simulated_time)
}

fn main() {
    let n = 1200;
    let bits = 32;
    let recall_r = 20;
    let data = Suite::Sift1b.generate(n, 29);
    let train = data.train_features();
    let queries = data.query_features();
    let ground_truth = euclidean_knn(&train, &queries, 1);

    let mut rng = SmallRng::seed_from_u64(29);
    let bandwidth = RbfFeatureMap::median_bandwidth(&train, 200, &mut rng);
    let map = RbfFeatureMap::from_data(&train, 150, bandwidth, &mut rng);
    let train_rbf = map.transform(&train);
    let queries_rbf = map.transform(&queries);

    println!("# §8.4 table — SIFT-1B-like (scaled): recall@R={recall_r} and simulated time");
    let mut rows = Vec::new();
    for &(cost, system) in &[
        (CostModel::distributed(), "distributed"),
        (CostModel::shared_memory(), "shared-memory"),
    ] {
        let (lin_recall, lin_time) =
            train_and_eval(&train, &queries, &ground_truth, bits, cost, recall_r);
        let (rbf_recall, rbf_time) = train_and_eval(
            &train_rbf,
            &queries_rbf,
            &ground_truth,
            bits,
            cost,
            recall_r,
        );
        rows.push(vec![
            "linear SVM".into(),
            system.into(),
            cell(lin_recall, 4),
            cell(lin_time, 0),
        ]);
        rows.push(vec![
            "kernel (RBF) SVM".into(),
            system.into(),
            cell(rbf_recall, 4),
            cell(rbf_time, 0),
        ]);
    }
    print_table(
        "hash function vs system",
        &["hash function", "system", "recall@R", "simulated time"],
        &rows,
    );
}
