//! Figure 9: effect of minibatch shuffling in the W step.
//!
//! Same setting as fig. 8 but comparing runs with and without within-machine
//! minibatch shuffling (and with the cross-machine topology re-randomisation
//! of §4.3). The paper's observation: shuffling generally reduces E_Q and
//! increases precision with no increase in runtime.

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{ParMacTrainer, SimBackend};

fn main() {
    let n = 1200;
    let bits = 16;
    let iterations = 8;
    let exp = build_experiment(Suite::Cifar, n, 13);
    println!("# Figure 9 — effect of shuffling (CIFAR-like, N = {n}, L = {bits})");

    let mut rows = Vec::new();
    for &(within, cross, label) in &[
        (false, false, "no shuffling"),
        (true, false, "within-machine shuffling"),
        (true, true, "within + cross-machine shuffling"),
    ] {
        for &p in &[1usize, 32] {
            let ba = scaled_ba_config(Suite::Cifar, bits, iterations, 13).with_epochs(2);
            let cfg = scaled_parmac_config(ba, p)
                .with_within_machine_shuffling(within)
                .with_cross_machine_shuffling(cross);
            let mut trainer =
                ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
            let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
            let last = report.mac.curve.last().unwrap();
            rows.push(vec![
                label.to_string(),
                p.to_string(),
                cell(last.quadratic_penalty, 1),
                cell(last.ba_error, 1),
                cell(report.mac.curve.best_precision().unwrap_or(0.0), 4),
                cell(report.total_simulated_time, 0),
            ]);
        }
    }
    print_table(
        "final objective / precision with and without shuffling",
        &[
            "variant",
            "P",
            "final E_Q",
            "final E_BA",
            "best precision",
            "sim_time",
        ],
        &rows,
    );
}
