//! Figure 13: time spent on communication vs computation as a function of how
//! a fixed pool of P = 16 processors is split across nodes.
//!
//! The paper allocates 16 MPI processes as 1×16 (one node, pure shared
//! memory) up to 16×1 (sixteen nodes, pure distributed) and measures that the
//! computation time stays constant while the communication time grows as more
//! hops cross the (slow) network. The reproduction models a ring of 16
//! machines grouped into nodes: a hop inside a node costs the shared-memory
//! per-submodel communication time, a hop between nodes the network one.

use parmac_bench::{cell, print_table};
use parmac_cluster::CostModel;

fn main() {
    let p = 16usize;
    let n = 20_000usize; // points (paper: 20K subset of SIFT-1B)
    let m = 128usize; // effective submodels (L = 64 → 2L)
    let epochs = 2usize;
    // Per-hop submodel transfer costs: a shared-memory hop is an order of
    // magnitude cheaper than a network hop (fig. 13's 1×16 vs 16×1 endpoints:
    // communication below computation within a node, several times above it
    // across the network).
    let intra = 50.0;
    let cross = 500.0;
    let t_w = CostModel::distributed().w_compute_per_point;

    println!(
        "# Figure 13 — communication vs computation per node layout (P = {p}, N = {n}, M = {m})"
    );
    let mut rows = Vec::new();
    for &nodes in &[1usize, 2, 4, 8, 16] {
        let procs_per_node = p / nodes;
        // Per epoch, every submodel makes P hops; of those, `nodes` hops cross
        // a node boundary (one per node), the rest stay inside a node. The
        // final distribution lap adds P−1 hops with the same mix.
        let hops_per_submodel = (epochs * p + (p - 1)) as f64;
        let cross_fraction = if nodes == 1 {
            0.0
        } else {
            nodes as f64 / p as f64
        };
        let comm_per_hop = cross_fraction * cross + (1.0 - cross_fraction) * intra;
        let comm_time = m as f64 * hops_per_submodel * comm_per_hop;
        // Computation is independent of the layout: every submodel processes
        // every point e times, spread over P machines working in parallel.
        let comp_time =
            m as f64 * epochs as f64 * (n as f64 / p as f64) * t_w * (m as f64 / p as f64).ceil()
                / (m as f64 / p as f64);
        rows.push(vec![
            format!("{nodes}x{procs_per_node}"),
            cell(comm_time, 0),
            cell(comp_time, 0),
            cell(comm_time / (comm_time + comp_time), 3),
        ]);
    }
    print_table(
        "simulated time units per W step",
        &[
            "nodes x procs",
            "communication",
            "computation",
            "comm fraction",
        ],
        &rows,
    );
}
