//! Figure 4: the "typical" theoretical speedup curve.
//!
//! Parameters straight from the paper's caption: N = 10⁶ points, M = 512
//! submodels, e = 1 epoch, t_r^W = 1, t_r^Z = 5, t_c^W = 10³. The curve is
//! near-perfect up to P = M, keeps rising to its maximum at P*₁ > M and
//! decreases afterwards.

use parmac_bench::{cell, print_table};
use parmac_core::SpeedupModel;

fn main() {
    let model = SpeedupModel::figure4();
    let (rho1, rho2, rho) = model.rho();
    println!("# Figure 4 — typical theoretical speedup curve");
    println!("# N=1e6, M=512, e=1, tWr=1, tZr=5, tWc=1e3");
    println!("# rho1={rho1:.4} rho2={rho2:.4} rho={rho:.4}");

    let ps: Vec<usize> = vec![
        1, 2, 4, 8, 16, 32, 64, 128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024, 1131, 1280,
        1536, 1792, 2000,
    ];
    let rows: Vec<Vec<String>> = ps
        .iter()
        .map(|&p| {
            vec![
                p.to_string(),
                cell(model.speedup(p), 2),
                cell(p as f64, 0),
                if model.n_submodels.is_multiple_of(p) {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    print_table(
        "S(P) vs P",
        &["P", "S(P)", "perfect", "M divisible by P"],
        &rows,
    );

    let (p_opt, s_opt) = model.optimal_machines();
    println!(
        "maximum speedup S* = {s_opt:.1} at P* = {p_opt:.0} (M = {})",
        model.n_submodels
    );
}
