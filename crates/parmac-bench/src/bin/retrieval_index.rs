//! Sublinear retrieval benchmark (perf-trajectory entry 5,
//! `BENCH_retrieval.json`).
//!
//! Three measurements, printed as JSON to stdout:
//!
//! 1. **Exact multi-probe vs full scan**: the prefix index in exact mode
//!    ([`PrefixIndex::topk_batched`] with `probe_budget = None`) against the
//!    PR-5 cache-blocked full scan
//!    ([`parmac_retrieval::shard_hamming_topk_batched`]) over a clustered
//!    near-duplicate shard of ≥ 50k 64-bit codes — the acceptance bar is
//!    ≥ 1.3× qps with bitwise-identical answers. The workload is clustered
//!    (center codes plus a small per-bit flip probability) because prefix
//!    pruning only pays when queries resemble the database; on uniform
//!    random codes every bucket is equidistant and exact multi-probe
//!    degenerates to a full scan — by design, never by surprise.
//! 2. **Recall-vs-qps curve**: budgeted mode at several probe budgets, each
//!    point reporting recall against the exact answer and measured qps.
//! 3. **SIMD popcount microbench**: the dispatched
//!    [`popcount::block_hamming`] kernel against the scalar reference on the
//!    same block (on AVX2 hosts this is vector-vs-scalar; under
//!    `PARMAC_FORCE_SCALAR` both time the scalar path).
//!
//! Run with `cargo run --release -p parmac-bench --bin retrieval_index`;
//! pass `--smoke` for the bounded fast mode CI runs on every push (smaller
//! shard, exactness and recall-monotonicity asserted, timings not judged).

use parmac_bench::host_info_json;
use parmac_hash::{popcount, BinaryCodes};
use parmac_retrieval::{shard_hamming_topk_batched, PrefixIndex};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::{Duration, Instant};

/// Times `f` `reps` times and returns the fastest run (the usual
/// noise-resistant estimator on a shared container).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Random cluster centers for the synthetic code distribution.
fn random_centers(n_centers: usize, bits: usize, rng: &mut SmallRng) -> Vec<Vec<bool>> {
    (0..n_centers)
        .map(|_| (0..bits).map(|_| rng.next_u64() & 1 == 1).collect())
        .collect()
}

/// Clustered near-duplicate codes: each code is one of the shared `centers`
/// with every bit flipped independently with probability `flip` — the code
/// distribution a trained hash function produces on clustered data (§8: real
/// image features are heavily clustered; that is what makes hashing work at
/// all). Database and queries must draw from the *same* centers, or queries
/// are uniform relative to the database and prefix pruning has nothing to
/// prune.
fn clustered_codes(n: usize, centers: &[Vec<bool>], flip: f64, rng: &mut SmallRng) -> BinaryCodes {
    let rows: Vec<Vec<bool>> = (0..n)
        .map(|_| {
            let center = &centers[rng.gen_range(0..centers.len())];
            center
                .iter()
                .map(|&b| if rng.gen_bool(flip) { !b } else { b })
                .collect()
        })
        .collect();
    BinaryCodes::from_bools(&rows)
}

/// Fraction of the exact top-k pairs present in the budgeted answer,
/// averaged over queries.
fn mean_recall(budgeted: &[Vec<(u32, usize)>], exact: &[Vec<(u32, usize)>]) -> f64 {
    let mut total = 0.0;
    for (b, e) in budgeted.iter().zip(exact) {
        if e.is_empty() {
            total += 1.0;
        } else {
            let hit = e.iter().filter(|pair| b.contains(pair)).count();
            total += hit as f64 / e.len() as f64;
        }
    }
    total / exact.len().max(1) as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 8_000 } else { 50_000 };
    let bits = 64usize;
    let batch = 64usize;
    let k = 10usize;
    let reps = if smoke { 3 } else { 7 };
    let mut rng = SmallRng::seed_from_u64(7);

    // Database and queries from the same clustered distribution — shared
    // centers, so queries actually resemble database points.
    let centers = random_centers(64, bits, &mut rng);
    let database = clustered_codes(n, &centers, 0.02, &mut rng);
    let queries = clustered_codes(batch, &centers, 0.02, &mut rng);
    let ids: Vec<usize> = (0..n).collect();
    let index = PrefixIndex::build(&database, &ids);
    eprintln!(
        "index: {} codes, prefix {} bits, {} of {} buckets occupied",
        index.len(),
        index.prefix_bits(),
        index.occupied_buckets(),
        index.n_buckets()
    );

    // Correctness before speed: exact mode must equal the full scan bitwise.
    let exact = index.topk_batched(&queries, k, None);
    let full = shard_hamming_topk_batched(&database, &ids, &queries, k);
    assert_eq!(exact, full, "exact multi-probe diverged from the full scan");

    // Phase 1: exact multi-probe vs the PR-5 blocked full scan.
    let t_index = best_of(reps, || index.topk_batched(&queries, k, None));
    let t_full = best_of(reps, || {
        shard_hamming_topk_batched(&database, &ids, &queries, k)
    });
    let speedup = t_full.as_secs_f64() / t_index.as_secs_f64().max(1e-12);
    let qps_exact = batch as f64 / t_index.as_secs_f64().max(1e-12);
    let qps_full = batch as f64 / t_full.as_secs_f64().max(1e-12);
    eprintln!("exact multi-probe {qps_exact:.0} qps vs full scan {qps_full:.0} qps: {speedup:.2}x");

    // Phase 2: recall-vs-qps at increasing probe budgets.
    let budgets = [1usize, 4, 16, 64];
    let mut curve = Vec::new();
    let mut last_recall = -1.0f64;
    for &budget in &budgets {
        let answers = index.topk_batched(&queries, k, Some(budget));
        let recall = mean_recall(&answers, &exact);
        let t = best_of(reps, || index.topk_batched(&queries, k, Some(budget)));
        let qps = batch as f64 / t.as_secs_f64().max(1e-12);
        eprintln!("budget {budget}: recall {recall:.4}, {qps:.0} qps");
        assert!(
            recall >= last_recall,
            "recall must be monotone in the probe budget ({recall} after {last_recall})"
        );
        last_recall = recall;
        curve.push(format!(
            "{{\"probe_budget\": {budget}, \"recall\": {recall:.4}, \"qps\": {qps:.1}}}"
        ));
    }

    // Phase 3: SIMD popcount microbench on the shard's packed words.
    let words = database.as_words().to_vec();
    let wpc = database.words_per_code();
    let query_words: Vec<u64> = (0..wpc).map(|_| rng.next_u64()).collect();
    let mut out = vec![0u32; n];
    let mut check = vec![0u32; n];
    popcount::block_hamming(&words, &query_words, &mut out);
    popcount::block_hamming_scalar(&words, &query_words, &mut check);
    assert_eq!(out, check, "SIMD and scalar popcount disagreed");
    let t_dispatch = best_of(reps.max(5), || {
        popcount::block_hamming(&words, &query_words, &mut out)
    });
    let t_scalar = best_of(reps.max(5), || {
        popcount::block_hamming_scalar(&words, &query_words, &mut check)
    });
    let popcount_speedup = t_scalar.as_secs_f64() / t_dispatch.as_secs_f64().max(1e-12);
    eprintln!(
        "popcount ({}): dispatched {} ns vs scalar {} ns: {popcount_speedup:.2}x",
        popcount::simd_backend(),
        t_dispatch.as_nanos(),
        t_scalar.as_nanos()
    );

    if smoke {
        eprintln!("retrieval index smoke: PASS (exactness + recall monotonicity held)");
    }

    println!("{{");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"host\": {},", host_info_json());
    println!(
        "  \"workload\": {{\"db\": {n}, \"bits\": {bits}, \"batch\": {batch}, \"k\": {k}, \
         \"centers\": 64, \"flip\": 0.02, \"prefix_bits\": {}, \"occupied_buckets\": {}}},",
        index.prefix_bits(),
        index.occupied_buckets()
    );
    println!(
        "  \"exact_vs_full_scan\": {{\"full_scan_us\": {}, \"multi_probe_us\": {}, \
         \"full_scan_qps\": {qps_full:.1}, \"multi_probe_qps\": {qps_exact:.1}, \
         \"speedup\": {speedup:.2}}},",
        t_full.as_micros(),
        t_index.as_micros()
    );
    println!("  \"recall_vs_qps\": [");
    println!("    {}", curve.join(",\n    "));
    println!("  ],");
    println!(
        "  \"popcount\": {{\"backend\": \"{}\", \"dispatched_ns\": {}, \"scalar_ns\": {}, \
         \"speedup\": {popcount_speedup:.2}}}",
        popcount::simd_backend(),
        t_dispatch.as_nanos(),
        t_scalar.as_nanos()
    );
    println!("}}");
}
