//! Sustained-throughput serving benchmark (perf-trajectory entry 4,
//! `BENCH_serving.json`).
//!
//! Two measurements, both printed as JSON to stdout:
//!
//! 1. **Kernel**: the batched, cache-blocked top-k scan
//!    ([`parmac_retrieval::hamming_knn`], which routes through
//!    `shard_hamming_topk_batched`) against the PR-2 per-query heap scan
//!    (`parmac_retrieval::search::reference`) at a 64-query batch over 50k
//!    codes — the acceptance bar is ≥ 2×.
//! 2. **Serving**: a closed-loop sustained-qps drive of the
//!    `ServerBackend`'s `QueryRouter` *while training runs*, comparing the
//!    PR-4 single-actor per-query path (`knn`, one fan-out per query, one
//!    scan thread per machine) against the batched multi-worker path
//!    (`knn_admitted` through the bounded admission queue, several scan
//!    workers per machine). Reports queries/s and p50/p99 call latency, plus
//!    the shed count — every shed query is accounted for
//!    (`answered + shed == submitted`).
//!
//! Run with `cargo run --release -p parmac-bench --bin serving_sustained`;
//! pass `--smoke` for the bounded fast mode CI runs on every push (smaller
//! database, fewer MAC iterations, invariants asserted).

use parmac_cluster::{AdmissionConfig, QueryRouter, ServerBackend};
use parmac_core::{BaConfig, ParMacConfig, ParMacTrainer};
use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac_hash::{BinaryCodes, HashFunction, LinearHash};
use parmac_linalg::Mat;
use parmac_retrieval::{hamming_knn, search::reference};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One serving variant's closed-loop measurements.
struct ServingRun {
    label: &'static str,
    queries_answered: u64,
    queries_shed: u64,
    wall: Duration,
    p50_us: u128,
    p99_us: u128,
    train_wall: Duration,
}

impl ServingRun {
    fn qps(&self) -> f64 {
        self.queries_answered as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"queries_answered\": {}, \"queries_shed\": {}, \
             \"wall_s\": {:.3}, \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"train_wall_s\": {:.3}}}",
            self.label,
            self.queries_answered,
            self.queries_shed,
            self.wall.as_secs_f64(),
            self.qps(),
            self.p50_us,
            self.p99_us,
            self.train_wall.as_secs_f64()
        )
    }
}

fn percentile(sorted: &[u128], pct: usize) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

/// Times `f` `reps` times and returns the fastest run (the usual
/// noise-resistant estimator on a shared container).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Phase 1: the batched blocked kernel vs the PR-2 per-query heap scan.
fn kernel_comparison(smoke: bool) -> (f64, String) {
    let n = if smoke { 10_000 } else { 50_000 };
    let batch = 64usize;
    let k = 10usize;
    let reps = if smoke { 3 } else { 7 };
    let mut rng = SmallRng::seed_from_u64(42);
    let hash = LinearHash::random(64, 128, &mut rng);
    let database = hash.encode(&Mat::random_normal(n, 128, &mut rng));
    let queries = hash.encode(&Mat::random_normal(batch, 128, &mut rng));
    // Correctness before speed: both kernels must agree bitwise.
    let batched = hamming_knn(&database, &queries, k);
    assert_eq!(
        batched,
        reference::per_query_heap_knn(&database, &queries, k),
        "batched kernel diverged from the PR-2 reference"
    );
    let t_batched = best_of(reps, || hamming_knn(&database, &queries, k));
    let t_reference = best_of(reps, || {
        reference::per_query_heap_knn(&database, &queries, k)
    });
    let speedup = t_reference.as_secs_f64() / t_batched.as_secs_f64().max(1e-12);
    let json = format!(
        "{{\"batch\": {batch}, \"db\": {n}, \"k\": {k}, \
         \"per_query_heap_us\": {}, \"batched_blocked_us\": {}, \"speedup\": {speedup:.2}}}",
        t_reference.as_micros(),
        t_batched.as_micros()
    );
    (speedup, json)
}

/// Drives `client_threads` closed-loop clients against `router` while a
/// ParMAC training runs, then checks post-training exactness.
#[allow(clippy::too_many_arguments)]
fn serving_run(
    label: &'static str,
    backend: ServerBackend,
    router: QueryRouter,
    train: &Mat,
    cfg: ParMacConfig,
    query_batch: usize,
    client_threads: usize,
    admitted: bool,
) -> ServingRun {
    let mut trainer = ParMacTrainer::new(cfg, train, backend);
    let query_rows: Vec<usize> = (0..query_batch).map(|i| (i * 13) % train.rows()).collect();
    let queries = Arc::new(trainer.model().encode(&train.select_rows(&query_rows)));
    let k = 10usize;
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let (latencies, answered, shed, train_wall) = std::thread::scope(|scope| {
        // The PR-4 shape sends one query per call; build those single-query
        // batches once, outside every timed window, so both arms time only
        // the serving path itself.
        let singles: Arc<Vec<BinaryCodes>> = Arc::new(
            (0..queries.len())
                .map(|q| {
                    let row: Vec<bool> = (0..queries.n_bits()).map(|b| queries.bit(q, b)).collect();
                    BinaryCodes::from_bools(&[row])
                })
                .collect(),
        );
        let clients: Vec<_> = (0..client_threads)
            .map(|_| {
                let router = router.clone();
                let queries = Arc::clone(&queries);
                let singles = Arc::clone(&singles);
                let done = &done;
                scope.spawn(move || {
                    let mut latencies: Vec<u128> = Vec::new();
                    let (mut answered, mut shed) = (0u64, 0u64);
                    while !done.load(Ordering::Acquire) {
                        if admitted {
                            let call = Instant::now();
                            match router.knn_admitted(Arc::clone(&queries), k) {
                                Ok(response) => {
                                    let hits = response.expect_full();
                                    assert_eq!(hits.len(), queries.len());
                                    answered += queries.len() as u64;
                                    latencies.push(call.elapsed().as_micros());
                                }
                                Err(_) => shed += queries.len() as u64,
                            }
                        } else {
                            // One query per call, one fan-out per query.
                            for single in singles.iter() {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                let one = Instant::now();
                                let hits = router.knn(single, k).expect_full();
                                assert_eq!(hits.len(), 1);
                                answered += 1;
                                latencies.push(one.elapsed().as_micros());
                            }
                        }
                    }
                    (latencies, answered, shed)
                })
            })
            .collect();
        let train_start = Instant::now();
        trainer.run(train);
        let train_wall = train_start.elapsed();
        done.store(true, Ordering::Release);
        let mut all = Vec::new();
        let (mut answered, mut shed) = (0u64, 0u64);
        for client in clients {
            let (lat, a, s) = client.join().expect("client thread panicked");
            all.extend(lat);
            answered += a;
            shed += s;
        }
        (all, answered, shed, train_wall)
    });
    let wall = start.elapsed();

    // Post-training exactness: the serving path answers exactly like the
    // single-process search over the trainer's final codes.
    let final_queries = Arc::new(trainer.model().encode(&train.select_rows(&query_rows)));
    let expected = hamming_knn(trainer.codes(), &final_queries, k);
    assert_eq!(
        router.knn_shared(&final_queries, k).expect_full(),
        expected,
        "{label}: direct fan-out diverged post-training"
    );
    assert_eq!(
        router
            .knn_admitted(Arc::clone(&final_queries), k)
            .expect("quiesced admission queue accepts")
            .expect_full(),
        expected,
        "{label}: admitted path diverged post-training"
    );

    let mut sorted = latencies;
    sorted.sort_unstable();
    ServingRun {
        label,
        queries_answered: answered,
        queries_shed: shed,
        wall,
        p50_us: percentile(&sorted, 50),
        p99_us: percentile(&sorted, 99),
        train_wall,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (speedup, kernel_json) = kernel_comparison(smoke);
    eprintln!("kernel: batched/blocked vs per-query heap speedup {speedup:.2}x");

    let n_points = if smoke { 1200 } else { 4000 };
    let iterations = if smoke { 3 } else { 8 };
    let machines = 6usize;
    let data = gaussian_mixture(&MixtureConfig::new(n_points, 64, 8).with_seed(23));
    let train = data.train_features();
    let ba = BaConfig::new(12)
        .with_mu_schedule(0.01, 2.0, iterations)
        .with_epochs(2)
        .with_seed(23);
    let cfg = ParMacConfig::new(ba, machines);
    let clients = 4usize;
    let batch = 8usize;

    // PR-4 baseline: per-query fan-out, single scan thread per machine.
    let baseline_backend = ServerBackend::new().with_scan_workers(1);
    let baseline_router = baseline_backend.query_router();
    let baseline = serving_run(
        "per_query_single_actor (PR-4 baseline)",
        baseline_backend,
        baseline_router,
        &train,
        cfg,
        batch,
        clients,
        false,
    );
    eprintln!(
        "{}: {:.0} qps, p50 {} us, p99 {} us",
        baseline.label,
        baseline.qps(),
        baseline.p50_us,
        baseline.p99_us
    );

    // The new path: batched admission + multi-worker scans, at the default
    // sizing (queue capacity 256, 256-query coalescing budget).
    let batched_backend = ServerBackend::new().with_admission_config(AdmissionConfig::default());
    let batched_router = batched_backend.query_router();
    let batched = serving_run(
        "batched_admission_multi_worker",
        batched_backend,
        batched_router.clone(),
        &train,
        cfg,
        batch,
        clients,
        true,
    );
    eprintln!(
        "{}: {:.0} qps, p50 {} us, p99 {} us, shed {}",
        batched.label,
        batched.qps(),
        batched.p50_us,
        batched.p99_us,
        batched.queries_shed
    );

    // Every admitted query is accounted for: answered + shed == submitted.
    let stats = batched_router.serving_stats();
    assert_eq!(
        stats.submitted,
        stats.answered + stats.shed,
        "admission accounting must balance: {stats:?}"
    );

    if smoke {
        // The smoke gate: the invariants above (bitwise kernel equivalence,
        // post-training exactness on both paths, shed accounting) all held.
        eprintln!("serving smoke: PASS (accounting {stats:?})");
    }

    println!("{{");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"host\": {},", parmac_bench::host_info_json());
    println!("  \"kernel_64q\": {kernel_json},");
    println!("  \"serving\": [");
    println!("    {},", baseline.to_json());
    println!("    {}", batched.to_json());
    println!("  ],");
    println!(
        "  \"admission_stats\": {{\"submitted\": {}, \"answered\": {}, \"shed\": {}, \
         \"batches\": {}, \"coalesced\": {}}}",
        stats.submitted, stats.answered, stats.shed, stats.batches, stats.coalesced
    );
    println!("}}");
}
