//! Figure 5: the grid of theoretical speedup curves.
//!
//! N = 50 000 points; number of submodels M ∈ {1, 2, …, 512}; epochs
//! e ∈ {1, 8}; W-step communication time t_c^W ∈ {1, 100, 1000}; Z-step
//! computation time t_r^Z ∈ {1, 100}; t_r^W = 1 sets the time units. Each
//! table row is one M; columns sample P ∈ {1, 32, 64, 96, 128} as in the
//! paper's plots.

use parmac_bench::{cell, print_table};
use parmac_core::SpeedupModel;

fn main() {
    let n = 50_000;
    let ms = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let ps = [1usize, 32, 64, 96, 128];
    println!("# Figure 5 — theoretical speedup grid (N = 50 000, tWr = 1)");

    for &epochs in &[1usize, 8] {
        for &t_wc in &[1.0f64, 100.0, 1000.0] {
            for &t_zr in &[1.0f64, 100.0] {
                let rows: Vec<Vec<String>> = ms
                    .iter()
                    .map(|&m| {
                        let model = SpeedupModel::new(n, m, epochs, 1.0, t_wc, t_zr);
                        let mut row = vec![m.to_string()];
                        row.extend(ps.iter().map(|&p| cell(model.speedup(p), 1)));
                        row
                    })
                    .collect();
                print_table(
                    &format!("e = {epochs}, tWc = {t_wc}, tZr = {t_zr}"),
                    &["M", "S(1)", "S(32)", "S(64)", "S(96)", "S(128)"],
                    &rows,
                );
            }
        }
    }
}
