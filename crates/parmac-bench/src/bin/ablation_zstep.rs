//! Ablation (§3.1): Z-step solver — exact enumeration vs alternating bits vs
//! the truncated relaxed solution only.
//!
//! Expected shape: enumeration (exact) gives the lowest objective, alternating
//! optimisation is very close at a fraction of the cost, and the relaxed-only
//! solution is cheapest but worst.

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{ParMacTrainer, SimBackend, ZStepMethod};
use std::time::Instant;

fn main() {
    let n = 900;
    let bits = 10; // small enough that exact enumeration is affordable
    let iterations = 6;
    let exp = build_experiment(Suite::Sift10k, n, 37);
    println!("# Ablation — Z-step solver (SIFT-10K-like, N = {n}, L = {bits})");

    let mut rows = Vec::new();
    for &(method, label) in &[
        (ZStepMethod::Enumeration, "exact enumeration"),
        (
            ZStepMethod::AlternatingBits,
            "alternating bits (relaxed init)",
        ),
        (ZStepMethod::RelaxedOnly, "truncated relaxed only"),
    ] {
        let ba = scaled_ba_config(Suite::Sift10k, bits, iterations, 37)
            .with_epochs(2)
            .with_z_method(method);
        let cfg = scaled_parmac_config(ba, 4);
        let start = Instant::now();
        let mut trainer =
            ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
        rows.push(vec![
            label.to_string(),
            cell(report.mac.final_ba_error, 1),
            cell(report.mac.curve.best_precision().unwrap_or(0.0), 4),
            cell(start.elapsed().as_secs_f64(), 2),
        ]);
    }
    print_table(
        "final E_BA, best precision and wall-clock per solver",
        &[
            "Z-step solver",
            "final E_BA",
            "best precision",
            "wall seconds",
        ],
        &rows,
    );
}
