//! Figure 10: experimental (simulated-cluster) vs theoretical speedups for
//! CIFAR, SIFT-1M and SIFT-1B.
//!
//! Top row of the paper's figure: strong-scaling speedups measured on the
//! cluster. Here the "measurement" is the simulated runtime of the full
//! ParMAC run on the synchronous-tick cluster simulator, which executes the
//! real updates and charges the distributed cost model. Bottom row: the
//! closed-form speedup model of §5 with the same parameters.
//!
//! Scaling note: the paper's fitted constants are `t_r^W = 1`, `t_c^W = 10⁴`
//! and `t_r^Z = 200` (CIFAR) / `40` (SIFT-1M) at `N = 50 000` / `10⁶` points.
//! The speedup is invariant to scaling `N` and `t_c^W` together (eq. 22 /
//! §5.2 "transformations that keep the speedup invariant"), so when the
//! dataset is scaled down by a factor `s` the communication constant is scaled
//! down by the same factor. This keeps the speedup curves directly comparable
//! with the paper's despite the smaller N.

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{ParMacTrainer, SimBackend, SpeedupModel};
use parmac_linalg::Mat;

fn simulated_runtime(
    train: &Mat,
    suite: Suite,
    bits: usize,
    machines: usize,
    epochs: usize,
    cost: CostModel,
) -> f64 {
    let ba = scaled_ba_config(suite, bits, 3, 17).with_epochs(epochs);
    let cfg = scaled_parmac_config(ba, machines);
    let mut trainer = ParMacTrainer::new(cfg, train, SimBackend::new(cost));
    trainer.run(train).total_simulated_time
}

fn main() {
    println!("# Figure 10 — experimental (simulated cluster) vs theoretical speedup");
    let machine_counts = [1usize, 2, 4, 8, 16, 32, 64, 128];

    // (suite, scaled n, bits, epochs, paper N, paper tZr)
    for &(suite, n, bits, epochs, paper_n, t_zr) in &[
        (
            Suite::Cifar,
            1250usize,
            16usize,
            1usize,
            50_000usize,
            200.0f64,
        ),
        (Suite::Sift1m, 2500, 16, 1, 1_000_000, 40.0),
    ] {
        let exp = build_experiment(suite, n, 17);
        let n_train = exp.train.rows();
        // Paper-fitted constants, with t_c^W scaled down with N (see above).
        let scale = paper_n as f64 / n_train as f64;
        let cost = CostModel::new(1.0, 1e4 / scale, t_zr);
        let theory = SpeedupModel::new(
            n_train,
            2 * bits,
            epochs,
            cost.w_compute_per_point,
            cost.w_comm_per_submodel,
            cost.z_compute_per_point,
        );
        let t1 = simulated_runtime(&exp.train, suite, bits, 1, epochs, cost);
        let mut rows = Vec::new();
        for &p in &machine_counts {
            if p > n_train {
                continue;
            }
            let tp = simulated_runtime(&exp.train, suite, bits, p, epochs, cost);
            rows.push(vec![
                p.to_string(),
                cell(t1 / tp, 2),
                cell(theory.speedup(p), 2),
            ]);
        }
        print_table(
            &format!(
                "{} (N = {n_train}, M = 2L = {}, e = {epochs}, tWc scaled by 1/{scale:.0})",
                suite.name(),
                2 * bits
            ),
            &["P", "simulated-cluster speedup", "theoretical speedup"],
            &rows,
        );
    }

    // SIFT-1B: theoretical prediction only (as in the paper, the experimental
    // single-machine baseline is unaffordable); N and M as in the paper.
    let theory = SpeedupModel::new(100_000_000, 128, 2, 1.0, 1e4, 40.0);
    let rows: Vec<Vec<String>> = [1usize, 64, 128, 256, 512, 768, 1024]
        .iter()
        .map(|&p| vec![p.to_string(), cell(theory.speedup(p), 1)])
        .collect();
    print_table(
        "SIFT-1B (theory only, N = 1e8, M = 128, e = 2)",
        &["P", "theoretical speedup"],
        &rows,
    );
}
