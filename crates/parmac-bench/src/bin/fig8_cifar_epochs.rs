//! Figure 8: CIFAR learning curves — effect of epochs and of the number of
//! machines, on the GIST-like (D = 320) suite.
//!
//! Same protocol as fig. 7 but on the CIFAR-like data and with the paper's
//! machine counts {1, 32, 64, 96, 128} (scaled data, same shapes).

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{ParMacTrainer, SimBackend};

fn main() {
    let n = 1200;
    let bits = 16;
    let iterations = 8;
    let exp = build_experiment(Suite::Cifar, n, 11);
    println!("# Figure 8 — CIFAR-like learning curves (N = {n}, D = 320, L = {bits})");

    for &epochs in &[1usize, 2, 8] {
        let ba = scaled_ba_config(Suite::Cifar, bits, iterations, 11).with_epochs(epochs);
        let cfg = scaled_parmac_config(ba, 1);
        let mut trainer =
            ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
        let rows: Vec<Vec<String>> = report
            .mac
            .curve
            .records()
            .iter()
            .map(|r| {
                vec![
                    r.iteration.to_string(),
                    cell(r.quadratic_penalty, 1),
                    cell(r.ba_error, 1),
                    cell(r.precision.unwrap_or(0.0), 4),
                ]
            })
            .collect();
        print_table(
            &format!("P = 1, epochs = {epochs}"),
            &["iter", "E_Q", "E_BA", "precision"],
            &rows,
        );
    }

    for &p in &[1usize, 32, 64, 128] {
        let ba = scaled_ba_config(Suite::Cifar, bits, iterations, 11).with_epochs(2);
        let cfg = scaled_parmac_config(ba, p.min(1200));
        let mut trainer =
            ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
        let last = report.mac.curve.last().unwrap();
        print_table(
            &format!("epochs = 2, P = {p} (final iteration summary)"),
            &[
                "iters",
                "final E_Q",
                "final E_BA",
                "best precision",
                "total sim_time",
            ],
            &[vec![
                report.mac.iterations_run.to_string(),
                cell(last.quadratic_penalty, 1),
                cell(last.ba_error, 1),
                cell(report.mac.curve.best_precision().unwrap_or(0.0), 4),
                cell(report.total_simulated_time, 0),
            ]],
        );
    }
}
