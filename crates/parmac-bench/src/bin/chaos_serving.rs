//! Chaos serving benchmark (perf-trajectory entry, `BENCH_chaos.json`).
//!
//! Measures the cost of availability: sustained closed-loop `knn_admitted`
//! throughput and p50/p99 latency at replication R=1 vs R=2, each in a
//! clean window and in a window where a scripted killer takes one machine
//! down halfway through. Every window also checks the availability
//! contract, so the benchmark doubles as a chaos gate:
//!
//! * R=2 + kill: every answer full-coverage and bitwise identical to the
//!   single-process reference (failover, not degradation), and the fleet
//!   re-converges to full replication after the restore;
//! * R=1 + kill: every answer either full and exact, or flagged degraded
//!   and exact over the surviving shards — never a silent shrink;
//! * stats invariant-clean at every sample point and balanced
//!   (`answered + shed == submitted`) once the clients quiesce.
//!
//! Run with `cargo run --release -p parmac-bench --bin chaos_serving`;
//! pass `--smoke` for the bounded fast mode CI runs on every push (smaller
//! database, shorter windows, same asserts — any violation exits nonzero).

use parmac_cluster::{ClusterBackend, CostModel, ServerBackend, SimCluster};
use parmac_hash::{BinaryCodes, HashFunction, LinearHash};
use parmac_linalg::Mat;
use parmac_retrieval::hamming_knn;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MACHINES: usize = 6;
const CLIENTS: usize = 4;
const K: usize = 10;

fn shards(p: usize, n: usize) -> Vec<Vec<usize>> {
    let base = n / p;
    (0..p)
        .map(|i| (i * base..(i + 1) * base).collect())
        .collect()
}

/// Single-process reference over the database minus the points in `lost`,
/// answers mapped back to global point ids.
fn knn_excluding(
    db: &BinaryCodes,
    queries: &BinaryCodes,
    k: usize,
    lost: std::ops::Range<usize>,
) -> Vec<Vec<usize>> {
    let keep: Vec<usize> = (0..db.len()).filter(|i| !lost.contains(i)).collect();
    let mut sub = BinaryCodes::zeros(0, db.n_bits());
    for &i in &keep {
        sub.push_code(&db.to_f64_row(i));
    }
    hamming_knn(&sub, queries, k)
        .into_iter()
        .map(|row| row.into_iter().map(|r| keep[r]).collect())
        .collect()
}

fn percentile(sorted: &[u128], pct: usize) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

/// One measurement window's results.
struct WindowRun {
    label: String,
    replicas: usize,
    killed_mid_window: bool,
    queries_answered: u64,
    queries_shed: u64,
    degraded_answers: u64,
    failovers: u64,
    min_coverage: f64,
    wall: Duration,
    p50_us: u128,
    p99_us: u128,
}

impl WindowRun {
    fn qps(&self) -> f64 {
        self.queries_answered as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"replicas\": {}, \"killed_mid_window\": {}, \
             \"queries_answered\": {}, \"queries_shed\": {}, \"degraded_answers\": {}, \
             \"failovers\": {}, \"min_coverage\": {:.4}, \"wall_s\": {:.3}, \
             \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
            self.label,
            self.replicas,
            self.killed_mid_window,
            self.queries_answered,
            self.queries_shed,
            self.degraded_answers,
            self.failovers,
            self.min_coverage,
            self.wall.as_secs_f64(),
            self.qps(),
            self.p50_us,
            self.p99_us
        )
    }
}

/// Drives closed-loop clients against a fresh fleet for one window,
/// optionally killing (and afterwards restoring) one machine halfway in.
#[allow(clippy::too_many_arguments)]
fn window(
    label: &str,
    replicas: usize,
    kill: bool,
    db: &BinaryCodes,
    cluster: &SimCluster,
    queries: &Arc<BinaryCodes>,
    window_len: Duration,
    degraded_expected: &[Vec<usize>],
) -> WindowRun {
    let expected = hamming_knn(db, queries, K);
    let backend = ServerBackend::new().with_replication(replicas);
    backend.publish_codes(cluster, db);
    let done = AtomicBool::new(false);
    let victim = MACHINES / 2;

    let start = Instant::now();
    let (latencies, answered, shed, degraded_answers, min_coverage) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let router = backend.query_router();
                let queries = Arc::clone(queries);
                let (expected, degraded_expected) = (&expected, degraded_expected);
                let done = &done;
                scope.spawn(move || {
                    let mut latencies: Vec<u128> = Vec::new();
                    let (mut answered, mut shed, mut degraded) = (0u64, 0u64, 0u64);
                    let mut min_coverage = 1.0f64;
                    while !done.load(Ordering::Acquire) {
                        let call = Instant::now();
                        match router.knn_admitted(Arc::clone(&queries), K) {
                            Ok(response) => {
                                latencies.push(call.elapsed().as_micros());
                                answered += queries.len() as u64;
                                min_coverage = min_coverage.min(response.coverage.fraction());
                                if response.coverage.is_full() {
                                    assert_eq!(
                                        &response.answers, expected,
                                        "{label}: full-coverage answer diverged"
                                    );
                                } else {
                                    degraded += 1;
                                    assert!(
                                        replicas == 1 && kill,
                                        "{label}: degraded answer where none is \
                                             allowed: {:?}",
                                        response.coverage
                                    );
                                    assert_eq!(
                                        &response.answers, degraded_expected,
                                        "{label}: degraded answer must equal the \
                                             surviving-shard reference"
                                    );
                                }
                            }
                            Err(_) => shed += queries.len() as u64,
                        }
                    }
                    (latencies, answered, shed, degraded, min_coverage)
                })
            })
            .collect();

        if kill {
            std::thread::sleep(window_len / 2);
            backend.kill_machine(victim);
            std::thread::sleep(window_len / 2);
        } else {
            std::thread::sleep(window_len);
        }
        // Mid-drive sample: every submission is answered, shed, or one of
        // the at-most-CLIENTS in-flight calls — nothing is ever lost.
        let sample = backend.query_router().serving_stats();
        assert!(
            sample.answered + sample.shed <= sample.submitted
                && sample.submitted <= sample.answered + sample.shed + CLIENTS as u64,
            "{label}: unclean stats under load: {sample:?}"
        );
        done.store(true, Ordering::Release);

        let mut all = Vec::new();
        let (mut answered, mut shed, mut degraded) = (0u64, 0u64, 0u64);
        let mut min_coverage = 1.0f64;
        for client in clients {
            let (lat, a, s, d, m) = client.join().expect("client panicked");
            all.extend(lat);
            answered += a;
            shed += s;
            degraded += d;
            min_coverage = min_coverage.min(m);
        }
        (all, answered, shed, degraded, min_coverage)
    });
    let wall = start.elapsed();

    // Quiesced: the books balance exactly, and availability matches the
    // replication level.
    let stats = backend.query_router().serving_stats();
    assert_eq!(
        stats.submitted,
        stats.answered + stats.shed,
        "{label}: accounting must balance: {stats:?}"
    );
    if replicas >= 2 {
        assert_eq!(
            stats.degraded, 0,
            "{label}: R>=2 must absorb a single kill without degrading: {stats:?}"
        );
    }
    if kill {
        // Restore + reconverge: the fleet heals back to full replication.
        assert!(
            backend.restore_machine(victim),
            "{label}: restore probe failed"
        );
        backend.rebalance();
        if replicas == 1 {
            // The shard died with its only host; republish brings it back.
            backend.publish_codes(cluster, db);
        }
        let status = backend.fleet_status();
        assert_eq!(status.dead_machines, 0, "{label}: {status:?}");
        assert!(
            status.is_fully_replicated(),
            "{label}: not fully replicated after restore: {status:?}"
        );
        let healed = backend.query_router().knn(queries, K);
        assert!(healed.coverage.is_full(), "{label}: {:?}", healed.coverage);
        assert_eq!(healed.answers, expected, "{label}: healed answers diverged");
    }

    let mut sorted = latencies;
    sorted.sort_unstable();
    WindowRun {
        label: label.to_string(),
        replicas,
        killed_mid_window: kill,
        queries_answered: answered,
        queries_shed: shed,
        degraded_answers,
        failovers: stats.failovers,
        min_coverage,
        wall,
        p50_us: percentile(&sorted, 50),
        p99_us: percentile(&sorted, 99),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 6_000 } else { 30_000 };
    let window_len = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let batch = 8usize;

    let mut rng = SmallRng::seed_from_u64(47);
    let hash = LinearHash::random(64, 128, &mut rng);
    let db = hash.encode(&Mat::random_normal(n, 128, &mut rng));
    let queries = Arc::new(hash.encode(&Mat::random_normal(batch, 128, &mut rng)));
    let cluster = SimCluster::new(shards(MACHINES, n), CostModel::distributed());
    // At R=1 the killed machine (MACHINES/2) hosts exactly its own shard.
    let victim = MACHINES / 2;
    let base = n / MACHINES;
    let degraded_expected = knn_excluding(&db, &queries, K, victim * base..(victim + 1) * base);

    let runs = [
        ("r1_clean", 1, false),
        ("r1_kill_mid_window", 1, true),
        ("r2_clean", 2, false),
        ("r2_kill_mid_window", 2, true),
    ]
    .map(|(label, replicas, kill)| {
        let run = window(
            label,
            replicas,
            kill,
            &db,
            &cluster,
            &queries,
            window_len,
            &degraded_expected,
        );
        eprintln!(
            "{label}: {:.0} qps, p50 {} us, p99 {} us, shed {}, degraded {}, \
             failovers {}, min coverage {:.2}",
            run.qps(),
            run.p50_us,
            run.p99_us,
            run.queries_shed,
            run.degraded_answers,
            run.failovers,
            run.min_coverage
        );
        run
    });

    if smoke {
        eprintln!("chaos smoke: PASS (all windows invariant-clean)");
    }

    println!("{{");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!(
        "  \"note\": \"closed-loop knn_admitted, {CLIENTS} clients, batch {batch}, k {K}, \
         {MACHINES} machines on one host — single-core-class container, so qps measures \
         protocol+scan cost, not parallel speedup\","
    );
    println!("  \"host\": {},", parmac_bench::host_info_json());
    println!("  \"db\": {n},");
    println!("  \"windows\": [");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        println!("    {}{comma}", run.to_json());
    }
    println!("  ]");
    println!("}}");
}
