//! Ablation (§6 / §8.2): exact W step vs stochastic (SGD) W step vs
//! distributed ParMAC.
//!
//! The paper argues that using SGD in the W step — the only approximation
//! ParMAC introduces over MAC — barely changes the result, and that one or two
//! epochs are enough. This ablation trains the same binary autoencoder with
//! (a) serial MAC with exact solvers, (b) serial MAC with SGD submodels,
//! (c) ParMAC on 8 simulated machines with 1 and 2 epochs, and compares the
//! final objectives and retrieval precision.

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{MacTrainer, ParMacTrainer, SimBackend};

fn main() {
    let n = 1200;
    let bits = 16;
    let iterations = 8;
    let exp = build_experiment(Suite::Sift10k, n, 31);
    println!("# Ablation — exact vs SGD W step (SIFT-10K-like, N = {n}, L = {bits})");

    let mut rows = Vec::new();

    let exact_cfg = scaled_ba_config(Suite::Sift10k, bits, iterations, 31).with_exact_w_step(true);
    let mut exact = MacTrainer::new(exact_cfg, &exp.train);
    let exact_report = exact.run_with_eval(&exp.train, Some(&exp.eval));
    rows.push(vec![
        "serial MAC, exact W step".into(),
        cell(exact_report.final_ba_error, 1),
        cell(exp.eval.precision_of(exact.model()), 4),
    ]);

    let sgd_cfg = scaled_ba_config(Suite::Sift10k, bits, iterations, 31).with_epochs(2);
    let mut sgd = MacTrainer::new(sgd_cfg, &exp.train);
    let sgd_report = sgd.run_with_eval(&exp.train, Some(&exp.eval));
    rows.push(vec![
        "serial MAC, SGD W step (2 epochs)".into(),
        cell(sgd_report.final_ba_error, 1),
        cell(exp.eval.precision_of(sgd.model()), 4),
    ]);

    for &epochs in &[1usize, 2] {
        let ba = scaled_ba_config(Suite::Sift10k, bits, iterations, 31).with_epochs(epochs);
        let cfg = scaled_parmac_config(ba, 8);
        let mut trainer =
            ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
        rows.push(vec![
            format!("ParMAC, P = 8, {epochs} epoch(s)"),
            cell(report.mac.final_ba_error, 1),
            cell(exp.eval.precision_of(trainer.model()), 4),
        ]);
    }

    print_table(
        "final E_BA and retrieval precision",
        &["variant", "final E_BA", "precision"],
        &rows,
    );
}
