//! Figure 7: SIFT-10K learning curves — effect of the number of W-step epochs
//! and of the number of machines.
//!
//! Left half of the figure: a single machine (P = 1) with e ∈ {1, 2, 3, 4, 8}
//! epochs in the W step; right half: fixed e ∈ {1, 8} with
//! P ∈ {1, 8, 16, 24, 32} machines. Each run reports E_Q, E_BA and retrieval
//! precision per MAC iteration. Dataset: SIFT-like synthetic features scaled
//! down from the paper's 10 000 points.

use parmac_bench::{
    build_experiment, cell, print_table, scaled_ba_config, scaled_parmac_config, Suite,
};
use parmac_cluster::CostModel;
use parmac_core::{ParMacTrainer, SimBackend};

fn main() {
    let n = 1500;
    let bits = 16;
    let iterations = 8;
    let exp = build_experiment(Suite::Sift10k, n, 7);
    println!("# Figure 7 — SIFT-10K-like learning curves (N = {n}, L = {bits})");

    // Effect of epochs at P = 1.
    for &epochs in &[1usize, 2, 4, 8] {
        let ba = scaled_ba_config(Suite::Sift10k, bits, iterations, 7).with_epochs(epochs);
        let cfg = scaled_parmac_config(ba, 1);
        let mut trainer =
            ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
        let rows: Vec<Vec<String>> = report
            .mac
            .curve
            .records()
            .iter()
            .map(|r| {
                vec![
                    r.iteration.to_string(),
                    cell(r.quadratic_penalty, 1),
                    cell(r.ba_error, 1),
                    cell(r.precision.unwrap_or(0.0), 4),
                    cell(r.simulated_time, 0),
                ]
            })
            .collect();
        print_table(
            &format!("P = 1, epochs = {epochs}"),
            &["iter", "E_Q", "E_BA", "precision", "sim_time"],
            &rows,
        );
    }

    // Effect of the number of machines at fixed epochs.
    for &epochs in &[1usize, 8] {
        for &p in &[1usize, 8, 16, 32] {
            let ba = scaled_ba_config(Suite::Sift10k, bits, iterations, 7).with_epochs(epochs);
            let cfg = scaled_parmac_config(ba, p);
            let mut trainer =
                ParMacTrainer::new(cfg, &exp.train, SimBackend::new(CostModel::distributed()));
            let report = trainer.run_with_eval(&exp.train, Some(&exp.eval));
            let last = report.mac.curve.last().unwrap();
            let best_precision = report.mac.curve.best_precision().unwrap_or(0.0);
            print_table(
                &format!("epochs = {epochs}, P = {p} (final iteration summary)"),
                &[
                    "iters",
                    "final E_Q",
                    "final E_BA",
                    "best precision",
                    "total sim_time",
                ],
                &[vec![
                    report.mac.iterations_run.to_string(),
                    cell(last.quadratic_penalty, 1),
                    cell(last.ba_error, 1),
                    cell(best_precision, 4),
                    cell(report.total_simulated_time, 0),
                ]],
            );
        }
    }
}
