//! Figure 12: recall@R curves on the SIFT-1B-like suite for truncated PCA
//! (the initialisation / baseline), the linear-hash BA and the RBF-hash BA.
//!
//! The expected shape (paper): BA with a linear hash improves over tPCA, and
//! the RBF hash improves over the linear one, across the whole range of R.

use parmac_bench::{cell, print_table, scaled_parmac_config, Suite};
use parmac_cluster::CostModel;
use parmac_core::{BaConfig, ParMacTrainer, SimBackend};
use parmac_hash::{HashFunction, TpcaHash};
use parmac_linalg::Mat;
use parmac_optim::RbfFeatureMap;
use parmac_retrieval::{euclidean_knn, recall_curve};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn train_ba(train: &Mat, bits: usize) -> parmac_core::BinaryAutoencoder {
    let ba = BaConfig::new(bits)
        .with_mu_schedule(0.005, 2.0, 6)
        .with_epochs(2)
        .with_seed(23);
    let cfg = scaled_parmac_config(ba, 8);
    let mut trainer = ParMacTrainer::new(cfg, train, SimBackend::new(CostModel::distributed()));
    trainer.run(train);
    trainer.into_model()
}

fn main() {
    let n = 1500;
    let bits = 32;
    let data = Suite::Sift1b.generate(n, 23);
    let train = data.train_features();
    let queries = data.query_features();
    let ground_truth = euclidean_knn(&train, &queries, 1);
    let rs = [1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000];
    println!("# Figure 12 — recall@R: tPCA vs linear BA vs RBF BA (N = {n}, L = {bits})");

    // Baseline: truncated PCA.
    let tpca = TpcaHash::fit(&train, bits).expect("tPCA fit");
    let tpca_recall = recall_curve(
        &tpca.encode(&train),
        &tpca.encode(&queries),
        &ground_truth,
        &rs,
    );

    // BA with a linear hash on the raw features.
    let linear_ba = train_ba(&train, bits);
    let lin_recall = recall_curve(
        &linear_ba.encode(&train),
        &linear_ba.encode(&queries),
        &ground_truth,
        &rs,
    );

    // BA with an RBF hash: train on kernel values.
    let mut rng = SmallRng::seed_from_u64(23);
    let bandwidth = RbfFeatureMap::median_bandwidth(&train, 200, &mut rng);
    let map = RbfFeatureMap::from_data(&train, 200, bandwidth, &mut rng);
    let train_rbf = map.transform(&train);
    let queries_rbf = map.transform(&queries);
    let rbf_ba = train_ba(&train_rbf, bits);
    let rbf_recall = recall_curve(
        &rbf_ba.encode(&train_rbf),
        &rbf_ba.encode(&queries_rbf),
        &ground_truth,
        &rs,
    );

    let rows: Vec<Vec<String>> = rs
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            vec![
                r.to_string(),
                cell(tpca_recall[i], 4),
                cell(lin_recall[i], 4),
                cell(rbf_recall[i], 4),
            ]
        })
        .collect();
    print_table("recall@R", &["R", "tPCA", "BA linear", "BA RBF"], &rows);
}
