//! Cross-process ring benchmark and fault-injection gate
//! (`BENCH_process_ring.json`).
//!
//! Trains the same binary autoencoder on the [`SimBackend`] reference and on
//! the [`ProcessBackend`] — real `parmac-machined` OS processes wired into a
//! ring over Unix-domain sockets — and reports the wall-clock cost of
//! crossing a process boundary. Every window is also a correctness gate:
//!
//! * the clean process run must be **bitwise identical** to the simulator
//!   (weights, codes, final E_BA);
//! * a worker **SIGKILLed** between MAC iterations must surface as exactly
//!   one structured `MachineDown` and the finished run must be bitwise
//!   identical to a simulator whose machine was disconnected (§4.3) at the
//!   same point;
//! * a kill **racing** a W step must still complete inside the step
//!   deadline.
//!
//! Run with `cargo run --release -p parmac-bench --bin process_ring`
//! (build the worker first: `cargo build --release -p parmac-cluster
//! --bins`); pass `--smoke` for the bounded fast mode CI runs on every push
//! — 3 worker processes, one injected kill, same asserts, nonzero exit on
//! any violation.

use parmac_cluster::process::{MachineDownReason, ProcessConfig};
use parmac_cluster::{ClusterBackend, CostModel, ProcessBackend, SimBackend};
use parmac_core::{BaConfig, ParMacConfig, ParMacTrainer};
use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac_hash::BinaryCodes;
use parmac_linalg::Mat;
use std::time::{Duration, Instant};

const MACHINES: usize = 3;

fn config(bits: usize) -> ParMacConfig {
    ParMacConfig::new(
        BaConfig::new(bits)
            .with_mu_schedule(0.02, 2.0, 4)
            .with_epochs(1)
            .with_seed(11)
            .with_sgd(parmac_optim::SgdConfig::new().with_eta0(0.1)),
        MACHINES,
    )
}

/// End state of one training run: everything that must match bitwise.
type EndState = (Mat, Mat, BinaryCodes);

fn full_run<B: ClusterBackend>(cfg: ParMacConfig, x: &Mat, backend: B) -> (EndState, Duration) {
    let start = Instant::now();
    let mut t = ParMacTrainer::new(cfg, x, backend);
    t.run(x);
    let wall = start.elapsed();
    (
        (
            t.model().encoder().weights().clone(),
            t.model().decoder().weights().clone(),
            t.codes().clone(),
        ),
        wall,
    )
}

/// Two explicit MAC iterations with a hook between them (the kill window).
fn two_iterations<B: ClusterBackend>(
    cfg: ParMacConfig,
    x: &Mat,
    backend: B,
    mid: impl FnOnce(&mut ParMacTrainer<B>),
) -> (EndState, Duration) {
    let start = Instant::now();
    let mut t = ParMacTrainer::new(cfg, x, backend);
    t.w_step(x, 0);
    t.z_step(x, 0.05);
    mid(&mut t);
    t.w_step(x, 1);
    t.z_step(x, 0.1);
    let wall = start.elapsed();
    (
        (
            t.model().encoder().weights().clone(),
            t.model().decoder().weights().clone(),
            t.codes().clone(),
        ),
        wall,
    )
}

fn assert_bitwise(got: &EndState, want: &EndState, label: &str) {
    assert_eq!(got.0, want.0, "{label}: encoder weights diverged");
    assert_eq!(got.1, want.1, "{label}: decoder weights diverged");
    assert_eq!(got.2, want.2, "{label}: codes diverged");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 240 } else { 3_000 };
    let bits = if smoke { 5 } else { 8 };
    let x = gaussian_mixture(&MixtureConfig::new(n, 10, 4).with_seed(77)).features;
    let cfg = config(bits);
    let process_backend = || {
        ProcessBackend::new()
            .with_cost_model(CostModel::distributed())
            .with_config(ProcessConfig {
                step_timeout: Duration::from_secs(30),
                io_timeout: Duration::from_millis(500),
                ..ProcessConfig::default()
            })
    };

    // Window 1 — clean run: the process ring must reproduce the simulator
    // bitwise; the wall-clock ratio is the cost of the process boundary.
    let (sim_state, sim_wall) = full_run(cfg, &x, SimBackend::new(CostModel::distributed()));
    let (proc_state, proc_wall) = full_run(cfg, &x, process_backend());
    assert_bitwise(&proc_state, &sim_state, "clean run");

    // Window 2 — SIGKILL between iterations: bitwise equal to a simulator
    // that lost the same machine at the same point, fault reported once.
    let victim = 1usize;
    let (sim_kill_state, _) =
        two_iterations(cfg, &x, SimBackend::new(CostModel::distributed()), |t| {
            t.remove_machine(victim)
        });
    let backend = process_backend();
    let chaos = backend.clone();
    let (proc_kill_state, kill_wall) = two_iterations(cfg, &x, backend, |_| {
        assert!(chaos.kill_process(victim), "victim worker was not live");
    });
    assert_bitwise(&proc_kill_state, &sim_kill_state, "kill run");
    let downs = chaos.down_events();
    assert_eq!(downs.len(), 1, "exactly one fault expected: {downs:?}");
    assert_eq!(downs[0].machine, victim);
    assert_eq!(downs[0].reason, MachineDownReason::Killed);

    // Window 3 — kill racing a live W step: the no-hang guarantee.
    let backend = process_backend();
    let chaos = backend.clone();
    let race_start = Instant::now();
    let mut t = ParMacTrainer::new(cfg, &x, backend);
    t.w_step(&x, 0);
    t.z_step(&x, 0.05);
    let killer = std::thread::spawn(move || chaos.kill_process(2));
    t.w_step(&x, 1);
    t.z_step(&x, 0.1);
    let killed = killer.join().expect("chaos thread panicked");
    let race_wall = race_start.elapsed();
    assert!(killed, "racing kill found machine 2 already dead");
    assert!(
        race_wall < Duration::from_secs(60),
        "racing-kill run exceeded the liveness bound ({race_wall:?})"
    );
    assert_eq!(t.backend().dead_machines(), vec![2]);

    if smoke {
        eprintln!(
            "process smoke: PASS ({MACHINES} workers, clean run bitwise == sim in \
             {proc_wall:?}, SIGKILL run bitwise == sim-minus-machine in {kill_wall:?}, \
             racing kill completed in {race_wall:?})"
        );
        return;
    }

    println!("{{");
    println!("  \"mode\": \"full\",");
    println!("  \"host\": {},", parmac_bench::host_info_json());
    println!("  \"n\": {n},");
    println!("  \"bits\": {bits},");
    println!("  \"machines\": {MACHINES},");
    println!("  \"sim_wall_s\": {:.3},", sim_wall.as_secs_f64());
    println!("  \"process_wall_s\": {:.3},", proc_wall.as_secs_f64());
    println!(
        "  \"process_overhead_x\": {:.2},",
        proc_wall.as_secs_f64() / sim_wall.as_secs_f64().max(1e-9)
    );
    println!("  \"kill_run_wall_s\": {:.3},", kill_wall.as_secs_f64());
    println!("  \"racing_kill_wall_s\": {:.3}", race_wall.as_secs_f64());
    println!("}}");
}
