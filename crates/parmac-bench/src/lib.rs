//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the index). They all print tab-separated
//! series to stdout so the output can be diffed, plotted or pasted into
//! `EXPERIMENTS.md`. This library holds what they share: a table printer,
//! experiment-sizing helpers that scale the paper's dataset sizes down to
//! laptop scale, and dataset/evaluation builders for the benchmark suites
//! (CIFAR/GIST-like, SIFT-like).

#![warn(missing_docs)]

use parmac_core::mac::RetrievalEval;
use parmac_core::{BaConfig, MuSchedule, ParMacConfig};
use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac_data::{Dataset, SplitSpec};
use parmac_linalg::Mat;

/// The measuring host's parallelism, architecture and active popcount
/// kernel, as a JSON object fragment — recorded by every bench binary so a
/// BENCH entry is self-describing (single-core container numbers read very
/// differently from multicore ones, and scalar-popcount numbers from AVX2).
pub fn host_info_json() -> String {
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    format!(
        "{{\"cores\": {cores}, \"arch\": \"{}\", \"popcount\": \"{}\"}}",
        std::env::consts::ARCH,
        parmac_hash::popcount::simd_backend()
    )
}

/// Prints a header line followed by rows, all tab-separated, to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}

/// Formats a floating-point cell with a fixed number of decimals.
pub fn cell(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Scale factor applied to the paper's dataset sizes so the experiments run in
/// seconds on one machine. The paper's N (e.g. 50 000 for CIFAR, 10⁶ for
/// SIFT-1M, 10⁸ for SIFT-1B) is divided by this factor, with a floor to keep
/// the statistics meaningful.
pub fn scaled_n(paper_n: usize, scale: usize, floor: usize) -> usize {
    (paper_n / scale.max(1)).max(floor)
}

/// One of the paper's benchmark suites, scaled to laptop size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// CIFAR with GIST features: D = 320, N = 50 000 in the paper.
    Cifar,
    /// SIFT-10K: D = 128, N = 10 000.
    Sift10k,
    /// SIFT-1M: D = 128, N = 10⁶.
    Sift1m,
    /// SIFT-1B learn set: D = 128, N = 10⁸.
    Sift1b,
}

impl Suite {
    /// The paper's training-set size for this suite.
    pub fn paper_n(self) -> usize {
        match self {
            Suite::Cifar => 50_000,
            Suite::Sift10k => 10_000,
            Suite::Sift1m => 1_000_000,
            Suite::Sift1b => 100_000_000,
        }
    }

    /// Feature dimensionality used by the paper.
    pub fn dim(self) -> usize {
        match self {
            Suite::Cifar => 320,
            _ => 128,
        }
    }

    /// Code length `L` used by the paper for this suite.
    pub fn paper_bits(self) -> usize {
        match self {
            Suite::Sift1b => 64,
            _ => 16,
        }
    }

    /// The µ schedule the paper uses for this suite (§8.1).
    pub fn mu_schedule(self) -> MuSchedule {
        match self {
            Suite::Cifar => MuSchedule::cifar(),
            Suite::Sift1b => MuSchedule::sift1b(),
            _ => MuSchedule::sift(),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Cifar => "CIFAR (GIST-like)",
            Suite::Sift10k => "SIFT-10K-like",
            Suite::Sift1m => "SIFT-1M-like",
            Suite::Sift1b => "SIFT-1B-like",
        }
    }

    /// Generates a scaled synthetic stand-in for this suite: `n_points` points
    /// of the suite's dimensionality, split 80/10/10.
    pub fn generate(self, n_points: usize, seed: u64) -> Dataset {
        let clusters = match self {
            Suite::Cifar => 10,
            _ => 32,
        };
        gaussian_mixture(
            &MixtureConfig::new(n_points, self.dim(), clusters)
                .with_intrinsic_dim((self.dim() / 8).clamp(4, 32))
                .with_seed(seed)
                .with_split(SplitSpec::new(0.8, 0.1, 0.1)),
        )
    }
}

/// A ready-to-run experiment: training features plus a retrieval evaluation
/// set with precomputed ground truth.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Training features (one row per point).
    pub train: Mat,
    /// Retrieval evaluation (database = training set, queries = held-out
    /// split, Euclidean ground truth).
    pub eval: RetrievalEval,
}

/// Builds a scaled experiment for a suite: generates the synthetic data and
/// precomputes the retrieval ground truth with the paper's `(K, k)` protocol
/// scaled to the dataset size.
pub fn build_experiment(suite: Suite, n_points: usize, seed: u64) -> Experiment {
    let data = suite.generate(n_points, seed);
    let train = data.train_features();
    let queries = data.query_features();
    let true_k = (train.rows() / 50).clamp(5, 100);
    let retrieve_k = (train.rows() / 50).clamp(5, 100);
    let eval = RetrievalEval::new(train.clone(), queries, true_k, retrieve_k);
    Experiment { train, eval }
}

/// A reasonable scaled-down BA configuration for a suite: the paper's µ
/// schedule shape but fewer bits/iterations so the run completes in seconds.
pub fn scaled_ba_config(suite: Suite, bits: usize, iterations: usize, seed: u64) -> BaConfig {
    let sched = suite.mu_schedule();
    let mu0 = sched.value(0).max(1e-4);
    BaConfig::new(bits)
        .with_mu_schedule(mu0.max(0.005), 1.8, iterations)
        .with_seed(seed)
        .with_epochs(1)
}

/// Wraps a BA configuration for a `P`-machine ParMAC run with the defaults the
/// experiments use.
pub fn scaled_parmac_config(ba: BaConfig, machines: usize) -> ParMacConfig {
    ParMacConfig::new(ba, machines).with_minibatch_size(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_info_reports_cores_arch_and_kernel() {
        let json = host_info_json();
        assert!(json.contains("\"cores\": "), "{json}");
        assert!(json.contains(std::env::consts::ARCH), "{json}");
        assert!(
            json.contains("\"popcount\": \"avx2\"") || json.contains("\"popcount\": \"scalar\""),
            "{json}"
        );
    }

    #[test]
    fn cell_formats_decimals() {
        assert_eq!(cell(1.23456, 2), "1.23");
        assert_eq!(cell(2.0, 0), "2");
    }

    #[test]
    fn scaled_n_applies_floor_and_scale() {
        assert_eq!(scaled_n(100_000, 100, 500), 1000);
        assert_eq!(scaled_n(100_000, 1000, 500), 500);
        assert_eq!(scaled_n(100_000, 0, 10), 100_000);
    }

    #[test]
    fn suites_report_paper_parameters() {
        assert_eq!(Suite::Cifar.dim(), 320);
        assert_eq!(Suite::Sift1m.paper_n(), 1_000_000);
        assert_eq!(Suite::Sift1b.paper_bits(), 64);
        assert_eq!(Suite::Sift10k.mu_schedule().len(), 20);
    }

    #[test]
    fn build_experiment_produces_consistent_shapes() {
        let exp = build_experiment(Suite::Sift10k, 300, 1);
        assert_eq!(exp.train.cols(), 128);
        assert_eq!(exp.eval.database.rows(), exp.train.rows());
        assert_eq!(exp.eval.ground_truth.len(), exp.eval.queries.rows());
    }

    #[test]
    fn scaled_configs_are_valid() {
        let ba = scaled_ba_config(Suite::Cifar, 8, 5, 0);
        assert_eq!(ba.n_bits, 8);
        let pm = scaled_parmac_config(ba, 4);
        assert_eq!(pm.n_machines, 4);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
