//! Criterion micro-benchmarks for the hot paths of the ParMAC reproduction:
//! Hamming k-NN search, the per-point Z-step proximal operator, one SGD epoch
//! of a hash SVM, one simulated W-step tick and the closed-form speedup model.
//!
//! The Z-step and k-NN benches are *before/after shaped*: each optimised
//! kernel is benchmarked next to the PR-1 reference it replaced (naive
//! ascending enumeration with a full decode per candidate, the allocating
//! alternating sweep, per-point relaxed solves, full-sort k-NN), so the
//! speedup of the allocation-free kernels is measured on the same host in the
//! same run. The reference kernels live in `parmac_core::zstep::reference`
//! and `parmac_retrieval::search::full_sort_knn` — the *same* implementations
//! the bitwise-equivalence tests pin — so the baselines cannot drift from
//! what the tests verify. Results are tracked in `BENCH_zstep.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parmac_cluster::{
    ClusterBackend, CostModel, PoolBackend, SimBackend, SimCluster, ThreadedBackend, ZUpdate,
};
use parmac_core::zstep::{reference, solve_relaxed_batch, ZStepProblem, ZStepWorkspace};
use parmac_core::SpeedupModel;
use parmac_data::partition_equal;
use parmac_hash::{HashFunction, LinearDecoder, LinearHash};
use parmac_linalg::Mat;
use parmac_optim::{LinearSvm, SgdConfig, Submodel};
use parmac_retrieval::hamming_knn;
use parmac_retrieval::search::{full_sort_knn, reference as search_reference};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_hamming_search(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let hash = LinearHash::random(64, 128, &mut rng);
    let database = hash.encode(&Mat::random_normal(50_000, 128, &mut rng));
    let queries = hash.encode(&Mat::random_normal(20, 128, &mut rng));
    for k in [10, 100] {
        c.bench_function(
            &format!("hamming_knn top-k heap (20 q x 50k db, k={k})"),
            |b| b.iter(|| hamming_knn(&database, &queries, k)),
        );
    }
    c.bench_function(
        "hamming_knn full-sort baseline (20 q x 50k db, k=100)",
        |b| b.iter(|| full_sort_knn(&database, &queries, 100)),
    );
}

/// Perf-trajectory entry 4 (`BENCH_serving.json`): the batched, cache-blocked
/// top-k kernel against the PR-2 per-query heap scan it replaced, at the
/// serving-shaped 64-query batch over 50k codes (acceptance bar: ≥ 2×). Both
/// run in the same invocation so the ratio is host-consistent, and the
/// baseline is the same implementation the bitwise-equivalence tests pin
/// (`parmac_retrieval::search::reference`).
fn bench_batched_topk(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(6);
    let hash = LinearHash::random(64, 128, &mut rng);
    let database = hash.encode(&Mat::random_normal(50_000, 128, &mut rng));
    let queries = hash.encode(&Mat::random_normal(64, 128, &mut rng));
    for k in [10, 100] {
        c.bench_function(
            &format!("batched blocked top-k (64 q x 50k db, k={k})"),
            |b| b.iter(|| hamming_knn(&database, &queries, k)),
        );
        c.bench_function(
            &format!("per-query heap scan, PR-2 baseline (64 q x 50k db, k={k})"),
            |b| b.iter(|| search_reference::per_query_heap_knn(&database, &queries, k)),
        );
    }
}

/// Gray-code exact enumeration vs the naive PR-1 kernel at the paper's code
/// lengths (the acceptance bar is ≥ 5× at L = 16).
fn bench_zstep_exact(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    for (l, d) in [(10usize, 64usize), (14, 96), (16, 128)] {
        let decoder = LinearDecoder::new(Mat::random_normal(d, l, &mut rng), vec![0.0; d]);
        let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.37).sin()).collect();
        let hx: Vec<f64> = (0..l).map(|i| f64::from(i % 2 == 0)).collect();
        let problem = ZStepProblem::new(&decoder, 0.5);
        let mut workspace = ZStepWorkspace::new(&problem);
        c.bench_function(&format!("z-step exact enumeration (L={l})"), |b| {
            b.iter(|| workspace.solve_exact(&problem, &x, &hx).to_vec())
        });
        c.bench_function(
            &format!("z-step exact enumeration, PR-1 naive kernel (L={l})"),
            |b| b.iter(|| reference::solve_exact(&problem, &x, &hx)),
        );
    }
}

/// Alternating sweep with a shard-reused workspace vs the PR-1 allocating
/// kernel at the paper's (L = 16, D = 128) configuration (bar: ≥ 2×).
fn bench_zstep_alternating(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let (l, d) = (16usize, 128usize);
    let decoder = LinearDecoder::new(Mat::random_normal(d, l, &mut rng), vec![0.0; d]);
    let x: Vec<f64> = (0..d).map(|i| (i as f64 * 0.37).sin()).collect();
    let hx: Vec<f64> = (0..l).map(|i| f64::from(i % 2 == 0)).collect();
    let problem = ZStepProblem::new(&decoder, 0.5);
    let mut workspace = ZStepWorkspace::new(&problem);
    c.bench_function("z-step alternating sweep, workspace (L=16, D=128)", |b| {
        b.iter(|| workspace.solve_alternating(&problem, &x, &hx, 5).to_vec())
    });
    c.bench_function("z-step alternating sweep, PR-1 kernel (L=16, D=128)", |b| {
        b.iter(|| reference::solve_alternating(&problem, &x, &hx, 5))
    });
}

/// Batched multi-RHS relaxed initialisation vs per-point scalar solves over a
/// 512-point shard.
fn bench_zstep_relaxed_batch(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let (l, d, n) = (16usize, 128usize, 512usize);
    let decoder = LinearDecoder::new(Mat::random_normal(d, l, &mut rng), vec![0.0; d]);
    let x = Mat::random_normal(n, d, &mut rng);
    let points: Vec<usize> = (0..n).collect();
    let mut hx = Mat::zeros(n, l);
    for i in 0..n {
        for b in 0..l {
            if (i + b) % 2 == 0 {
                hx[(i, b)] = 1.0;
            }
        }
    }
    let problem = ZStepProblem::new(&decoder, 0.5);
    c.bench_function(
        "relaxed init, batched multi-RHS (N=512, L=16, D=128)",
        |b| b.iter(|| solve_relaxed_batch(&problem, &x, &points, &hx)),
    );
    let mut workspace = ZStepWorkspace::new(&problem);
    c.bench_function("relaxed init, per-point (N=512, L=16, D=128)", |b| {
        b.iter(|| {
            let mut ones = 0usize;
            for (row, &point) in points.iter().enumerate() {
                let z = workspace.solve_relaxed(&problem, x.row(point), hx.row(row));
                ones += z.iter().filter(|&&v| v > 0.5).count();
            }
            ones
        })
    });
}

/// Serial vs shard-parallel execution of a full Z step through the
/// `ClusterBackend` seam: same solves, same updates, different substrate. The
/// ratio of the two lines is the wall-clock speedup of the parallel Z step on
/// this host (first entry of the perf trajectory).
fn bench_zstep_serial_vs_parallel(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let (l, d, n, p) = (16usize, 64usize, 2000usize, 8usize);
    let decoder = LinearDecoder::new(Mat::random_normal(d, l, &mut rng), vec![0.0; d]);
    let x = Mat::random_normal(n, d, &mut rng);
    let hx: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..l).map(|b| f64::from((i + b) % 2 == 0)).collect())
        .collect();
    let cluster = SimCluster::new(
        partition_equal(n, p).into_shards(),
        CostModel::distributed(),
    );
    let solve = |_machine: usize, shard: &[usize]| -> Vec<ZUpdate> {
        let problem = ZStepProblem::new(&decoder, 0.5);
        let mut workspace = ZStepWorkspace::new(&problem);
        shard
            .iter()
            .map(|&i| ZUpdate {
                point: i,
                code: workspace
                    .solve_alternating(&problem, x.row(i), &hx[i], 5)
                    .to_vec(),
            })
            .collect()
    };
    c.bench_function("z step, serial sim backend (N=2000, L=16, P=8)", |b| {
        b.iter(|| SimBackend::default().run_z_step(&cluster, 2 * l, solve))
    });
    c.bench_function(
        "z step, parallel threaded backend (N=2000, L=16, P=8)",
        |b| b.iter(|| ThreadedBackend::new().run_z_step(&cluster, 2 * l, solve)),
    );
}

/// Perf-trajectory entry 3 (`BENCH_pool.json`): the same full Z step on the
/// serial simulator, the one-thread-per-shard threaded backend and the
/// work-stealing pool, over a *balanced* partition (P = cores regime) and an
/// *imbalanced* proportional partition (the regime shard-granular threads
/// cannot balance but chunk stealing can). All variants produce bitwise
/// identical updates; only the substrate differs. The solve closure mirrors
/// the trainer's current Z-step contract (one `ZStepProblem` per step, a
/// workspace checkout pool) so the pool backend is not charged a spurious
/// factorisation per 64-point chunk.
fn bench_zstep_pool_vs_threaded_vs_serial(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let (l, d, n, p) = (16usize, 64usize, 2000usize, 8usize);
    let decoder = LinearDecoder::new(Mat::random_normal(d, l, &mut rng), vec![0.0; d]);
    let x = Mat::random_normal(n, d, &mut rng);
    let hx: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..l).map(|b| f64::from((i + b) % 2 == 0)).collect())
        .collect();
    let problem = ZStepProblem::new(&decoder, 0.5);
    let workspaces: std::sync::Mutex<Vec<ZStepWorkspace>> = std::sync::Mutex::new(Vec::new());
    let solve = |_machine: usize, shard: &[usize]| -> Vec<ZUpdate> {
        let mut workspace = workspaces
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_else(|| ZStepWorkspace::new(&problem));
        let updates = shard
            .iter()
            .map(|&i| ZUpdate {
                point: i,
                code: workspace
                    .solve_alternating(&problem, x.row(i), &hx[i], 5)
                    .to_vec(),
            })
            .collect();
        workspaces
            .lock()
            .expect("workspace pool poisoned")
            .push(workspace);
        updates
    };
    let workers = std::thread::available_parallelism().map_or(1, |w| w.get());
    for (label, shards) in [
        ("balanced", partition_equal(n, p).into_shards()),
        (
            // One machine 16× faster than the rest: its shard dwarfs the
            // others, so per-shard threads serialise on it.
            "imbalanced 16:1",
            parmac_data::partition_proportional(n, &[16.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
                .into_shards(),
        ),
    ] {
        let cluster = SimCluster::new(shards, CostModel::distributed());
        c.bench_function(
            &format!("z step, serial sim backend ({label}, N=2000, P=8)"),
            |b| b.iter(|| SimBackend::default().run_z_step(&cluster, 2 * l, solve)),
        );
        c.bench_function(
            &format!("z step, threaded per-shard backend ({label}, N=2000, P=8)"),
            |b| b.iter(|| ThreadedBackend::new().run_z_step(&cluster, 2 * l, solve)),
        );
        for w in [1usize, workers.max(2)] {
            c.bench_function(
                &format!("z step, work-stealing pool ({label}, N=2000, P=8, workers={w})"),
                |b| {
                    b.iter(|| {
                        PoolBackend::new()
                            .with_workers(w)
                            .run_z_step(&cluster, 2 * l, solve)
                    })
                },
            );
        }
    }
}

/// Within-machine W-step parallelism (§8.5): M = 16 submodels circulate over
/// P = 2 machines, so up to 8 submodels queue at one machine at a time. The
/// pool trains a machine's queue concurrently; scaling workers shows the
/// within-machine speedup (1 worker ≈ the serialised queue).
fn bench_wstep_within_machine(c: &mut Criterion) {
    let shards = partition_equal(2000, 2).into_shards();
    let cluster = SimCluster::new(shards, CostModel::shared_memory());
    let mut rng = SmallRng::seed_from_u64(4);
    let x = Mat::random_normal(2000, 64, &mut rng);
    let update = |svm: &mut LinearSvm, _machine: usize, shard: &[usize]| {
        let xs = x.select_rows(shard);
        let y: Vec<f64> = shard
            .iter()
            .map(|&i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        svm.fit_batch(&xs, &y, 1);
    };
    let workers = std::thread::available_parallelism().map_or(1, |w| w.get());
    for w in [1usize, workers.max(2)] {
        c.bench_function(
            &format!("W step, pool within-machine (M=16, P=2, workers={w})"),
            |b| {
                b.iter_batched(
                    || {
                        (0..16)
                            .map(|_| LinearSvm::new(64, SgdConfig::new().with_eta0(0.01)))
                            .collect::<Vec<_>>()
                    },
                    |submodels| {
                        PoolBackend::new()
                            .with_workers(w)
                            .run_w_step(&cluster, submodels, 1, 65, update, None)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn bench_svm_epoch(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let x = Mat::random_normal(2000, 128, &mut rng);
    let y: Vec<f64> = (0..2000)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("linear SVM, one SGD epoch (N=2000, D=128)", |b| {
        b.iter_batched(
            || LinearSvm::new(128, SgdConfig::new().with_eta0(0.01)),
            |mut svm| {
                svm.fit_batch(&x, &y, 1);
                svm.n_parameters()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ring_w_step(c: &mut Criterion) {
    let shards = partition_equal(4000, 16).into_shards();
    let cluster = SimCluster::new(shards, CostModel::distributed());
    c.bench_function(
        "simulated ring W step (M=32, P=16, bookkeeping only)",
        |b| {
            b.iter(|| {
                let mut submodels = vec![0u64; 32];
                cluster.run_w_step(
                    &mut submodels,
                    1,
                    129,
                    |s, _, shard| *s += shard.len() as u64,
                    None,
                )
            })
        },
    );
}

fn bench_speedup_model(c: &mut Criterion) {
    let model = SpeedupModel::figure4();
    c.bench_function("speedup model full curve to P=2048", |b| {
        b.iter(|| model.curve(2048))
    });
}

/// The serving fan-out of the server backend: `QueryRouter::knn` routes a
/// query batch to P resident shard actors and merges the per-shard top-k,
/// benchmarked against the single-process `hamming_knn` over the same 50k
/// codes. The gap is the message-passing + merge overhead one pays for
/// serving from the training processes (per `ring_hops` there is no W-step
/// traffic involved: queries fan out P ways and reply once each, 2·P
/// messages per batch).
fn bench_server_query_routing(c: &mut Criterion) {
    use parmac_cluster::ServerBackend;
    let mut rng = SmallRng::seed_from_u64(5);
    let hash = LinearHash::random(64, 128, &mut rng);
    let database = hash.encode(&Mat::random_normal(50_000, 128, &mut rng));
    let queries = hash.encode(&Mat::random_normal(20, 128, &mut rng));
    for p in [4usize, 16] {
        let shards = partition_equal(database.len(), p).into_shards();
        let cluster = SimCluster::new(shards, CostModel::distributed());
        let backend = ServerBackend::new();
        backend.publish_codes(&cluster, &database);
        let router = backend.query_router();
        c.bench_function(
            &format!("server knn fan-out + merge (20 q x 50k db, k=100, P={p})"),
            |b| b.iter(|| router.knn(&queries, 100).expect_full()),
        );
    }
    c.bench_function(
        "single-process hamming_knn baseline (20 q x 50k db, k=100)",
        |b| b.iter(|| hamming_knn(&database, &queries, 100)),
    );
}

criterion_group!(
    benches,
    bench_hamming_search,
    bench_batched_topk,
    bench_zstep_exact,
    bench_zstep_alternating,
    bench_zstep_relaxed_batch,
    bench_zstep_serial_vs_parallel,
    bench_zstep_pool_vs_threaded_vs_serial,
    bench_wstep_within_machine,
    bench_svm_epoch,
    bench_ring_w_step,
    bench_speedup_model,
    bench_server_query_routing
);
criterion_main!(benches);
