//! Criterion micro-benchmarks for the hot paths of the ParMAC reproduction:
//! Hamming k-NN search, the per-point Z-step proximal operator, one SGD epoch
//! of a hash SVM, one simulated W-step tick and the closed-form speedup model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use parmac_cluster::{ClusterBackend, CostModel, SimBackend, SimCluster, ThreadedBackend, ZUpdate};
use parmac_core::zstep::{solve_alternating, solve_exact, ZStepProblem};
use parmac_core::SpeedupModel;
use parmac_data::partition_equal;
use parmac_hash::{HashFunction, LinearDecoder, LinearHash};
use parmac_linalg::Mat;
use parmac_optim::{LinearSvm, SgdConfig, Submodel};
use parmac_retrieval::hamming_knn;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_hamming_search(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(0);
    let hash = LinearHash::random(64, 128, &mut rng);
    let database = hash.encode(&Mat::random_normal(5000, 128, &mut rng));
    let queries = hash.encode(&Mat::random_normal(20, 128, &mut rng));
    c.bench_function("hamming_knn 20 queries x 5k db x 64 bits", |b| {
        b.iter(|| hamming_knn(&database, &queries, 100))
    });
}

fn bench_zstep(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let decoder = LinearDecoder::new(Mat::random_normal(128, 16, &mut rng), vec![0.0; 128]);
    let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin()).collect();
    let hx: Vec<f64> = (0..16).map(|i| f64::from(i % 2 == 0)).collect();
    let problem = ZStepProblem::new(&decoder, 0.5);
    c.bench_function("z-step alternating bits (L=16, D=128)", |b| {
        b.iter(|| solve_alternating(&problem, &x, &hx, 5))
    });

    let small_decoder = LinearDecoder::new(Mat::random_normal(64, 10, &mut rng), vec![0.0; 64]);
    let small_x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.13).cos()).collect();
    let small_hx: Vec<f64> = (0..10).map(|i| f64::from(i % 3 == 0)).collect();
    let small_problem = ZStepProblem::new(&small_decoder, 0.5);
    c.bench_function("z-step exact enumeration (L=10, D=64)", |b| {
        b.iter(|| solve_exact(&small_problem, &small_x, &small_hx))
    });
}

/// Serial vs shard-parallel execution of a full Z step through the
/// `ClusterBackend` seam: same solves, same updates, different substrate. The
/// ratio of the two lines is the wall-clock speedup of the parallel Z step on
/// this host (first entry of the perf trajectory).
fn bench_zstep_serial_vs_parallel(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let (l, d, n, p) = (16usize, 64usize, 2000usize, 8usize);
    let decoder = LinearDecoder::new(Mat::random_normal(d, l, &mut rng), vec![0.0; d]);
    let x = Mat::random_normal(n, d, &mut rng);
    let hx: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..l).map(|b| f64::from((i + b) % 2 == 0)).collect())
        .collect();
    let cluster = SimCluster::new(
        partition_equal(n, p).into_shards(),
        CostModel::distributed(),
    );
    let solve = |_machine: usize, shard: &[usize]| -> Vec<ZUpdate> {
        let problem = ZStepProblem::new(&decoder, 0.5);
        shard
            .iter()
            .map(|&i| ZUpdate {
                point: i,
                code: solve_alternating(&problem, x.row(i), &hx[i], 5),
            })
            .collect()
    };
    c.bench_function("z step, serial sim backend (N=2000, L=16, P=8)", |b| {
        b.iter(|| SimBackend::default().run_z_step(&cluster, 2 * l, solve))
    });
    c.bench_function(
        "z step, parallel threaded backend (N=2000, L=16, P=8)",
        |b| b.iter(|| ThreadedBackend::new().run_z_step(&cluster, 2 * l, solve)),
    );
}

fn bench_svm_epoch(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let x = Mat::random_normal(2000, 128, &mut rng);
    let y: Vec<f64> = (0..2000)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("linear SVM, one SGD epoch (N=2000, D=128)", |b| {
        b.iter_batched(
            || LinearSvm::new(128, SgdConfig::new().with_eta0(0.01)),
            |mut svm| {
                svm.fit_batch(&x, &y, 1);
                svm.n_parameters()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ring_w_step(c: &mut Criterion) {
    let shards = partition_equal(4000, 16).into_shards();
    let cluster = SimCluster::new(shards, CostModel::distributed());
    c.bench_function(
        "simulated ring W step (M=32, P=16, bookkeeping only)",
        |b| {
            b.iter(|| {
                let mut submodels = vec![0u64; 32];
                cluster.run_w_step(
                    &mut submodels,
                    1,
                    129,
                    |s, _, shard| *s += shard.len() as u64,
                    None,
                )
            })
        },
    );
}

fn bench_speedup_model(c: &mut Criterion) {
    let model = SpeedupModel::figure4();
    c.bench_function("speedup model full curve to P=2048", |b| {
        b.iter(|| model.curve(2048))
    });
}

criterion_group!(
    benches,
    bench_hamming_search,
    bench_zstep,
    bench_zstep_serial_vs_parallel,
    bench_svm_epoch,
    bench_ring_w_step,
    bench_speedup_model
);
criterion_main!(benches);
