//! The [`Dataset`] container and train/validation/query splitting.

use parmac_linalg::Mat;
use rand::seq::SliceRandom;
use rand::Rng;

/// Fractions used to split a dataset into train / validation / query parts.
///
/// The validation split drives the early-stopping criterion of the MAC/BA
/// trainer (§3.1: "we stop iterating for a µ value ... when the precision of
/// the hash function in a validation set decreases"), and the query split is
/// held out for retrieval evaluation (precision / recall@R).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSpec {
    /// Fraction of points used for training (0, 1].
    pub train: f64,
    /// Fraction of points used for validation [0, 1).
    pub validation: f64,
    /// Fraction of points used as retrieval queries [0, 1).
    pub query: f64,
}

impl SplitSpec {
    /// A split with the given fractions.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or if they sum to more than 1 + 1e-9.
    pub fn new(train: f64, validation: f64, query: f64) -> Self {
        assert!(train > 0.0 && validation >= 0.0 && query >= 0.0);
        assert!(
            train + validation + query <= 1.0 + 1e-9,
            "split fractions sum to more than 1"
        );
        SplitSpec {
            train,
            validation,
            query,
        }
    }
}

impl Default for SplitSpec {
    /// 80% train, 10% validation, 10% query.
    fn default() -> Self {
        SplitSpec::new(0.8, 0.1, 0.1)
    }
}

/// A dataset of feature vectors with optional cluster labels and named splits.
///
/// Rows of [`features`](Dataset::features) are data points; columns are
/// features (the paper's `x_n ∈ R^D`). The `labels` are the generating mixture
/// component for synthetic data — they are never used for training (the BA is
/// unsupervised) but are handy for sanity checks in tests.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `N × D` feature matrix.
    pub features: Mat,
    /// Generating component of each point (empty when unknown).
    pub labels: Vec<usize>,
    /// Row indices of the training split.
    pub train_idx: Vec<usize>,
    /// Row indices of the validation split.
    pub validation_idx: Vec<usize>,
    /// Row indices of the query split.
    pub query_idx: Vec<usize>,
}

impl Dataset {
    /// Wraps a feature matrix with all points assigned to the training split.
    pub fn from_features(features: Mat) -> Self {
        let n = features.rows();
        Dataset {
            features,
            labels: Vec::new(),
            train_idx: (0..n).collect(),
            validation_idx: Vec::new(),
            query_idx: Vec::new(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Returns `true` if the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Re-splits the dataset according to `spec`, shuffling point order with
    /// `rng` first so the splits are unbiased.
    pub fn split<R: Rng + ?Sized>(&mut self, spec: SplitSpec, rng: &mut R) {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let n_train = ((n as f64) * spec.train).round() as usize;
        let n_val = ((n as f64) * spec.validation).round() as usize;
        let n_query = (((n as f64) * spec.query).round() as usize)
            .min(n - n_train.min(n) - n_val.min(n - n_train.min(n)));
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        self.train_idx = order[..n_train].to_vec();
        self.validation_idx = order[n_train..n_train + n_val].to_vec();
        self.query_idx = order[n_train + n_val..(n_train + n_val + n_query).min(n)].to_vec();
    }

    /// Returns the training features as a new matrix.
    pub fn train_features(&self) -> Mat {
        self.features.select_rows(&self.train_idx)
    }

    /// Returns the validation features as a new matrix.
    pub fn validation_features(&self) -> Mat {
        self.features.select_rows(&self.validation_idx)
    }

    /// Returns the query features as a new matrix.
    pub fn query_features(&self) -> Mat {
        self.features.select_rows(&self.query_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        Dataset::from_features(Mat::from_rows(&rows))
    }

    #[test]
    fn from_features_puts_everything_in_train() {
        let d = toy(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.train_idx.len(), 5);
        assert!(d.validation_idx.is_empty());
    }

    #[test]
    fn split_partitions_without_overlap() {
        let mut d = toy(100);
        let mut rng = SmallRng::seed_from_u64(0);
        d.split(SplitSpec::new(0.7, 0.2, 0.1), &mut rng);
        assert_eq!(d.train_idx.len(), 70);
        assert_eq!(d.validation_idx.len(), 20);
        assert_eq!(d.query_idx.len(), 10);
        let mut all: Vec<usize> = d
            .train_idx
            .iter()
            .chain(&d.validation_idx)
            .chain(&d.query_idx)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "splits overlap or drop points");
    }

    #[test]
    fn split_feature_views_have_right_shapes() {
        let mut d = toy(50);
        let mut rng = SmallRng::seed_from_u64(1);
        d.split(SplitSpec::default(), &mut rng);
        assert_eq!(d.train_features().rows(), d.train_idx.len());
        assert_eq!(d.validation_features().rows(), d.validation_idx.len());
        assert_eq!(d.query_features().cols(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to more than 1")]
    fn split_spec_rejects_oversubscription() {
        let _ = SplitSpec::new(0.9, 0.2, 0.1);
    }

    #[test]
    fn default_split_spec_is_80_10_10() {
        let s = SplitSpec::default();
        assert!((s.train - 0.8).abs() < 1e-12);
        assert!((s.validation - 0.1).abs() < 1e-12);
        assert!((s.query - 0.1).abs() < 1e-12);
    }
}
