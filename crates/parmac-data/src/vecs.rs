//! Loaders for the TEXMEX `.fvecs` / `.bvecs` formats — the on-disk layout of
//! the paper's real benchmark datasets (SIFT-10K/1M in `fvecs`, the SIFT-1B
//! learn set in `bvecs`, §8).
//!
//! Both formats are a flat sequence of records with no header: each record is
//! the dimensionality `d` as a little-endian `i32`, followed by `d` component
//! values — little-endian `f32` for `fvecs`, raw `u8` for `bvecs`. `bvecs`
//! files load straight into the byte-per-feature
//! [`QuantizedDataset`](crate::QuantizedDataset) storage (identity
//! dequantisation: the paper's SIFT-1B features *are* bytes), so a billion
//! points never materialise as floats; `fvecs` files load into a dense
//! [`Mat`].
//!
//! Both formats can also be **streamed** in fixed-size record chunks
//! ([`fvecs_chunks`] / [`bvecs_chunks`]) so a reader never has to hold more
//! than one chunk of a SIFT-1B-sized file in memory; the whole-file readers
//! are thin accumulations of the streaming path, so both share one parser.
//!
//! Writers for both formats are provided for round-trip tests and for
//! exporting synthetic stand-ins in the real layout.

use crate::QuantizedDataset;
use bytes::Bytes;
use parmac_linalg::Mat;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reports a mid-record EOF as `InvalidData` (the file really is truncated);
/// any other I/O error — transient disk failure, revoked permission —
/// propagates unchanged rather than masquerading as file corruption.
fn truncated(err: io::Error, msg: impl FnOnce() -> String) -> io::Error {
    if err.kind() == io::ErrorKind::UnexpectedEof {
        bad_data(msg())
    } else {
        err
    }
}

/// Reads one little-endian `i32` dimension header; `Ok(None)` at clean EOF.
fn read_dim(reader: &mut impl Read) -> io::Result<Option<usize>> {
    let mut buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(bad_data("truncated record header".into())),
            Ok(n) => filled += n,
            // Retry interrupted reads like read_exact does for the payloads.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let dim = i32::from_le_bytes(buf);
    if dim <= 0 {
        return Err(bad_data(format!("non-positive dimensionality {dim}")));
    }
    Ok(Some(dim as usize))
}

/// Checks a record's dimensionality against the file's first record.
fn check_dim(dim: usize, expected: Option<usize>, record: usize) -> io::Result<()> {
    match expected {
        Some(e) if e != dim => Err(bad_data(format!(
            "record {record} has dimensionality {dim}, expected {e}"
        ))),
        _ => Ok(()),
    }
}

/// Records per chunk for the whole-file readers: large enough to amortise
/// per-chunk overhead, small enough that a chunk of SIFT-dimension records
/// stays comfortably in cache-friendly territory.
const READ_CHUNK_RECORDS: usize = 4096;

/// Shared streaming state of [`FvecsChunks`] and [`BvecsChunks`]: the open
/// reader plus the cross-chunk invariants (the file's dimensionality is fixed
/// by its first record, records are counted across chunks for error
/// messages, and a stream that has errored or hit EOF stays finished).
struct ChunkReader {
    reader: BufReader<File>,
    chunk_records: usize,
    dim: Option<usize>,
    rows_seen: usize,
    done: bool,
}

impl ChunkReader {
    fn open(path: impl AsRef<Path>, chunk_records: usize) -> io::Result<Self> {
        assert!(chunk_records > 0, "chunk_records must be positive");
        Ok(ChunkReader {
            reader: BufReader::new(File::open(path)?),
            chunk_records,
            dim: None,
            rows_seen: 0,
            done: false,
        })
    }

    /// Reads up to `chunk_records` records, handing each payload of
    /// `bytes_per_value * d` bytes to `consume`. Returns how many records the
    /// chunk holds — `0` only at clean EOF.
    fn fill_chunk(
        &mut self,
        bytes_per_value: usize,
        payload: &mut Vec<u8>,
        mut consume: impl FnMut(&[u8]),
    ) -> io::Result<usize> {
        let mut in_chunk = 0usize;
        while in_chunk < self.chunk_records {
            let Some(d) = read_dim(&mut self.reader)? else {
                break;
            };
            check_dim(d, self.dim, self.rows_seen)?;
            self.dim = Some(d);
            payload.resize(bytes_per_value * d, 0);
            let record = self.rows_seen;
            self.reader.read_exact(payload).map_err(|e| {
                truncated(e, || {
                    format!("record {record}: truncated payload (dim {d})")
                })
            })?;
            consume(payload);
            self.rows_seen += 1;
            in_chunk += 1;
        }
        Ok(in_chunk)
    }

    /// Wraps one chunk-read attempt into an iterator step: finishes the
    /// stream on clean EOF and after the first error.
    fn step<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> io::Result<Option<T>>,
    ) -> Option<io::Result<T>> {
        if self.done {
            return None;
        }
        match read(self) {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Streaming `.fvecs` reader: yields the file as a sequence of `N × D`
/// matrices of at most `chunk_records` rows each (see [`fvecs_chunks`]).
pub struct FvecsChunks(ChunkReader);

impl Iterator for FvecsChunks {
    type Item = io::Result<Mat>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.step(|inner| {
            let mut values: Vec<f64> = Vec::new();
            let mut payload: Vec<u8> = Vec::new();
            let rows = inner.fill_chunk(4, &mut payload, |bytes| {
                values.extend(
                    bytes
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64),
                );
            })?;
            if rows == 0 {
                return Ok(None);
            }
            let dim = inner
                .dim
                .expect("a non-empty chunk fixes the dimensionality");
            Ok(Some(Mat::from_vec(rows, dim, values)))
        })
    }
}

/// Opens an `.fvecs` file for chunked streaming: the returned iterator yields
/// `chunk_records` records at a time as dense matrices (the final chunk may
/// be shorter), so arbitrarily large files never materialise at once.
/// Record dimensionality is checked across the whole stream, not per chunk.
/// After the first `Err` the iterator is finished.
///
/// # Errors
///
/// Failure to open the file; per-chunk I/O and `InvalidData` errors are
/// yielded by the iterator.
///
/// # Panics
///
/// Panics if `chunk_records == 0`.
pub fn fvecs_chunks(path: impl AsRef<Path>, chunk_records: usize) -> io::Result<FvecsChunks> {
    Ok(FvecsChunks(ChunkReader::open(path, chunk_records)?))
}

/// Streaming `.bvecs` reader: yields the file as a sequence of identity-scaled
/// [`QuantizedDataset`] chunks of at most `chunk_records` points each (see
/// [`bvecs_chunks`]).
pub struct BvecsChunks(ChunkReader);

impl Iterator for BvecsChunks {
    type Item = io::Result<QuantizedDataset>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.step(|inner| {
            let mut data: Vec<u8> = Vec::new();
            let mut payload: Vec<u8> = Vec::new();
            let rows = inner.fill_chunk(1, &mut payload, |bytes| {
                data.extend_from_slice(bytes);
            })?;
            if rows == 0 {
                return Ok(None);
            }
            let dim = inner
                .dim
                .expect("a non-empty chunk fixes the dimensionality");
            Ok(Some(QuantizedDataset::from_bytes(
                Bytes::from(data),
                rows,
                dim,
                1.0,
                0.0,
            )))
        })
    }
}

/// Opens a `.bvecs` file for chunked streaming, the byte-per-feature analogue
/// of [`fvecs_chunks`]: each chunk is a [`QuantizedDataset`] with identity
/// dequantisation, so a SIFT-1B-scale file can be hashed or sharded one chunk
/// at a time. Record dimensionality is checked across the whole stream.
/// After the first `Err` the iterator is finished.
///
/// # Errors
///
/// Failure to open the file; per-chunk I/O and `InvalidData` errors are
/// yielded by the iterator.
///
/// # Panics
///
/// Panics if `chunk_records == 0`.
pub fn bvecs_chunks(path: impl AsRef<Path>, chunk_records: usize) -> io::Result<BvecsChunks> {
    Ok(BvecsChunks(ChunkReader::open(path, chunk_records)?))
}

/// Reads an `.fvecs` file (`d: i32 LE`, then `d` little-endian `f32`s, per
/// record) into an `N × D` matrix, one row per vector. Accumulates the
/// [`fvecs_chunks`] stream, so both paths share one parser.
///
/// # Errors
///
/// I/O errors, plus `InvalidData` for truncated records, non-positive or
/// inconsistent dimensionalities, and empty files.
pub fn read_fvecs(path: impl AsRef<Path>) -> io::Result<Mat> {
    let mut values: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut rows = 0usize;
    for chunk in fvecs_chunks(path, READ_CHUNK_RECORDS)? {
        let chunk = chunk?;
        dim = Some(chunk.cols());
        rows += chunk.rows();
        values.extend_from_slice(chunk.as_slice());
    }
    let dim = dim.ok_or_else(|| bad_data("empty fvecs file".into()))?;
    Ok(Mat::from_vec(rows, dim, values))
}

/// Reads a `.bvecs` file (`d: i32 LE`, then `d` raw bytes, per record)
/// directly into the byte-per-feature [`QuantizedDataset`] storage with
/// identity dequantisation (`scale = 1`, `offset = 0`): a loaded value *is*
/// its byte, exactly as the paper stores SIFT-1B (§8.4). Accumulates the
/// [`bvecs_chunks`] stream, so both paths share one parser.
///
/// # Errors
///
/// I/O errors, plus `InvalidData` for truncated records, non-positive or
/// inconsistent dimensionalities, and empty files.
pub fn read_bvecs(path: impl AsRef<Path>) -> io::Result<QuantizedDataset> {
    let mut data: Vec<u8> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut rows = 0usize;
    for chunk in bvecs_chunks(path, READ_CHUNK_RECORDS)? {
        let chunk = chunk?;
        dim = Some(chunk.dim());
        rows += chunk.len();
        data.extend_from_slice(chunk.as_bytes());
    }
    let dim = dim.ok_or_else(|| bad_data("empty bvecs file".into()))?;
    Ok(QuantizedDataset::from_bytes(
        Bytes::from(data),
        rows,
        dim,
        1.0,
        0.0,
    ))
}

/// Writes a matrix as an `.fvecs` file, one record per row (values narrowed
/// to `f32`, the format's precision).
///
/// # Errors
///
/// I/O errors; `InvalidData` if the matrix has no columns.
pub fn write_fvecs(path: impl AsRef<Path>, m: &Mat) -> io::Result<()> {
    if m.cols() == 0 {
        return Err(bad_data("cannot write 0-dimensional fvecs".into()));
    }
    let mut writer = BufWriter::new(File::create(path)?);
    let dim_header = (m.cols() as i32).to_le_bytes();
    for i in 0..m.rows() {
        writer.write_all(&dim_header)?;
        for &v in m.row(i) {
            writer.write_all(&(v as f32).to_le_bytes())?;
        }
    }
    writer.flush()
}

/// Writes a byte-quantised dataset as a `.bvecs` file, one record per point
/// (the stored bytes verbatim; the dataset's affine dequantisation parameters
/// are *not* representable in the format, so use identity-scaled data —
/// e.g. from [`read_bvecs`] or `QuantizedDataset::quantize` of `[0, 255]`
/// features — when the bytes must mean the same on the way back in).
///
/// # Errors
///
/// I/O errors; `InvalidData` for an empty dataset.
pub fn write_bvecs(path: impl AsRef<Path>, q: &QuantizedDataset) -> io::Result<()> {
    if q.dim() == 0 || q.is_empty() {
        return Err(bad_data("cannot write empty bvecs".into()));
    }
    let mut writer = BufWriter::new(File::create(path)?);
    let dim_header = (q.dim() as i32).to_le_bytes();
    let bytes = q.as_bytes();
    for i in 0..q.len() {
        writer.write_all(&dim_header)?;
        writer.write_all(&bytes[i * q.dim()..(i + 1) * q.dim()])?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    /// A unique temp path that cleans itself up.
    struct TempFile(PathBuf);

    impl TempFile {
        fn new(name: &str) -> Self {
            let mut path = std::env::temp_dir();
            path.push(format!("parmac-vecs-{}-{name}", std::process::id()));
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn fvecs_round_trip_is_exact_at_f32_precision() {
        let mut rng = SmallRng::seed_from_u64(0);
        let x = Mat::random_normal(7, 5, &mut rng).scale(10.0);
        let file = TempFile::new("roundtrip.fvecs");
        write_fvecs(&file.0, &x).expect("write");
        let back = read_fvecs(&file.0).expect("read");
        assert_eq!(back.rows(), 7);
        assert_eq!(back.cols(), 5);
        for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
            assert_eq!(*a, *b as f32 as f64, "f32 narrowing is the only loss");
        }
    }

    #[test]
    fn bvecs_round_trip_preserves_every_byte() {
        // Identity-scaled byte data (the format's own semantics): the written
        // bytes equal the features and survive the round trip exactly.
        let raw: Vec<u8> = (0..24).map(|v| ((v * 31) % 256) as u8).collect();
        let q = QuantizedDataset::from_bytes(Bytes::from(raw), 4, 6, 1.0, 0.0);
        let file = TempFile::new("roundtrip.bvecs");
        write_bvecs(&file.0, &q).expect("write");
        let back = read_bvecs(&file.0).expect("read");
        assert_eq!(back.len(), 4);
        assert_eq!(back.dim(), 6);
        assert_eq!(back.as_bytes(), q.as_bytes());
        // Identity dequantisation: the loaded rows are the stored bytes.
        assert_eq!(back.to_dense(), q.to_dense());
    }

    #[test]
    fn fvecs_known_bytes_parse_exactly() {
        // Two 2-d records written by hand: [1.5, -2.0] and [0.0, 3.25].
        let mut raw: Vec<u8> = Vec::new();
        for rec in [[1.5f32, -2.0], [0.0, 3.25]] {
            raw.extend_from_slice(&2i32.to_le_bytes());
            for v in rec {
                raw.extend_from_slice(&v.to_le_bytes());
            }
        }
        let file = TempFile::new("known.fvecs");
        std::fs::write(&file.0, &raw).expect("write raw");
        let m = read_fvecs(&file.0).expect("read");
        assert_eq!(m.as_slice(), &[1.5, -2.0, 0.0, 3.25]);
    }

    #[test]
    fn truncated_and_inconsistent_files_are_rejected() {
        let file = TempFile::new("bad.fvecs");
        // Header promises 3 floats, payload has 1.
        let mut raw: Vec<u8> = 3i32.to_le_bytes().to_vec();
        raw.extend_from_slice(&1.0f32.to_le_bytes());
        std::fs::write(&file.0, &raw).expect("write raw");
        assert_eq!(
            read_fvecs(&file.0).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Record 1 changes dimensionality.
        let mut raw: Vec<u8> = Vec::new();
        raw.extend_from_slice(&1i32.to_le_bytes());
        raw.push(7);
        raw.extend_from_slice(&2i32.to_le_bytes());
        raw.extend_from_slice(&[1, 2]);
        let file = TempFile::new("bad.bvecs");
        std::fs::write(&file.0, &raw).expect("write raw");
        assert_eq!(
            read_bvecs(&file.0).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Empty file.
        let file = TempFile::new("empty.fvecs");
        std::fs::write(&file.0, b"").expect("write raw");
        assert_eq!(
            read_fvecs(&file.0).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // Negative dimensionality.
        let file = TempFile::new("negdim.fvecs");
        std::fs::write(&file.0, (-1i32).to_le_bytes()).expect("write raw");
        assert_eq!(
            read_fvecs(&file.0).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn fvecs_chunked_stream_partitions_the_file() {
        // 7 records streamed 3 at a time → chunks of 3, 3, 1 whose
        // concatenation is the whole-file read.
        let mut rng = SmallRng::seed_from_u64(5);
        let x = Mat::random_normal(7, 4, &mut rng);
        let file = TempFile::new("chunked.fvecs");
        write_fvecs(&file.0, &x).expect("write");
        let whole = read_fvecs(&file.0).expect("read");
        let chunks: Vec<Mat> = fvecs_chunks(&file.0, 3)
            .expect("open")
            .collect::<io::Result<_>>()
            .expect("chunks");
        assert_eq!(
            chunks.iter().map(Mat::rows).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let streamed: Vec<f64> = chunks
            .iter()
            .flat_map(|c| c.as_slice().iter().copied())
            .collect();
        assert_eq!(streamed, whole.as_slice());
        // An empty file yields no chunks (clean EOF) rather than an error:
        // only the whole-file reader insists on at least one record.
        let empty = TempFile::new("chunked-empty.fvecs");
        std::fs::write(&empty.0, b"").expect("write raw");
        assert_eq!(fvecs_chunks(&empty.0, 3).expect("open").count(), 0);
    }

    #[test]
    fn bvecs_chunked_stream_partitions_the_file() {
        let raw: Vec<u8> = (0..35).map(|v| (v * 13 % 256) as u8).collect();
        let q = QuantizedDataset::from_bytes(Bytes::from(raw), 7, 5, 1.0, 0.0);
        let file = TempFile::new("chunked.bvecs");
        write_bvecs(&file.0, &q).expect("write");
        let chunks: Vec<QuantizedDataset> = bvecs_chunks(&file.0, 3)
            .expect("open")
            .collect::<io::Result<_>>()
            .expect("chunks");
        assert_eq!(
            chunks.iter().map(QuantizedDataset::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let streamed: Vec<u8> = chunks
            .iter()
            .flat_map(|c| c.as_bytes().iter().copied())
            .collect();
        assert_eq!(streamed, q.as_bytes());
        for chunk in &chunks {
            assert_eq!(chunk.dim(), 5);
        }
    }

    #[test]
    fn chunked_stream_rejects_dim_change_across_chunk_boundaries() {
        // Records 0-2 are 1-dimensional, record 3 (in the second chunk)
        // switches to 2: the inconsistency spans a chunk boundary, so the
        // check must carry state across chunks. The error ends the stream.
        let mut raw: Vec<u8> = Vec::new();
        for v in 0u8..3 {
            raw.extend_from_slice(&1i32.to_le_bytes());
            raw.push(v);
        }
        raw.extend_from_slice(&2i32.to_le_bytes());
        raw.extend_from_slice(&[9, 9]);
        let file = TempFile::new("dimchange.bvecs");
        std::fs::write(&file.0, &raw).expect("write raw");
        let mut stream = bvecs_chunks(&file.0, 3).expect("open");
        assert_eq!(stream.next().expect("first chunk").expect("ok").len(), 3);
        assert_eq!(
            stream
                .next()
                .expect("second step yields the error")
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        assert!(stream.next().is_none(), "errored stream is finished");
    }

    #[test]
    fn bvecs_feeds_quantized_storage_without_float_blowup() {
        let vals: Vec<f64> = (0..64).map(|v| (v * 4 % 256) as f64).collect();
        let q = QuantizedDataset::quantize(&Mat::from_vec(8, 8, vals));
        let file = TempFile::new("storage.bvecs");
        write_bvecs(&file.0, &q).expect("write");
        let back = read_bvecs(&file.0).expect("read");
        assert_eq!(back.memory_bytes(), 64);
        assert_eq!(back.dense_memory_bytes(), 64 * 8);
    }
}
