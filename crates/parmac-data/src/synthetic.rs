//! Synthetic feature-vector generators.
//!
//! These stand in for the paper's image-feature benchmarks (CIFAR/GIST,
//! SIFT-10K/1M/1B). Binary-hashing quality and the behaviour of MAC/ParMAC
//! depend on the *clustered, low-dimensional* structure of the features rather
//! than on the original images, so a Gaussian mixture embedded in a random
//! low-rank subspace plus isotropic noise preserves the relevant behaviour:
//! nearest neighbours are dominated by cluster membership, PCA captures the
//! informative subspace, and the binary autoencoder can beat truncated PCA by
//! adapting its code to the cluster layout.

use crate::dataset::{Dataset, SplitSpec};
use parmac_linalg::Mat;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`gaussian_mixture`].
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureConfig {
    /// Number of points to generate.
    pub n_points: usize,
    /// Ambient feature dimensionality `D`.
    pub dim: usize,
    /// Number of mixture components (clusters).
    pub n_clusters: usize,
    /// Dimension of the informative subspace the cluster centres live in.
    pub intrinsic_dim: usize,
    /// Standard deviation of cluster centres in the informative subspace.
    pub centre_scale: f64,
    /// Within-cluster standard deviation (in the informative subspace).
    pub cluster_scale: f64,
    /// Isotropic ambient noise standard deviation.
    pub noise_scale: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// How to split the generated points.
    pub split: SplitSpec,
}

impl MixtureConfig {
    /// A reasonable default configuration for `n_points` points of
    /// dimensionality `dim` drawn from `n_clusters` clusters.
    pub fn new(n_points: usize, dim: usize, n_clusters: usize) -> Self {
        MixtureConfig {
            n_points,
            dim,
            n_clusters,
            intrinsic_dim: (dim / 4).clamp(2, 32).min(dim),
            centre_scale: 10.0,
            cluster_scale: 1.0,
            noise_scale: 0.3,
            seed: 0,
            split: SplitSpec::default(),
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the split fractions.
    pub fn with_split(mut self, split: SplitSpec) -> Self {
        self.split = split;
        self
    }

    /// Sets the intrinsic (informative subspace) dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `intrinsic_dim` is zero or larger than `dim`.
    pub fn with_intrinsic_dim(mut self, intrinsic_dim: usize) -> Self {
        assert!(intrinsic_dim > 0 && intrinsic_dim <= self.dim);
        self.intrinsic_dim = intrinsic_dim;
        self
    }

    /// Sets the within-cluster and ambient-noise scales.
    pub fn with_noise(mut self, cluster_scale: f64, noise_scale: f64) -> Self {
        self.cluster_scale = cluster_scale;
        self.noise_scale = noise_scale;
        self
    }
}

/// Generates a clustered synthetic dataset.
///
/// Cluster centres are drawn in an `intrinsic_dim`-dimensional latent space,
/// points are drawn around their centre, embedded into `dim` dimensions with a
/// random linear map, and isotropic noise is added. Labels record the
/// generating cluster.
///
/// # Panics
///
/// Panics if `n_points`, `dim` or `n_clusters` is zero.
pub fn gaussian_mixture(cfg: &MixtureConfig) -> Dataset {
    assert!(cfg.n_points > 0 && cfg.dim > 0 && cfg.n_clusters > 0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let d_latent = cfg.intrinsic_dim.min(cfg.dim);

    // Random embedding of the latent space into the ambient space.
    let embed =
        Mat::random_normal(d_latent, cfg.dim, &mut rng).scale(1.0 / (d_latent as f64).sqrt());
    // Cluster centres in latent space.
    let centres = Mat::random_normal(cfg.n_clusters, d_latent, &mut rng).scale(cfg.centre_scale);

    let mut features = Mat::zeros(cfg.n_points, cfg.dim);
    let mut labels = Vec::with_capacity(cfg.n_points);
    for i in 0..cfg.n_points {
        let c = rng.gen_range(0..cfg.n_clusters);
        labels.push(c);
        // Latent coordinates of the point.
        let latent: Vec<f64> = (0..d_latent)
            .map(|j| centres[(c, j)] + cfg.cluster_scale * normal(&mut rng))
            .collect();
        // Embed and add ambient noise.
        for j in 0..cfg.dim {
            let mut v = 0.0;
            for (k, &l) in latent.iter().enumerate() {
                v += l * embed[(k, j)];
            }
            features[(i, j)] = v + cfg.noise_scale * normal(&mut rng);
        }
    }

    let mut dataset = Dataset {
        features,
        labels,
        train_idx: Vec::new(),
        validation_idx: Vec::new(),
        query_idx: Vec::new(),
    };
    dataset.split(cfg.split, &mut rng);
    dataset
}

/// A SIFT-like dataset: `D = 128` features, matching the paper's SIFT-10K /
/// SIFT-1M / SIFT-1B descriptor dimensionality.
pub fn sift_like(n_points: usize, seed: u64) -> Dataset {
    gaussian_mixture(
        &MixtureConfig::new(n_points, 128, 32)
            .with_intrinsic_dim(16)
            .with_seed(seed),
    )
}

/// A GIST-like dataset: `D = 320` features, matching the paper's CIFAR/GIST
/// setting.
pub fn gist_like(n_points: usize, seed: u64) -> Dataset {
    gaussian_mixture(
        &MixtureConfig::new(n_points, 320, 10)
            .with_intrinsic_dim(24)
            .with_seed(seed),
    )
}

fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; one sample per call is sufficient here.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmac_linalg::vector::squared_distance;

    #[test]
    fn generation_is_deterministic_given_seed() {
        let cfg = MixtureConfig::new(50, 8, 3).with_seed(11);
        let a = gaussian_mixture(&cfg);
        let b = gaussian_mixture(&cfg);
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.train_idx, b.train_idx);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = gaussian_mixture(&MixtureConfig::new(20, 4, 2).with_seed(1));
        let b = gaussian_mixture(&MixtureConfig::new(20, 4, 2).with_seed(2));
        assert_ne!(a.features, b.features);
    }

    #[test]
    fn shapes_and_labels_are_consistent() {
        let d = gaussian_mixture(&MixtureConfig::new(200, 32, 5).with_seed(3));
        assert_eq!(d.features.shape(), (200, 32));
        assert_eq!(d.labels.len(), 200);
        assert!(d.labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn within_cluster_distances_smaller_than_between() {
        let d = gaussian_mixture(
            &MixtureConfig::new(300, 16, 4)
                .with_seed(4)
                .with_noise(0.5, 0.1),
        );
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..100 {
            for j in (i + 1)..100 {
                let dist = squared_distance(d.features.row(i), d.features.row(j));
                if d.labels[i] == d.labels[j] {
                    within.push(dist);
                } else {
                    between.push(dist);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&within) < 0.5 * mean(&between),
            "within {} vs between {}",
            mean(&within),
            mean(&between)
        );
    }

    #[test]
    fn named_generators_have_paper_dimensions() {
        assert_eq!(sift_like(10, 0).dim(), 128);
        assert_eq!(gist_like(10, 0).dim(), 320);
    }

    #[test]
    fn splits_cover_requested_fractions() {
        let d = gaussian_mixture(
            &MixtureConfig::new(100, 8, 2)
                .with_seed(5)
                .with_split(SplitSpec::new(0.6, 0.2, 0.2)),
        );
        assert_eq!(d.train_idx.len(), 60);
        assert_eq!(d.validation_idx.len(), 20);
        assert_eq!(d.query_idx.len(), 20);
    }
}
