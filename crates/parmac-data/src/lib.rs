//! Dataset substrate for the ParMAC reproduction.
//!
//! The paper evaluates on four image-retrieval benchmarks (CIFAR with GIST
//! features, SIFT-10K, SIFT-1M, SIFT-1B). Those datasets are not redistributed
//! here; instead this crate generates **synthetic feature datasets with the
//! same dimensionality and clustered structure** (Gaussian mixtures over a
//! low-rank subspace), which is what binary-hashing quality actually depends
//! on. It also provides the infrastructure pieces ParMAC needs around the
//! data:
//!
//! * [`Dataset`] — a feature matrix plus named splits (train / validation /
//!   query) as used for early stopping and retrieval evaluation.
//! * [`synthetic`] — generators: generic Gaussian mixtures, `sift_like`
//!   (D=128), `gist_like` (D=320, the CIFAR setting), and a byte-quantised
//!   variant mirroring SIFT-1B's `u8` storage.
//! * [`quantized`] — [`QuantizedDataset`](quantized::QuantizedDataset), which
//!   stores features as single bytes and converts on the fly (§8.4).
//! * [`partition`] — splitting the points over `P` machines, equally or
//!   proportionally to per-machine speed (load balancing, §4.3).
//! * [`minibatch`] — minibatch index iteration with optional shuffling.
//! * [`vecs`] — loaders/writers for the TEXMEX `.fvecs`/`.bvecs` files the
//!   real SIFT datasets ship as; `.bvecs` feeds the byte-quantised storage
//!   directly.

#![warn(missing_docs)]

pub mod dataset;
pub mod minibatch;
pub mod partition;
pub mod quantized;
pub mod synthetic;
pub mod vecs;

pub use dataset::{Dataset, SplitSpec};
pub use minibatch::MinibatchIter;
pub use partition::{partition_equal, partition_proportional, Partition};
pub use quantized::QuantizedDataset;
pub use vecs::{
    bvecs_chunks, fvecs_chunks, read_bvecs, read_fvecs, write_bvecs, write_fvecs, BvecsChunks,
    FvecsChunks,
};
